//! Offline API-compatible subset of the `bytes` crate.
//!
//! This workspace builds in hermetic environments with no crates-io
//! mirror, so the handful of external crates it uses are vendored as
//! minimal, behaviourally-faithful subsets (see `shims/README.md`).
//! Only the surface the workspace actually exercises is provided:
//! [`Bytes`], [`BytesMut`], [`Buf`], and [`BufMut`] with big-endian
//! integer accessors.

#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read access to a contiguous buffer, consuming from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread portion as a slice.
    fn chunk(&self) -> &[u8];
    /// Discard the next `cnt` bytes. Panics if `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Read one byte (big-endian accessors panic when short, like the
    /// real crate; decoders guard with `remaining()` first).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let c = self.chunk();
        let v = u64::from_be_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]);
        self.advance(8);
        v
    }

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write access to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        self.put_slice(&vec![val; cnt]);
    }
}

/// A cheaply cloneable, immutable byte buffer (a shared `Vec<u8>` plus a
/// view window).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copied; the real crate borrows, which is
    /// indistinguishable to safe callers).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// View length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-view of the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// A growable, mutable byte buffer. Reads (via [`Buf`]) consume from the
/// front; writes append at the back.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap), read: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    /// Whether no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        let mut v = self.data;
        if self.read > 0 {
            v.drain(..self.read);
        }
        Bytes::from(v)
    }

    /// Shorten the unread view to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        if len < self.len() {
            self.data.truncate(self.read + len);
        }
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.data.clear();
        self.read = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.read..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.read..]
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> BytesMut {
        BytesMut { data: s.to_vec(), read: 0 }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.read += cnt;
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_integers() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_u64(0x0809_0a0b_0c0d_0e0f);
        b.put_bytes(0xff, 2);
        let mut f = b.freeze();
        assert_eq!(f.len(), 17);
        assert_eq!(f.get_u8(), 1);
        assert_eq!(f.get_u16(), 0x0203);
        assert_eq!(f.get_u32(), 0x0405_0607);
        assert_eq!(f.get_u64(), 0x0809_0a0b_0c0d_0e0f);
        assert_eq!(&*f, &[0xff, 0xff]);
    }

    #[test]
    fn slice_and_split() {
        let mut b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[1, 2, 3]);
        let head = b.split_to(2);
        assert_eq!(&*head, &[0, 1]);
        assert_eq!(&*b, &[2, 3, 4, 5]);
        assert_eq!(b.slice(..2), Bytes::from(vec![2, 3]));
    }

    #[test]
    fn bytes_mut_reads_consume_front() {
        let mut b = BytesMut::from(&[9u8, 8, 7][..]);
        assert_eq!(b.get_u8(), 9);
        b.put_u8(6);
        assert_eq!(&*b, &[8, 7, 6]);
        assert_eq!(&*b.freeze(), &[8, 7, 6]);
    }
}
