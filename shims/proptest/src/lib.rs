//! Offline API-compatible subset of the `proptest` crate.
//!
//! Implements the surface this workspace exercises: the [`proptest!`]
//! family of macros, [`strategy::Strategy`] with `prop_map`, ranges /
//! tuples / [`strategy::Just`] / [`prop_oneof!`] unions as strategies,
//! [`arbitrary::any`], `prop::collection::{vec, btree_set}`, and a
//! character-class pattern strategy for `&str`.
//!
//! Differences from the real crate, by design: cases are generated from a
//! deterministic per-test RNG (seeded from the test's module path and
//! case index) instead of an entropy source, and failing inputs are
//! reported but **not shrunk**. Both keep runs reproducible in hermetic
//! environments with no persisted regression files.

#![forbid(unsafe_code)]

pub mod test_runner {
    use rand::{RngCore, SeedableRng};

    /// Deterministic per-test-case generator.
    pub struct TestRng(rand::rngs::SmallRng);

    impl TestRng {
        /// RNG for case number `case` of the named test. Distinct tests
        /// and distinct cases get independent, reproducible streams.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let seed = h.wrapping_add((u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            TestRng(rand::rngs::SmallRng::seed_from_u64(seed))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// The input was rejected by `prop_assume!`; retry with new input.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration; only `cases` is interpreted.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Upper bound on `prop_assume!` rejections before the runner gives
    /// up (mirrors the real crate's global reject limit).
    pub const MAX_REJECTS: u32 = 4096;
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Object-safe mirror of [`Strategy`], used for type erasure.
    #[doc(hidden)]
    pub trait ObjectStrategy<V> {
        fn generate_obj(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> ObjectStrategy<S::Value> for S {
        fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(std::rc::Rc<dyn ObjectStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> BoxedStrategy<V> {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_obj(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between erased strategies (built by [`prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over non-empty `options`.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

    /// `&str` as a character-class pattern strategy (e.g.
    /// `"[a-z][a-z0-9-]{0,10}"`). Supports literal characters, `[...]`
    /// classes with ranges, and the `{n}` / `{n,m}` / `*` / `+` / `?`
    /// quantifiers — the regex subset this workspace uses.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for atom in crate::string::parse_pattern(self) {
                let reps = rng.gen_range(atom.min..=atom.max);
                for _ in 0..reps {
                    let i = rng.gen_range(0..atom.choices.len());
                    out.push(atom.choices[i]);
                }
            }
            out
        }
    }
}

pub mod string {
    /// One pattern element: a set of candidate characters plus a
    /// repetition range.
    pub(crate) struct Atom {
        pub choices: Vec<char>,
        pub min: usize,
        pub max: usize,
    }

    /// Unbounded quantifiers (`*`, `+`) are capped at this many reps.
    const UNBOUNDED_CAP: usize = 8;

    pub(crate) fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let cs: Vec<char> = pattern.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < cs.len() {
            let choices = match cs[i] {
                '[' => {
                    i += 1;
                    let mut set = Vec::new();
                    while i < cs.len() && cs[i] != ']' {
                        if i + 2 < cs.len() && cs[i + 1] == '-' && cs[i + 2] != ']' {
                            let (lo, hi) = (cs[i], cs[i + 2]);
                            assert!(lo <= hi, "bad char range in pattern {pattern:?}");
                            set.extend(lo..=hi);
                            i += 3;
                        } else {
                            set.push(cs[i]);
                            i += 1;
                        }
                    }
                    assert!(i < cs.len(), "unterminated [class] in pattern {pattern:?}");
                    i += 1; // consume ']'
                    set
                }
                '\\' => {
                    assert!(i + 1 < cs.len(), "dangling escape in pattern {pattern:?}");
                    i += 2;
                    vec![cs[i - 1]]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            assert!(!choices.is_empty(), "empty [class] in pattern {pattern:?}");
            let (min, max) = if i < cs.len() {
                match cs[i] {
                    '{' => {
                        let close = cs[i..]
                            .iter()
                            .position(|&c| c == '}')
                            .expect("unterminated {quantifier}")
                            + i;
                        let body: String = cs[i + 1..close].iter().collect();
                        i = close + 1;
                        match body.split_once(',') {
                            Some((lo, hi)) => (
                                lo.trim().parse().expect("bad quantifier"),
                                hi.trim().parse().expect("bad quantifier"),
                            ),
                            None => {
                                let n = body.trim().parse().expect("bad quantifier");
                                (n, n)
                            }
                        }
                    }
                    '*' => {
                        i += 1;
                        (0, UNBOUNDED_CAP)
                    }
                    '+' => {
                        i += 1;
                        (1, UNBOUNDED_CAP)
                    }
                    '?' => {
                        i += 1;
                        (0, 1)
                    }
                    _ => (1, 1),
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted quantifier in pattern {pattern:?}");
            atoms.push(Atom { choices, min, max });
        }
        atoms
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw one value from the canonical distribution.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (full range for integers).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            rng.gen_range(self.lo..=self.hi)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec`s of `elem` values with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut out = BTreeSet::new();
            // Duplicates don't grow the set; cap the attempts so narrow
            // element domains still terminate (possibly under target,
            // like the real crate after its rejection budget).
            for _ in 0..target.saturating_mul(16).max(16) {
                if out.len() >= target {
                    break;
                }
                out.insert(self.elem.generate(rng));
            }
            out
        }
    }

    /// `BTreeSet`s of `elem` values with target size drawn from `size`.
    pub fn btree_set<S>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size: size.into() }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// item becomes a test running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$attr:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __case: u32 = 0;
                let mut __rejects: u32 = 0;
                while __case < __config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case.wrapping_add(__rejects.wrapping_mul(0x4000_0000)),
                    );
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            let _ = $body;
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __case += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(__why),
                        ) => {
                            __rejects += 1;
                            assert!(
                                __rejects < $crate::test_runner::MAX_REJECTS,
                                "proptest: too many inputs rejected by prop_assume! ({__why})",
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!("proptest case {__case} failed: {__msg}");
                        }
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property test, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Reject the current input (retried with a fresh one) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strategy_matches_class_shape() {
        let mut rng = TestRng::for_case("pattern", 0);
        for case in 0..200u32 {
            let mut rng2 = TestRng::for_case("pattern", case);
            let s: String = "[a-z][a-z0-9-]{0,10}[a-z0-9]".generate(&mut rng2);
            assert!(s.len() >= 2 && s.len() <= 12, "bad len {}", s.len());
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let last = s.chars().last().unwrap();
            assert!(last.is_ascii_lowercase() || last.is_ascii_digit());
        }
        let t: String = "ab\\[c?[xy]{2}z*".generate(&mut rng);
        assert!(t.starts_with("ab"));
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec((0u32..100, any::<bool>()), 1..20);
        let a = strat.generate(&mut TestRng::for_case("det", 3));
        let b = strat.generate(&mut TestRng::for_case("det", 3));
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < 20);
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            Just(1u8).prop_map(|x| x * 2),
            (10u8..20).prop_map(|x| x + 1),
        ];
        for case in 0..50 {
            let v = strat.generate(&mut TestRng::for_case("oneof", case));
            assert!(v == 2 || (11..21).contains(&v), "unexpected {v}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_end_to_end(x in 0u32..50, mut v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assume!(x != 13);
            v.push(x as u8);
            prop_assert!(x < 50, "x was {}", x);
            prop_assert_eq!(v.last().copied(), Some(x as u8));
        }

        #[test]
        fn btree_set_respects_target(s in prop::collection::btree_set(any::<u32>(), 2..10)) {
            prop_assert!(s.len() >= 2 && s.len() < 10);
        }
    }
}
