//! Offline API-compatible subset of the `crossbeam` crate.
//!
//! Only [`thread::scope`] / [`thread::Scope::spawn`] are provided — the
//! surface this workspace uses — implemented on top of
//! `std::thread::scope`, which offers the same structured-concurrency
//! guarantee (all spawned threads join before `scope` returns).

use std::any::Any;

/// Scoped threads.
pub mod thread {
    use super::Any;

    /// Handle for spawning threads tied to an enclosing [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread; `Err` carries its panic payload.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread guaranteed to join before the scope ends. As
        /// in crossbeam, the closure receives the scope for nested
        /// spawning.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle { inner: inner.spawn(move || f(&Scope { inner })) }
        }
    }

    /// Run `f` with a scope whose spawned threads all join before this
    /// returns. `Err` carries the payload if any thread (or `f`)
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let sum = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        })
        .unwrap();
        assert_eq!(sum, 28);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn child_panic_surfaces_as_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
