//! Offline API-compatible subset of the `serde_json` crate.
//!
//! Implements the [`Value`] tree, the [`json!`] macro, a conforming JSON
//! parser ([`from_str`]) and serializers ([`to_string`],
//! [`to_string_pretty`]) — the surface this workspace exercises. No serde
//! derive machinery: the workspace serializes via `Value` only.

#![forbid(unsafe_code)]
// The json! macro builds arrays/objects by recursive push; the expansion
// trips vec_init_then_push at every invocation site inside this crate.
#![allow(clippy::vec_init_then_push)]

use std::fmt;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

/// An object: insertion-ordered key/value pairs (serde_json's
/// `preserve_order` behaviour, which round-trips most readably).
pub type Map = Vec<(String, Value)>;

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

const NULL: Value = Value::Null;

impl Value {
    /// Member lookup on objects; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            Value::Number(Number::I64(n)) => Some(*n),
            _ => None,
        }
    }

    /// The value as an `f64`, for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n as f64),
            Value::Number(Number::I64(n)) => Some(*n as f64),
            Value::Number(Number::F64(n)) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(m) => {
                if let Some(i) = m.iter().position(|(k, _)| k == key) {
                    return &mut m[i].1;
                }
                m.push((key.to_string(), Value::Null));
                &mut m.last_mut().expect("just pushed").1
            }
            other => panic!("cannot index non-object value {other:?} with a string key"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        match self {
            Value::Array(a) => &mut a[i],
            other => panic!("cannot index non-array value {other:?} with a number"),
        }
    }
}

/// Conversion into a [`Value`], covering the types the workspace feeds to
/// [`json!`] (including references produced by iterator `collect`s).
pub trait ToJson {
    /// Convert.
    fn to_json(self) -> Value;
}

impl ToJson for Value {
    fn to_json(self) -> Value {
        self
    }
}
impl ToJson for &Value {
    fn to_json(self) -> Value {
        self.clone()
    }
}
impl ToJson for bool {
    fn to_json(self) -> Value {
        Value::Bool(self)
    }
}
impl ToJson for &bool {
    fn to_json(self) -> Value {
        Value::Bool(*self)
    }
}
impl ToJson for String {
    fn to_json(self) -> Value {
        Value::String(self)
    }
}
impl ToJson for &String {
    fn to_json(self) -> Value {
        Value::String(self.clone())
    }
}
impl ToJson for &str {
    fn to_json(self) -> Value {
        Value::String(self.to_string())
    }
}
impl ToJson for &&str {
    fn to_json(self) -> Value {
        Value::String(self.to_string())
    }
}
impl ToJson for f64 {
    fn to_json(self) -> Value {
        Value::Number(Number::F64(self))
    }
}

macro_rules! impl_to_json_uint {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(self) -> Value {
                Value::Number(Number::U64(self as u64))
            }
        }
        impl ToJson for &$t {
            fn to_json(self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
    )*};
}
impl_to_json_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(self) -> Value {
                if self >= 0 {
                    Value::Number(Number::U64(self as u64))
                } else {
                    Value::Number(Number::I64(self as i64))
                }
            }
        }
        impl ToJson for &$t {
            fn to_json(self) -> Value {
                (*self).to_json()
            }
        }
    )*};
}
impl_to_json_int!(i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(self) -> Value {
        Value::Array(self.into_iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

/// Entry point used by the [`json!`] macro.
pub fn to_value<T: ToJson>(v: T) -> Value {
    v.to_json()
}

/// Build a [`Value`] from a JSON-shaped literal: `null`, scalars,
/// arbitrary Rust expressions in value position, and nested `[...]` /
/// `{"key": value}` structures (keys must be string literals).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };

    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => {{
        let mut elems: Vec<$crate::Value> = Vec::new();
        $crate::json_internal!(@array elems $($tt)+);
        $crate::Value::Array(elems)
    }};

    ({}) => { $crate::Value::Object(vec![]) };
    ({ $($tt:tt)+ }) => {{
        let mut entries: Vec<(String, $crate::Value)> = Vec::new();
        $crate::json_internal!(@object entries $($tt)+);
        $crate::Value::Object(entries)
    }};

    ($other:expr) => { $crate::to_value($other) };

    // Array elements: structured tokens first, then general expressions.
    (@array $acc:ident) => {};
    (@array $acc:ident , $($rest:tt)*) => {
        $crate::json_internal!(@array $acc $($rest)*);
    };
    (@array $acc:ident null $($rest:tt)*) => {
        $acc.push($crate::json_internal!(null));
        $crate::json_internal!(@array $acc $($rest)*);
    };
    (@array $acc:ident true $($rest:tt)*) => {
        $acc.push($crate::json_internal!(true));
        $crate::json_internal!(@array $acc $($rest)*);
    };
    (@array $acc:ident false $($rest:tt)*) => {
        $acc.push($crate::json_internal!(false));
        $crate::json_internal!(@array $acc $($rest)*);
    };
    (@array $acc:ident [ $($inner:tt)* ] $($rest:tt)*) => {
        $acc.push($crate::json_internal!([ $($inner)* ]));
        $crate::json_internal!(@array $acc $($rest)*);
    };
    (@array $acc:ident { $($inner:tt)* } $($rest:tt)*) => {
        $acc.push($crate::json_internal!({ $($inner)* }));
        $crate::json_internal!(@array $acc $($rest)*);
    };
    (@array $acc:ident $value:expr , $($rest:tt)*) => {
        $acc.push($crate::json_internal!($value));
        $crate::json_internal!(@array $acc $($rest)*);
    };
    (@array $acc:ident $value:expr) => {
        $acc.push($crate::json_internal!($value));
    };

    // Object entries: `"key": value`, same value dispatch as arrays.
    (@object $acc:ident) => {};
    (@object $acc:ident , $($rest:tt)*) => {
        $crate::json_internal!(@object $acc $($rest)*);
    };
    (@object $acc:ident $key:literal : null $($rest:tt)*) => {
        $acc.push(($key.to_string(), $crate::json_internal!(null)));
        $crate::json_internal!(@object $acc $($rest)*);
    };
    (@object $acc:ident $key:literal : true $($rest:tt)*) => {
        $acc.push(($key.to_string(), $crate::json_internal!(true)));
        $crate::json_internal!(@object $acc $($rest)*);
    };
    (@object $acc:ident $key:literal : false $($rest:tt)*) => {
        $acc.push(($key.to_string(), $crate::json_internal!(false)));
        $crate::json_internal!(@object $acc $($rest)*);
    };
    (@object $acc:ident $key:literal : [ $($inner:tt)* ] $($rest:tt)*) => {
        $acc.push(($key.to_string(), $crate::json_internal!([ $($inner)* ])));
        $crate::json_internal!(@object $acc $($rest)*);
    };
    (@object $acc:ident $key:literal : { $($inner:tt)* } $($rest:tt)*) => {
        $acc.push(($key.to_string(), $crate::json_internal!({ $($inner)* })));
        $crate::json_internal!(@object $acc $($rest)*);
    };
    (@object $acc:ident $key:literal : $value:expr , $($rest:tt)*) => {
        $acc.push(($key.to_string(), $crate::json_internal!($value)));
        $crate::json_internal!(@object $acc $($rest)*);
    };
    (@object $acc:ident $key:literal : $value:expr) => {
        $acc.push(($key.to_string(), $crate::json_internal!($value)));
    };
}

/// Parse or serialization failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, Error> {
        Err(Error { msg: msg.to_string(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(c) => self.err(&format!("unexpected character {:?}", c as char)),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            self.err(&format!("expected {kw:?}"))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                // Surrogate pairs are not reassembled; the
                                // workspace never emits astral-plane text.
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source text.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error { msg: "invalid UTF-8".into(), offset: self.pos })?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error { msg: "invalid UTF-8 in number".into(), offset: start })?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::F64(f))),
            Err(_) => self.err("bad number"),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.parse_value()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parse a JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters");
    }
    Ok(v)
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U64(u) => out.push_str(&u.to_string()),
        Number::I64(i) => out.push_str(&i.to_string()),
        Number::F64(f) => {
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&f.to_string());
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent.map(|n| n + 1));
                write_value(out, e, indent.map(|n| n + 1));
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent.map(|n| n + 1));
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, e, indent.map(|n| n + 1));
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: Option<usize>) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * 2 {
            out.push(' ');
        }
    }
}

/// Serialize compactly.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, None);
    Ok(out)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, Some(0));
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, None);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let doc = json!({
            "a": 1,
            "b": [1, 2, 3],
            "c": "hi \"there\"\n",
            "d": null,
            "e": true,
            "f": -5,
            "nested": json!({"x": 0.5}),
        });
        let compact = to_string(&doc).unwrap();
        let parsed = from_str(&compact).unwrap();
        assert_eq!(parsed, doc);
        let pretty = to_string_pretty(&doc).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), doc);
    }

    #[test]
    fn accessors_and_indexing() {
        let mut doc = json!({"k": [ {"x": 7u64} ], "s": "str", "b": false});
        assert_eq!(doc["k"][0]["x"].as_u64(), Some(7));
        assert_eq!(doc["s"].as_str(), Some("str"));
        assert_eq!(doc["b"].as_bool(), Some(false));
        assert!(doc["missing"].is_null());
        doc["k"][0]["x"] = json!(9);
        assert_eq!(doc["k"][0]["x"].as_u64(), Some(9));
        doc["new"] = json!("v");
        assert_eq!(doc["new"].as_str(), Some("v"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("nul").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("1 2").is_err());
    }

    #[test]
    fn option_and_refs() {
        let none: Option<&str> = None;
        let doc = json!({
            "p": none,
            "q": Some("x"),
            "ports": vec![&443u16, &8883u16],
        });
        assert!(doc["p"].is_null());
        assert_eq!(doc["q"].as_str(), Some("x"));
        assert_eq!(doc["ports"][1].as_u64(), Some(8883));
    }
}
