//! Offline API-compatible subset of the `criterion` crate.
//!
//! Provides the harness surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BatchSize`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Instead of the real
//! crate's statistical sampling it times a small fixed number of
//! iterations and prints mean wall-clock per iteration — enough to
//! compare orders of magnitude without a crates-io dependency.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard optimizer barrier.
pub use std::hint::black_box;

/// What one benchmark iteration processes, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Hint for how `iter_batched` amortises setup; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
}

/// Times closures passed to [`Bencher::iter`] / [`Bencher::iter_batched`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(iters: u64) -> Bencher {
        Bencher { iters, elapsed: Duration::ZERO }
    }

    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up pass.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with per-iteration inputs built (untimed) by
    /// `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn report(name: &str, iters: u64, elapsed: Duration, throughput: Option<Throughput>) {
    let per_iter = elapsed.as_secs_f64() / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!("{name:<48} {:>12.3} µs/iter{rate}", per_iter * 1e6);
}

/// Benchmark registry and entry point, mirroring `criterion::Criterion`.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { iters: 10 }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        report(name, self.iters, b.elapsed, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for API compatibility; the shim's iteration count is
    /// fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let iters = self.criterion.iters;
        let mut b = Bencher::new(iters);
        f(&mut b);
        let label = format!("{}/{}", self.name, name.into());
        report(&label, iters, b.elapsed, self.throughput);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 10);
    }

    #[test]
    fn groups_run_batched_benches() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(4)).sample_size(50);
        let mut total = 0usize;
        g.bench_function("sum", |b| {
            b.iter_batched(|| vec![1usize; 4], |v| total += v.len(), BatchSize::LargeInput)
        });
        g.finish();
        assert!(total >= 44);
    }
}
