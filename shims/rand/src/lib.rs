//! Offline API-compatible subset of the `rand` crate.
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++, the same family the real
//! `small_rng` feature uses), the [`Rng`] / [`RngCore`] / [`SeedableRng`]
//! traits, and uniform sampling over integer / float ranges — the surface
//! this workspace exercises. Streams are deterministic per seed but not
//! bit-identical to the real crate's; all simulation results in this
//! repository are defined relative to these generators.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable from the uniform "standard" distribution
/// (full integer range, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits, exactly like rand's Standard f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges uniformly samplable for an output type `T`.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (sample_u128_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (sample_u128_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + sample_u128_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + sample_u128_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_range<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Unbiased uniform draw in `[0, span)` (`span > 0`) via rejection.
fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u128::from(u64::MAX) {
        let span64 = span as u64;
        // Widening-multiply rejection (Lemire); at most a few retries.
        loop {
            let x = rng.next_u64();
            let m = u128::from(x) * u128::from(span64);
            let lo = m as u64;
            if lo >= span64 || lo >= (u64::MAX - span64 + 1) % span64 {
                return m >> 64;
            }
        }
    } else {
        u128::sample_standard(rng) % span
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_range(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (expanded with SplitMix64, as the
    /// real crate does).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&y));
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.48..0.52).contains(&mean), "mean {mean}");
    }
}
