//! Quickstart: build the world, generate detection rules, and detect IoT
//! devices at a small simulated ISP — the paper's pipeline end to end in
//! one page.
//!
//! Run with `cargo run --release --example quickstart`.

use haystack::core::pipeline::{Pipeline, PipelineConfig};
use haystack::core::report::{run_isp_study, IspStudyConfig};
use haystack::net::StudyWindow;
use haystack::wild::{IspConfig, IspVantage};

fn main() {
    // 1. Ground truth → domain classification → dedicated-infrastructure
    //    inference → detection rules (paper §2–§4).
    println!("building ground truth and generating rules ...");
    let pipeline = Pipeline::run(PipelineConfig::fast(42));
    let s = &pipeline.stats;
    println!(
        "observed {} domains: {} primary / {} support / {} generic",
        s.observed_domains, s.primary, s.support, s.generic
    );
    println!(
        "dedication: {} dedicated (DNSDB) + {} via Censys, {} shared, {} unusable",
        s.dedicated_dnsdb, s.censys_recovered, s.shared, s.no_record
    );
    println!(
        "rules: {} platforms, {} manufacturers, {} products ({} classes undetectable)",
        s.platform_rules, s.manufacturer_rules, s.product_rules, s.undetectable_classes
    );

    // 2. Point the rules at an ISP (paper §6): 20k subscriber lines,
    //    1-in-1000 packet sampling, one study day.
    println!("\nsimulating one day at a 20k-line ISP (sampling 1/1000) ...");
    let isp = IspVantage::new(
        &pipeline.catalog,
        IspConfig { lines: 20_000, sampling: 1_000, seed: 7, background: false },
    );
    let study = run_isp_study(
        &pipeline,
        &pipeline.world,
        &isp,
        &IspStudyConfig { window: StudyWindow::days(0, 1), ..Default::default() },
    );

    // 3. Report, as Figure 11(b) does.
    println!("\n{:<28} {:>12}", "detection class", "lines/day");
    let mut rows: Vec<(&str, u64)> = pipeline
        .rules
        .rules
        .iter()
        .filter_map(|r| {
            let class = pipeline.rules.class_name(r.class);
            study.daily.get(&(class.to_string(), 0)).map(|n| (class, *n))
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    for (class, n) in rows.iter().take(12) {
        println!("{class:<28} {n:>12}");
    }
    let any = study.any_iot_daily.get(&0).copied().unwrap_or(0);
    println!(
        "\nlines with >=1 detected IoT device: {any} of 20000 ({:.1}%)",
        100.0 * any as f64 / 20_000.0
    );
}
