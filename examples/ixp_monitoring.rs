//! IXP-side monitoring (paper §6.3): detect IoT client IPs across member
//! ASes from very sparsely sampled IPFIX, with routing asymmetry and a
//! spoofed-traffic component — and show why the established-TCP filter
//! matters.
//!
//! Run with `cargo run --release --example ixp_monitoring`.

use haystack::core::pipeline::{Pipeline, PipelineConfig};
use haystack::core::report::{run_ixp_study, DeviceGroup, IxpStudyConfig};
use haystack::net::StudyWindow;
use haystack::wild::{IxpConfig, IxpVantage};

fn main() {
    println!("building rules from ground truth ...");
    let pipeline = Pipeline::run(PipelineConfig::fast(42));

    let ixp = IxpVantage::new(
        &pipeline.catalog,
        IxpConfig {
            sampling: 5_000,
            seed: 99,
            big_eyeballs: 5,
            big_lines: 8_000,
            tail_members: 20,
            tail_lines: 300,
            route_visibility: 0.5,
            spoofed_per_hour: 1_500,
        },
    );
    println!(
        "IXP with {} members ({} lines behind the big eyeballs)",
        ixp.members().len(),
        5 * 8_000,
    );

    // With the §6.3 anti-spoofing filter (the paper's configuration).
    let filtered = run_ixp_study(
        &pipeline,
        &pipeline.world,
        &ixp,
        &IxpStudyConfig { window: StudyWindow::days(0, 1), ..Default::default() },
    );
    // Without it — the over-counting ablation.
    let unfiltered = run_ixp_study(
        &pipeline,
        &pipeline.world,
        &ixp,
        &IxpStudyConfig {
            window: StudyWindow::days(0, 1),
            established_filter: false,
            ..Default::default()
        },
    );

    println!("\nunique detected client IPs on day 1 (Figure 15 style):");
    println!("{:<28} {:>10} {:>12}", "device group", "filtered", "unfiltered");
    for g in [DeviceGroup::Alexa, DeviceGroup::Samsung, DeviceGroup::Other] {
        let f = filtered.daily_ips.get(&(g, 0)).copied().unwrap_or(0);
        let u = unfiltered.daily_ips.get(&(g, 0)).copied().unwrap_or(0);
        println!("{:<28} {f:>10} {u:>12}", g.label());
    }
    println!(
        "\nrecords: {} observed, {} survive the established-TCP filter \
         ({} spoofed/handshake-only dropped)",
        filtered.records_before_filter,
        filtered.records_after_filter,
        filtered.records_before_filter - filtered.records_after_filter
    );

    println!("\nper-member concentration (Figure 16 style), day 1, all groups:");
    let mut per_as: Vec<(String, u64)> = Vec::new();
    for m in ixp.members() {
        let total: u64 = [DeviceGroup::Alexa, DeviceGroup::Samsung, DeviceGroup::Other]
            .iter()
            .filter_map(|g| filtered.per_as_day0.get(&(m.asn, *g)))
            .sum();
        per_as.push((format!("{} ({}, {})", m.asn, m.name, m.category.label()), total));
    }
    per_as.sort_by_key(|r| std::cmp::Reverse(r.1));
    let grand: u64 = per_as.iter().map(|(_, n)| n).sum();
    for (label, n) in per_as.iter().take(8) {
        println!(
            "{label:<40} {n:>8} ({:.1}% of detected IPs)",
            100.0 * *n as f64 / grand.max(1) as f64
        );
    }
    println!("... eyeball members dominate; the tail is long but thin (paper Fig. 16).");
}
