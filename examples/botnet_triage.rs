//! §7.2's security use-case: a Mirai-style incident response. Given a set
//! of subscriber lines emitting suspicious traffic, find which IoT device
//! classes they have in common — the ISP can then notify owners or block
//! the botnet's control traffic, without deep packet inspection.
//!
//! Run with `cargo run --release --example botnet_triage`.

use haystack::core::detector::{Detector, DetectorConfig};
use haystack::core::hitlist::HitList;
use haystack::core::pipeline::{Pipeline, PipelineConfig};
use haystack::net::{AnonId, DayBin};
use haystack::wild::{IspConfig, IspVantage, RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS};
use std::collections::{BTreeMap, BTreeSet};

fn main() {
    println!("building rules from ground truth ...");
    let pipeline = Pipeline::run(PipelineConfig::fast(42));
    let lines = 15_000u32;
    let isp = IspVantage::new(
        &pipeline.catalog,
        IspConfig { lines, sampling: 1_000, seed: 5, background: false },
    );

    // Run one day of detection to build the device inventory per line.
    println!("building per-line device inventory from one day of NetFlow ...");
    let mut det = Detector::new(
        &pipeline.rules,
        HitList::for_day(&pipeline.rules, &pipeline.dnsdb, DayBin(0)),
        DetectorConfig::default(),
    );
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    for hour in DayBin(0).hours() {
        let mut stream = isp.stream_hour(&pipeline.world, hour, DEFAULT_CHUNK_RECORDS);
        while stream.next_chunk(&mut chunk) {
            for r in &chunk.records {
                det.observe_wild(r);
            }
        }
    }

    // Incident input: the abuse desk hands us "suspicious lines". We
    // simulate it by taking lines that own a camera-class product — the
    // classic Mirai recruitment pool — and checking what the *detector*
    // (which has no ownership oracle) says they share.
    let camera_classes =
        ["Yi Camera", "Wansview Cam.", "Reolink Cam.", "Amcrest Cam.", "ZModo Doorbell"];
    let mut suspicious: BTreeSet<AnonId> = BTreeSet::new();
    for c in camera_classes {
        suspicious.extend(det.detected_lines(c));
    }
    println!("\nincident: {} subscriber lines flagged by the abuse desk", suspicious.len());

    // Triage: which detected classes are over-represented among the
    // suspicious lines vs. the general population?
    println!("\n{:<28} {:>10} {:>12} {:>8}", "class", "suspects", "population", "lift");
    let mut rows: Vec<(&str, usize, usize, f64)> = Vec::new();
    for rule in &pipeline.rules.rules {
        let class = pipeline.rules.class_name(rule.class);
        let all: BTreeSet<AnonId> = det.detected_lines(class).into_iter().collect();
        if all.is_empty() {
            continue;
        }
        let among = suspicious.intersection(&all).count();
        if among == 0 {
            continue;
        }
        let p_pop = all.len() as f64 / f64::from(lines);
        let p_sus = among as f64 / suspicious.len().max(1) as f64;
        rows.push((class, among, all.len(), p_sus / p_pop));
    }
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap());
    for (class, among, total, lift) in rows.iter().take(10) {
        println!("{class:<28} {among:>10} {total:>12} {lift:>7.1}x");
    }
    println!(
        "\ncamera classes dominate the lift ranking — the ISP now knows which \
         device population to notify (§7.2), using nothing but sampled flow headers."
    );

    // Count how many distinct rule-relevant backend IPs could be blocked.
    let mut block_targets: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in &pipeline.rules.rules {
        let class = pipeline.rules.class_name(rule.class);
        if camera_classes.contains(&class) {
            block_targets.insert(class, rule.domains.iter().map(|d| d.ips.len()).sum());
        }
    }
    println!("\nbackend IPs available for blocking/redirect per camera class:");
    for (class, n) in block_targets {
        println!("  {class:<28} {n:>4} service IPs");
    }
}
