//! §7.1's privacy implication, made concrete: from sampled flow headers
//! alone, an ISP-side observer can tell not just *that* a household has a
//! smart speaker, but *when it is actively used* — via usage-indicator
//! domains and the 10-sampled-packets/hour threshold.
//!
//! Run with `cargo run --release --example usage_privacy`.

use haystack::core::pipeline::{Pipeline, PipelineConfig};
use haystack::core::report::{run_isp_study, IspStudyConfig};
use haystack::net::StudyWindow;
use haystack::wild::{IspConfig, IspVantage};

fn main() {
    println!("building rules from ground truth ...");
    let pipeline = Pipeline::run(PipelineConfig::fast(42));

    let lines = 20_000u32;
    let isp = IspVantage::new(
        &pipeline.catalog,
        IspConfig { lines, sampling: 1_000, seed: 21, background: false },
    );
    println!("simulating two days at a {lines}-line ISP ...");
    let study = run_isp_study(
        &pipeline,
        &pipeline.world,
        &isp,
        &IspStudyConfig { window: StudyWindow::days(0, 2), ..Default::default() },
    );

    println!("\nAlexa-enabled households: presence vs. active use (Figure 18 style)");
    println!("{:<14} {:>10} {:>12}", "hour of day", "detected", "actively used");
    for hod in 0..24u32 {
        let hour = 24 + hod; // day 2, to let evidence accumulate
        let detected = study.group_hourly.get(&(haystack::core::report::DeviceGroup::Alexa, hour));
        let active = study.active_hourly.get(&("Alexa Enabled".to_string(), hour));
        println!(
            "{hod:>2}:00         {:>10} {:>12}",
            detected.copied().unwrap_or(0),
            active.copied().unwrap_or(0)
        );
    }

    let peak_active = (0..24u32)
        .filter_map(|h| study.active_hourly.get(&("Alexa Enabled".to_string(), 24 + h)).copied())
        .max()
        .unwrap_or(0);
    let night_active = study
        .active_hourly
        .get(&("Alexa Enabled".to_string(), 24 + 3))
        .copied()
        .unwrap_or(0);
    println!(
        "\npeak active households: {peak_active}; at 03:00: {night_active} — \
         the diurnal pattern of §6.2/§7.1 reveals when people are home and awake."
    );
    println!(
        "(The paper's mitigation discussion, §7.4: hide behind shared infrastructure, \
         or pad traffic so the sampled-volume signal disappears.)"
    );
}
