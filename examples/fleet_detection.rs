//! Multi-core detection at scale: process a day of ISP traffic with the
//! sharded detector and compare wall-clock against a single core —
//! the deployment shape behind the paper's "millions of devices within
//! minutes" (§1).
//!
//! Run with `cargo run --release --example fleet_detection`.

use haystack::core::detector::{Detector, DetectorConfig};
use haystack::core::hitlist::HitList;
use haystack::core::parallel::DetectorPool;
use haystack::core::pipeline::{Pipeline, PipelineConfig};
use haystack::net::DayBin;
use haystack::wild::{IspConfig, IspVantage, RecordChunk, VecStream, DEFAULT_CHUNK_RECORDS};
use std::time::Instant;

fn main() {
    println!("building rules from ground truth ...");
    let pipeline = Pipeline::run(PipelineConfig::fast(42));
    let lines = 60_000u32;
    let isp = IspVantage::new(
        &pipeline.catalog,
        IspConfig { lines, sampling: 1_000, seed: 11, background: true },
    );

    // Pre-capture a day so the comparison times only the detectors.
    println!("capturing one day of sampled flow records at {lines} lines ...");
    let day = DayBin(0);
    let mut all = Vec::new();
    for hour in day.hours() {
        all.extend(isp.capture_hour(&pipeline.world, hour).records);
    }
    println!("{} records captured", all.len());

    let hitlist = HitList::for_day(&pipeline.rules, &pipeline.dnsdb, day);

    let t0 = Instant::now();
    let mut seq = Detector::new(&pipeline.rules, hitlist.clone(), DetectorConfig::default());
    for r in &all {
        seq.observe_wild(r);
    }
    let seq_time = t0.elapsed();

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let replay = all.clone();
    let t0 = Instant::now();
    let mut pool = DetectorPool::new(&pipeline.rules, &hitlist, DetectorConfig::default(), workers);
    let mut stream = VecStream::new(replay, DEFAULT_CHUNK_RECORDS);
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    pool.observe_stream(&mut stream, &mut chunk).unwrap();
    pool.finish().unwrap();
    let par_time = t0.elapsed();

    let seq_alexa = seq.detected_lines("Alexa Enabled").len();
    let par_alexa = pool.detected_lines("Alexa Enabled").unwrap().len();
    assert_eq!(seq_alexa, par_alexa, "sharding must not change results");

    println!("\nsequential: {seq_time:?}; streamed pool x{workers}: {par_time:?}");
    println!("identical detections: {seq_alexa} Alexa-enabled lines on day 0");
    let rps = all.len() as f64 / par_time.as_secs_f64();
    println!(
        "sharded throughput ≈ {:.1} M records/s → a 15M-line ISP hour (~6M records) in ~{:.1} s",
        rps / 1e6,
        6.0e6 / rps
    );
}
