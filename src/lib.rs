//! # haystack
//!
//! A from-scratch reproduction of **"A Haystack Full of Needles: Scalable
//! Detection of IoT Devices in the Wild"** (Saidi et al., IMC 2020): detect
//! consumer IoT devices per subscriber line from passive, sparsely sampled
//! flow data (NetFlow v9 / IPFIX), at ISP and IXP scale.
//!
//! This facade re-exports the full workspace API. The crates underneath:
//!
//! | crate | role |
//! |---|---|
//! | [`net`] | addresses, prefixes, ASNs, port classes, anonymization, simulated time |
//! | [`flow`] | packets, flow cache, samplers, NetFlow v9 + IPFIX codecs |
//! | [`dns`] | domain names, zones, churning resolver, passive DNS (DNSDB-style) |
//! | [`scan`] | certificates, banners, scan database (Censys-style) |
//! | [`backend`] | the synthetic server-side Internet (dedicated / cloud / CDN) |
//! | [`testbed`] | the 96-device ground-truth testbeds and experiment driver |
//! | [`wild`] | population-scale ISP and IXP vantage points |
//! | [`core`] | the paper's methodology: classification → rules → detection → reports |
//!
//! ## Quickstart
//!
//! ```
//! use haystack::core::pipeline::{Pipeline, PipelineConfig};
//!
//! // Build the world, capture ground truth, generate detection rules.
//! let pipeline = Pipeline::run(PipelineConfig::fast(42));
//! assert_eq!(pipeline.stats.manufacturer_rules, 20);
//! assert_eq!(pipeline.stats.product_rules, 11);
//! ```
//!
//! See `examples/` for end-to-end scenarios (ISP deployment, IXP
//! monitoring with anti-spoofing, usage-privacy analysis, botnet triage)
//! and `crates/bench` for the per-figure reproduction binaries.

pub use haystack_backend as backend;
pub use haystack_core as core;
pub use haystack_dns as dns;
pub use haystack_flow as flow;
pub use haystack_net as net;
pub use haystack_scan as scan;
pub use haystack_testbed as testbed;
pub use haystack_wild as wild;
