//! The streaming pin: any chunking of an hour, through any vantage
//! point, must be byte-identical to the legacy materialized
//! `HourTraffic` path — same records in the same order, same funnel
//! accounting, and therefore identical detections.
//!
//! The unit tests in `haystack-wild` pin each stream implementation to
//! its eager twin; these tests pin the *composition*: vantage point →
//! chunks → detector, across chunk sizes 1, 7, 1024, and whole-hour,
//! with and without feed chaos.

use haystack::core::detector::{Detector, DetectorConfig};
use haystack::core::hitlist::HitList;
use haystack::core::pipeline::{Pipeline, PipelineConfig};
use haystack::flow::ChaosConfig;
use haystack::net::{DayBin, HourBin};
use haystack::wild::{
    FeedDegradation, HourTraffic, IspConfig, IspVantage, IxpConfig, IxpVantage, RecordChunk,
    VantagePoint,
};
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(7)))
}

const CHUNK_SIZES: [usize; 4] = [1, 7, 1_024, usize::MAX];

/// Drain `vantage`'s stream at `chunk_records`, collecting records and
/// summing per-chunk accounting.
fn drain(
    vantage: &dyn VantagePoint,
    world: &haystack::testbed::materialize::MaterializedWorld,
    hour: HourBin,
    chunk_records: usize,
) -> (HourTraffic, usize) {
    let mut out = HourTraffic::default();
    let mut chunk = RecordChunk::default();
    let mut chunks = 0usize;
    let mut stream = vantage.stream_hour(world, hour, chunk_records);
    while stream.next_chunk(&mut chunk) {
        assert!(
            chunk_records == usize::MAX || chunk.records.len() <= chunk_records,
            "chunk overflow: {} > {chunk_records}",
            chunk.records.len()
        );
        chunks += 1;
        out.records.extend_from_slice(&chunk.records);
        out.sampled_packets += chunk.sampled_packets;
        out.degradation.absorb(chunk.degradation);
    }
    (out, chunks)
}

fn assert_hour_equivalent(vantage: &dyn VantagePoint, label: &str) {
    let p = pipeline();
    let hour = HourBin(21);
    let want = vantage.materialize_hour(&p.world, hour);
    for chunk_records in CHUNK_SIZES {
        let (got, chunks) = drain(vantage, &p.world, hour, chunk_records);
        assert_eq!(got.records, want.records, "{label}: records diverge at chunk {chunk_records}");
        assert_eq!(
            got.sampled_packets, want.sampled_packets,
            "{label}: sampled_packets diverge at chunk {chunk_records}"
        );
        assert_eq!(
            got.degradation, want.degradation,
            "{label}: degradation diverges at chunk {chunk_records}"
        );
        assert!(chunks > 0, "{label}: at least one (possibly accounting-only) chunk");
    }
}

#[test]
fn isp_any_chunking_matches_the_materialized_hour() {
    let p = pipeline();
    let clean = IspVantage::new(
        &p.catalog,
        IspConfig { lines: 6_000, sampling: 500, seed: 13, background: true },
    );
    assert_hour_equivalent(&clean, "isp/clean");
    let chaotic = IspVantage::new(
        &p.catalog,
        IspConfig { lines: 6_000, sampling: 500, seed: 13, background: true },
    )
    .with_chaos(ChaosConfig::at_severity(0.5, 99));
    assert_hour_equivalent(&chaotic, "isp/chaos");
}

#[test]
fn ixp_any_chunking_matches_the_materialized_hour() {
    let p = pipeline();
    let config = IxpConfig {
        sampling: 1_000,
        seed: 23,
        big_eyeballs: 2,
        big_lines: 1_500,
        tail_members: 3,
        tail_lines: 200,
        route_visibility: 0.7,
        spoofed_per_hour: 400,
    };
    let clean = IxpVantage::new(&p.catalog, config.clone());
    assert_hour_equivalent(&clean, "ixp/clean");
    let chaotic = IxpVantage::new(&p.catalog, config).with_chaos(ChaosConfig::at_severity(0.4, 5));
    assert_hour_equivalent(&chaotic, "ixp/chaos");
}

#[test]
fn detections_and_funnel_stats_are_chunking_invariant() {
    // The satellite claim, end to end: feed the same ISP day at every
    // chunk size into a fresh detector; detection sets and funnel stats
    // must be identical to the HourTraffic path.
    let p = pipeline();
    let isp = IspVantage::new(
        &p.catalog,
        IspConfig { lines: 6_000, sampling: 1_000, seed: 31, background: false },
    )
    .with_chaos(ChaosConfig::at_severity(0.3, 17));
    let hours = 6usize;

    // Baseline: the legacy materialized path.
    let mut base = Detector::new(
        &p.rules,
        HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
        DetectorConfig::default(),
    );
    let mut base_packets = 0u64;
    let mut base_deg = FeedDegradation::default();
    for hour in DayBin(0).hours().take(hours) {
        let t = isp.capture_hour(&p.world, hour);
        base_packets += t.sampled_packets;
        base_deg.absorb(t.degradation);
        for r in &t.records {
            base.observe_wild(r);
        }
    }
    let base_detected: Vec<(&str, Vec<haystack::net::AnonId>)> = p
        .rules
        .rules
        .iter()
        .map(|r| {
            let class = p.rules.class_name(r.class);
            (class, base.detected_lines(class))
        })
        .collect();

    for chunk_records in CHUNK_SIZES {
        let mut det = Detector::new(
            &p.rules,
            HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
            DetectorConfig::default(),
        );
        let mut packets = 0u64;
        let mut deg = FeedDegradation::default();
        let mut chunk = RecordChunk::default();
        for hour in DayBin(0).hours().take(hours) {
            let mut stream = isp.stream_hour(&p.world, hour, chunk_records);
            while stream.next_chunk(&mut chunk) {
                packets += chunk.sampled_packets;
                deg.absorb(chunk.degradation);
                for r in &chunk.records {
                    det.observe_wild(r);
                }
            }
        }
        assert_eq!(packets, base_packets, "sampled_packets diverge at chunk {chunk_records}");
        assert_eq!(deg, base_deg, "funnel stats diverge at chunk {chunk_records}");
        for (class, want) in &base_detected {
            assert_eq!(
                &det.detected_lines(class),
                want,
                "detections for {class} diverge at chunk {chunk_records}"
            );
        }
    }
}
