//! Integration tests spanning the whole workspace: ground truth →
//! classification → rules → wild detection, validated against the
//! simulation's ownership oracles (which the detector never sees).

use haystack::core::detector::{Detector, DetectorConfig};
use haystack::core::hitlist::HitList;
use haystack::core::parallel::DetectorPool;
use haystack::core::pipeline::{Pipeline, PipelineConfig};
use haystack::core::report::{run_isp_study, run_ixp_study, DeviceGroup, IspStudyConfig, IxpStudyConfig};
use haystack::net::{AnonId, DayBin, StudyWindow};
use haystack::wild::{
    IspConfig, IspVantage, IxpConfig, IxpVantage, RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS,
};
use std::collections::BTreeSet;
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(99)))
}

fn isp(lines: u32) -> IspVantage {
    IspVantage::new(
        &pipeline().catalog,
        IspConfig { lines, sampling: 1_000, seed: 4242, background: true },
    )
}

/// Owner oracle: the anonymized ids of lines owning any product whose
/// class ancestry includes `class`.
fn owner_ids(isp: &IspVantage, class: &str, day: u32) -> BTreeSet<AnonId> {
    let p = pipeline();
    let mut out = BTreeSet::new();
    for (pi, prod) in p.catalog.products.iter().enumerate() {
        let in_class = p.catalog.ancestry(prod.class).iter().any(|c| c.name == class);
        if !in_class {
            continue;
        }
        for &line in isp.population().owners_of(pi) {
            out.insert(isp.anonymizer().anonymize(isp.population().ip_of(line, day)));
        }
    }
    out
}

#[test]
fn alexa_detection_has_high_precision_and_useful_recall() {
    let p = pipeline();
    let isp = isp(12_000);
    // The day streams chunk-by-chunk into the persistent worker pool —
    // the deployment shape; the hour is never materialized.
    let mut pool = DetectorPool::new(
        &p.rules,
        &HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
        DetectorConfig::default(),
        2,
    );
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    for hour in DayBin(0).hours() {
        let mut stream = isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS);
        pool.observe_stream(&mut *stream, &mut chunk).unwrap();
    }
    pool.finish().unwrap();
    let detected: BTreeSet<AnonId> = pool.detected_lines("Alexa Enabled").unwrap().into_iter().collect();
    let owners = owner_ids(&isp, "Alexa Enabled", 0);
    assert!(!detected.is_empty(), "nothing detected");
    let true_pos = detected.intersection(&owners).count();
    let precision = true_pos as f64 / detected.len() as f64;
    let recall = true_pos as f64 / owners.len() as f64;
    assert!(precision > 0.97, "precision {precision:.3}");
    assert!(recall > 0.5, "daily recall {recall:.3} (paper: Alexa detectable within a day)");
}

#[test]
fn background_browsing_alone_triggers_nothing() {
    // A population with zero IoT penetration but full background traffic:
    // the detector must stay silent (the §4.1/§4.2 filters put no generic
    // or shared IP in the hitlist).
    let p = pipeline();
    let mut catalog = p.catalog.clone();
    for prod in &mut catalog.products {
        prod.penetration = 0.0;
    }
    let isp = IspVantage::new(
        &catalog,
        IspConfig { lines: 8_000, sampling: 200, seed: 7, background: true },
    );
    let mut det = Detector::new(
        &p.rules,
        HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
        DetectorConfig::default(),
    );
    let mut records = 0usize;
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    for hour in DayBin(0).hours().take(6) {
        let mut stream = isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS);
        while stream.next_chunk(&mut chunk) {
            records += chunk.records.len();
            for r in &chunk.records {
                det.observe_wild(r);
            }
        }
    }
    assert!(records > 1_000, "background produced traffic: {records}");
    for rule in &p.rules.rules {
        assert!(
            det.detected_lines(p.rules.class_name(rule.class)).is_empty(),
            "false positive for {} from pure background traffic",
            p.rules.class_name(rule.class)
        );
    }
}

#[test]
fn isp_study_headline_shares_track_the_paper() {
    let p = pipeline();
    let isp = isp(15_000);
    let study = run_isp_study(
        p,
        &p.world,
        &isp,
        &IspStudyConfig { window: StudyWindow::days(0, 1), ..Default::default() },
    );
    let lines = 15_000f64;
    let any = study.any_iot_daily[&0] as f64 / lines;
    // Paper: ~20 % of lines show IoT activity per day.
    assert!((0.10..=0.32).contains(&any), "any-IoT share {any:.3}");
    let alexa = study.group_daily.get(&(DeviceGroup::Alexa, 0)).copied().unwrap_or(0) as f64 / lines;
    // Paper: ~14 % Alexa-enabled penetration.
    assert!((0.07..=0.20).contains(&alexa), "alexa share {alexa:.3}");
    // Samsung hour→day gain is larger than Alexa's (paper: ×6 vs ×2).
    let peak = |g: DeviceGroup| {
        (0..24u32)
            .filter_map(|h| study.group_hourly.get(&(g, h)))
            .max()
            .copied()
            .unwrap_or(0) as f64
    };
    let alexa_gain = study.group_daily[&(DeviceGroup::Alexa, 0)] as f64 / peak(DeviceGroup::Alexa).max(1.0);
    let samsung_gain =
        study.group_daily[&(DeviceGroup::Samsung, 0)] as f64 / peak(DeviceGroup::Samsung).max(1.0);
    assert!(
        samsung_gain > alexa_gain,
        "samsung day/hour gain {samsung_gain:.1} should exceed alexa's {alexa_gain:.1}"
    );
}

#[test]
fn ixp_spoofing_filter_kills_fake_evidence() {
    let p = pipeline();
    let config = IxpConfig {
        sampling: 2_000,
        seed: 31,
        big_eyeballs: 2,
        big_lines: 2_000,
        tail_members: 4,
        tail_lines: 100,
        route_visibility: 0.8,
        spoofed_per_hour: 5_000, // heavy attack
    };
    let ixp = IxpVantage::new(&p.catalog, config);
    let window = StudyWindow::days(0, 1);
    let filtered = run_ixp_study(p, &p.world, &ixp, &IxpStudyConfig { window, ..Default::default() });
    let unfiltered = run_ixp_study(
        p,
        &p.world,
        &ixp,
        &IxpStudyConfig { window, established_filter: false, ..Default::default() },
    );
    let total = |s: &haystack::core::report::IxpStudyResult| -> u64 {
        s.daily_ips.values().sum()
    };
    assert!(
        total(&unfiltered) > total(&filtered) * 2,
        "spoofing should inflate unfiltered counts: {} vs {}",
        total(&unfiltered),
        total(&filtered)
    );
    // With the filter, detected IPs are overwhelmingly real owners.
    // (Owner oracle: lines with any device across members.)
    let real_total = total(&filtered);
    assert!(real_total > 0, "filter must not kill real detections");
}

#[test]
fn mitigation_starves_only_the_targeted_class() {
    use haystack::core::mitigation::{block_plan, enforce, Action};
    let p = pipeline();
    let isp = isp(10_000);
    let plan = block_plan(&p.rules, &p.dnsdb, "Yi Camera", DayBin(0), Action::Block)
        .expect("Yi Camera has a rule");

    let mut unfiltered = Detector::new(
        &p.rules,
        HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
        DetectorConfig::default(),
    );
    let mut filtered = Detector::new(
        &p.rules,
        HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
        DetectorConfig::default(),
    );
    let mut total_blocked = 0u64;
    for hour in DayBin(0).hours() {
        let records = isp.capture_hour(&p.world, hour).records;
        for r in &records {
            unfiltered.observe_wild(r);
        }
        let (passed, log) = enforce(&plan, records);
        total_blocked += log.blocked;
        for r in &passed {
            filtered.observe_wild(r);
        }
    }
    assert!(total_blocked > 0, "the BNG filter must have dropped something");
    assert!(
        !unfiltered.detected_lines("Yi Camera").is_empty(),
        "Yi owners exist in this population"
    );
    assert!(
        filtered.detected_lines("Yi Camera").is_empty(),
        "blocking the C2 must blind the detector for that class"
    );
    // Collateral check: another camera class is untouched.
    assert_eq!(
        filtered.detected_lines("Wansview Cam.").len(),
        unfiltered.detected_lines("Wansview Cam.").len(),
        "unrelated classes must be unaffected"
    );
}

#[test]
fn dns_assisted_covers_what_flows_cannot() {
    use haystack::core::dns_assisted::{dns_rules, DnsDetector};
    use haystack::wild::gen::generate_dns_hour;
    let p = pipeline();
    let isp = isp(10_000);
    let rules = dns_rules(&p.catalog, &p.observations, &p.classification);
    let mut det = DnsDetector::new(&rules, 0.4);
    for hour in DayBin(0).hours() {
        for e in generate_dns_hour(
            isp.population(),
            isp.plan(),
            hour,
            1.0,
            isp.config().seed,
            isp.anonymizer(),
        ) {
            det.observe_event(&e, &isp.plan().domains);
        }
    }
    // Google Home: no flow rule (§4.2.3), but DNS sees it.
    assert!(p.rules.rule("Google Home").is_none());
    let google = det.detected_lines("Google Home");
    assert!(!google.is_empty(), "resolver logs must expose the CDN-hosted class");
    // And precision against the oracle stays high.
    let owners = owner_ids(&isp, "Google Home", 0);
    let tp = google.iter().filter(|l| owners.contains(l)).count();
    let precision = tp as f64 / google.len() as f64;
    assert!(precision > 0.95, "dns precision {precision:.3}");
}

#[test]
fn streaming_detection_is_worker_and_chunking_invariant() {
    // Same seed, same day: the materialized sequential detector and the
    // streamed pool must agree exactly, for every class, at 1, 2, and 8
    // workers and an unusual chunk size.
    let p = pipeline();
    let isp = isp(6_000);
    let hours = 8usize;
    let mut det = Detector::new(
        &p.rules,
        HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
        DetectorConfig::default(),
    );
    for hour in DayBin(0).hours().take(hours) {
        for r in &isp.capture_hour(&p.world, hour).records {
            det.observe_wild(r);
        }
    }
    for workers in [1usize, 2, 8] {
        let mut pool = DetectorPool::new(
            &p.rules,
            &HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
            DetectorConfig::default(),
            workers,
        );
        let mut chunk = RecordChunk::default();
        for hour in DayBin(0).hours().take(hours) {
            let mut stream = isp.stream_hour(&p.world, hour, 1_013);
            pool.observe_stream(&mut *stream, &mut chunk).unwrap();
        }
        pool.finish().unwrap();
        for rule in &p.rules.rules {
            let class = p.rules.class_name(rule.class);
            assert_eq!(
                pool.detected_lines(class).unwrap(),
                det.detected_lines(class),
                "class {class} diverges at {workers} workers"
            );
        }
    }
}

/// Golden snapshot of the whole gen → degrade → detect → report path:
/// the detection report AND the telemetry counters are pinned to
/// fixtures under `tests/golden/`. Every stage is seeded and the
/// telemetry subset is counters-only (no gauges, no span histograms),
/// so a diff means behavior changed — re-bless with
/// `HAYSTACK_BLESS=1 cargo test golden_e2e` after verifying the change
/// is intended.
#[test]
fn golden_e2e_snapshot_matches_fixture() {
    use haystack::core::telemetry::{self, HotStats, HotStatsCounters, InstrumentedStream};
    use haystack::flow::ChaosConfig;
    use haystack::wild::{DegradeStream, RecordStream};

    telemetry::set_enabled(true);
    let p = pipeline();
    let isp = isp(4_000);
    let scope = telemetry::Scope::named("golden");
    let chaos = ChaosConfig {
        drop_probability: 0.05,
        duplicate_probability: 0.02,
        seed: 17,
        ..ChaosConfig::off()
    };
    // Single-threaded detector: per-shard pool counters would pin the
    // worker count into the fixture; the detector itself is invariant.
    let mut det = Detector::new(
        &p.rules,
        HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
        DetectorConfig::default(),
    );
    let hot = HotStatsCounters::new(&scope.sub("detector"));
    let mut flushed = HotStats::default();
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    for (h, hour) in DayBin(0).hours().enumerate() {
        let mut stream = InstrumentedStream::new(
            DegradeStream::new(
                isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS),
                chaos.clone(),
                h as u64,
                DEFAULT_CHUNK_RECORDS,
            ),
            &scope.sub("stream"),
        );
        while stream.next_chunk(&mut chunk) {
            det.observe_chunk(&chunk.records);
            let now = det.hot_stats();
            hot.flush(now.since(&flushed));
            flushed = now;
        }
    }

    let report = serde_json::json!({
        "window": "day 0",
        "chaos": {"drop_probability": 0.05, "duplicate_probability": 0.02, "seed": 17},
        "classes": p.rules.rules.iter().map(|r| serde_json::json!({
            "class": p.rules.class_name(r.class),
            "detected_lines": det.detected_lines(p.rules.class_name(r.class)).iter().map(|l| l.0).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
    });
    let filtered = telemetry::global().snapshot().filtered("golden");
    let report_text = serde_json::to_string_pretty(&report).expect("serializable");
    let tel_text =
        serde_json::to_string_pretty(&filtered.counters_to_json()).expect("serializable");

    // CI artifact: the run's full Prometheus exposition (target/ is
    // uploaded from the golden-e2e job, never committed).
    let target = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    let _ = std::fs::create_dir_all(&target);
    let _ = std::fs::write(target.join("metrics_snapshot.prom"), filtered.to_prometheus());

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    if std::env::var_os("HAYSTACK_BLESS").is_some() {
        std::fs::create_dir_all(&dir).expect("create tests/golden");
        std::fs::write(dir.join("e2e_report.json"), format!("{report_text}\n")).unwrap();
        std::fs::write(dir.join("e2e_telemetry.json"), format!("{tel_text}\n")).unwrap();
        return;
    }
    let fixture = |name: &str| {
        std::fs::read_to_string(dir.join(name)).unwrap_or_else(|e| {
            panic!("missing fixture {name} ({e}); run HAYSTACK_BLESS=1 cargo test golden_e2e")
        })
    };
    assert_eq!(
        report_text.trim(),
        fixture("e2e_report.json").trim(),
        "detection report drifted from tests/golden/e2e_report.json"
    );
    assert_eq!(
        tel_text.trim(),
        fixture("e2e_telemetry.json").trim(),
        "telemetry counters drifted from tests/golden/e2e_telemetry.json"
    );
}

#[test]
fn full_flow_pipeline_ipfix_round_trip() {
    // Packets → sampler → flow cache → IPFIX wire → collector → detector:
    // the wire format carries everything the detector needs.
    use haystack::flow::cache::{FlowCache, FlowCacheConfig};
    use haystack::flow::export::{ExportProtocol, Exporter};
    use haystack::flow::sampling::{PacketSampler, SystematicSampler};
    use haystack::flow::Collector;
    use haystack::net::ports::Proto;

    let p = pipeline();
    let mut sampler = SystematicSampler::new(50, 3).unwrap();
    let mut cache = FlowCache::new(FlowCacheConfig::default());
    let mut exporter = Exporter::new(ExportProtocol::Ipfix, 9);
    let mut collector = Collector::new();
    let mut det = Detector::new(
        &p.rules,
        HitList::whole_window(&p.rules),
        DetectorConfig::default(),
    );
    let line = AnonId(1);
    for hour in StudyWindow::IDLE_GT.hour_bins().take(3) {
        for g in p.driver.generate_hour(&p.world, hour) {
            if sampler.sample() {
                cache.on_packet(&g.packet);
            }
        }
        cache.advance(hour.next().start());
        for msg in exporter.export(&cache.drain_expired(), hour.start().0 as u32).unwrap() {
            for rec in collector.feed_ipfix(msg).unwrap() {
                let proto = rec.key.proto;
                det.observe(line, rec.key.dst, rec.key.dport, proto, rec.is_established_evidence(), hour);
            }
        }
        let _ = Proto::Tcp;
    }
    assert!(
        det.is_detected(line, "Alexa Enabled"),
        "the Home-VP line must be detected through the full IPFIX pipeline"
    );
    assert_eq!(collector.malformed_messages(), 0);
    assert_eq!(collector.dropped_unknown_template(), 0);
}
