#!/usr/bin/env bash
# Re-run only the ground-truth-derived figures (cheap subset of
# run_all_figures.sh) after changes to the testbed traffic model.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p haystack-bench --bins || exit 1
run() {
  local bin="$1"; shift
  echo ">>> $bin $*"
  ./target/release/"$bin" "$@" > "results/$bin.txt" 2> "results/$bin.log" &&
    echo "    ok" || echo "    FAILED (see results/$bin.log)"
}
for bin in pipeline_stats fig5 fig6 fig8; do run "$bin" "$@" & done
wait
for bin in fig9 fig10 fig17 baseline_compare; do run "$bin" "$@" & done
wait
run ablation_hiding "$@"
echo "ground-truth figures refreshed"
