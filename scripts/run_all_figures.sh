#!/usr/bin/env bash
# Regenerate every paper table/figure at full fidelity into results/.
# Usage: scripts/run_all_figures.sh [--fast]   (fast = smoke run)
set -u
cd "$(dirname "$0")/.."
mkdir -p results
FLAGS="${1:-}"
LINES="${LINES:-100000}"

cargo build --release -p haystack-bench --bins || exit 1

run() {
  local bin="$1"; shift
  echo ">>> $bin $*"
  ./target/release/"$bin" "$@" > "results/$bin.txt" 2> "results/$bin.log" &&
    echo "    ok: results/$bin.txt" || echo "    FAILED: see results/$bin.log"
}

# Cheap, catalog-only.
run table1

# Ground-truth figures (each builds the full pipeline; run 4-way parallel).
for bin in pipeline_stats fig5 fig6 fig8; do
  run "$bin" $FLAGS &
done
wait
for bin in fig9 fig10 fig17; do
  run "$bin" $FLAGS &
done
wait

# Wild figures (ISP study is the heavy part).
for bin in fig11 fig12 fig13; do
  run "$bin" $FLAGS --lines "$LINES" &
done
wait
for bin in fig14 fig18 fig15 fig16; do
  run "$bin" $FLAGS --lines "$LINES" &
done
wait

# Accuracy and the §7.4 ablations.
run accuracy_report $FLAGS --lines "$LINES" &
run ablation_dns $FLAGS --lines "$LINES" &
wait
run ablation_hiding $FLAGS

echo "all figure outputs in results/"
