#!/usr/bin/env bash
# Re-run only the wild (population-scale) figures after changes to
# penetrations or the wild generator.
set -u
cd "$(dirname "$0")/.."
mkdir -p results
LINES="${LINES:-100000}"
cargo build --release -p haystack-bench --bins || exit 1
run() {
  local bin="$1"; shift
  echo ">>> $bin $*"
  ./target/release/"$bin" "$@" > "results/$bin.txt" 2> "results/$bin.log" &&
    echo "    ok" || echo "    FAILED (see results/$bin.log)"
}
for bin in fig11 fig12 fig13; do run "$bin" --lines "$LINES" & done
wait
for bin in fig14 fig18 fig15 fig16; do run "$bin" --lines "$LINES" & done
wait
run accuracy_report --lines "$LINES" &
run ablation_dns --lines "$LINES" &
wait
echo "wild figures refreshed"
