//! §4.2 — from IoT-specific domains to dedicated service IPs.
//!
//! Three stages, exactly as Figure 7 draws them:
//!
//! 1. **DNSDB** (§4.2.1): a domain is *dedicated* when, on **every day**
//!    of the window, every service IP it mapped to served names from a
//!    single SLD (the domain's own) — after discounting cloud-provider
//!    infrastructure names, per the paper's EC2 allowance: a VM's public
//!    IP reverse-maps to the provider's zone *and* the tenant CNAME, yet
//!    the IP is exclusively the tenant's while held.
//! 2. **Censys** (§4.2.2): domains without DNSDB records fall back to the
//!    certificate/banner expansion — possible only if the device speaks
//!    HTTPS to them and the presented certificate passes the match
//!    criteria (SLD-anchored, no foreign SAN).
//! 3. **Removal** (§4.2.3): services left without dedicated domains are
//!    dropped from rule generation.

use haystack_dns::{DnsDb, DomainName};
use haystack_net::StudyWindow;
use haystack_scan::ScanDb;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Analyst knowledge about infrastructure zones: which SLDs are cloud
/// providers' machine zones (`amazonaws.com`-alikes). The §4.2.1 cloud
/// allowance discounts these when testing exclusivity.
#[derive(Debug, Clone, Default)]
pub struct InfraKnowledge {
    cloud_slds: BTreeSet<DomainName>,
}

impl InfraKnowledge {
    /// Build from the cloud providers' zone SLDs.
    pub fn new(cloud_slds: impl IntoIterator<Item = DomainName>) -> Self {
        InfraKnowledge { cloud_slds: cloud_slds.into_iter().collect() }
    }

    /// Whether an SLD is a cloud machine zone.
    pub fn is_cloud_zone(&self, sld: &DomainName) -> bool {
        self.cloud_slds.contains(sld)
    }
}

/// Outcome of the §4.2.1 analysis for one domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DedicationVerdict {
    /// Every observed service IP is exclusive to the domain's SLD; the
    /// union of observed IPs over the window is attached.
    Dedicated(BTreeSet<Ipv4Addr>),
    /// At least one service IP also serves foreign SLDs.
    Shared,
    /// DNSDB has no record (→ try Censys, §4.2.2).
    NoRecord,
}

/// §4.2.1: classify one domain against the passive-DNS view.
pub fn dnsdb_verdict(
    dnsdb: &DnsDb,
    infra: &InfraKnowledge,
    domain: &DomainName,
    window: &StudyWindow,
) -> DedicationVerdict {
    if !dnsdb.has_records(domain, window) {
        return DedicationVerdict::NoRecord;
    }
    let own_sld = domain.sld();
    let mut all_ips = BTreeSet::new();
    // "all service IPs have to be dedicated to this domain for all days".
    for day in window.day_bins() {
        let day_window = StudyWindow::days(day.0, day.0 + 1);
        let ips = dnsdb.ips_of(domain, &day_window);
        for ip in ips {
            let mut foreign = false;
            for sld in dnsdb.slds_of_ip(ip, &day_window) {
                if sld == own_sld || infra.is_cloud_zone(&sld) {
                    continue;
                }
                foreign = true;
                break;
            }
            if foreign {
                return DedicationVerdict::Shared;
            }
            all_ips.insert(ip);
        }
    }
    if all_ips.is_empty() {
        // Records exist somewhere in the window but not day-resolved —
        // treat as no usable record.
        return DedicationVerdict::NoRecord;
    }
    DedicationVerdict::Dedicated(all_ips)
}

/// §4.2.2: Censys fallback for a DNSDB-less domain. `uses_https` and
/// `seed_ips` come from the ground-truth traffic (we know the device
/// spoke TLS and to which addresses).
pub fn censys_fallback(
    scans: &ScanDb,
    domain: &DomainName,
    uses_https: bool,
    seed_ips: &BTreeSet<Ipv4Addr>,
) -> Option<BTreeSet<Ipv4Addr>> {
    if !uses_https {
        return None;
    }
    for &seed in seed_ips {
        if let Some(ips) = scans.expand_domain(domain, seed) {
            if !ips.is_empty() {
                return Some(ips);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_dns::zone::RotationPolicy;
    use haystack_dns::{Resolver, ZoneDb};
    use haystack_net::SimTime;
    use haystack_scan::{Certificate, HostScan, HttpsBanner};

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 7, last)
    }

    fn infra() -> InfraKnowledge {
        InfraKnowledge::new([d("cloudnova.com")])
    }

    /// Build a DNSDB fed hourly over the first 3 days from a small zone.
    fn fed_dnsdb(zones: &ZoneDb) -> DnsDb {
        let resolver = Resolver::new(zones);
        let mut db = DnsDb::new();
        let names: Vec<DomainName> = zones.names().cloned().collect();
        for day in 0..3u64 {
            for hour in 0..24u64 {
                let t = SimTime(day * 86_400 + hour * 3_600);
                for n in &names {
                    if let Some(res) = resolver.resolve(n, t) {
                        db.record_resolution(&res, t);
                    }
                }
            }
        }
        db
    }

    #[test]
    fn dedicated_pool_is_dedicated() {
        let mut z = ZoneDb::new();
        z.insert_pool(
            d("api.deva.com"),
            (1..=6).map(ip).collect(),
            RotationPolicy { active_count: 3, period_secs: 3_600 },
        );
        let db = fed_dnsdb(&z);
        match dnsdb_verdict(&db, &infra(), &d("api.deva.com"), &StudyWindow::days(0, 3)) {
            DedicationVerdict::Dedicated(ips) => {
                assert!(ips.len() >= 3, "churn exposes most of the pool: {}", ips.len());
            }
            v => panic!("expected dedicated, got {v:?}"),
        }
    }

    #[test]
    fn cloud_vm_is_dedicated_via_the_ec2_allowance() {
        let mut z = ZoneDb::new();
        z.insert_cname(d("iot.devx.com"), d("devx-vm1.ec2compute.cloudnova.com"));
        z.insert_pool(
            d("devx-vm1.ec2compute.cloudnova.com"),
            vec![ip(50)],
            RotationPolicy::STABLE,
        );
        let db = fed_dnsdb(&z);
        match dnsdb_verdict(&db, &infra(), &d("iot.devx.com"), &StudyWindow::days(0, 3)) {
            DedicationVerdict::Dedicated(ips) => assert_eq!(ips.into_iter().collect::<Vec<_>>(), vec![ip(50)]),
            v => panic!("expected dedicated, got {v:?}"),
        }
    }

    #[test]
    fn cdn_tenant_is_shared() {
        let mut z = ZoneDb::new();
        z.insert_cname(d("devb.com"), d("devb-com.akadns.net"));
        z.insert_cname(d("other.com"), d("other-com.akadns.net"));
        let edges: Vec<Ipv4Addr> = (100..=103).map(ip).collect();
        z.insert_pool(d("devb-com.akadns.net"), edges.clone(), RotationPolicy { active_count: 2, period_secs: 3_600 });
        z.insert_pool(d("other-com.akadns.net"), edges, RotationPolicy { active_count: 2, period_secs: 3_600 });
        let db = fed_dnsdb(&z);
        assert_eq!(
            dnsdb_verdict(&db, &infra(), &d("devb.com"), &StudyWindow::days(0, 3)),
            DedicationVerdict::Shared
        );
    }

    #[test]
    fn one_bad_day_taints_the_domain() {
        // Dedicated on days 0–2, but on day 2 the IP is also handed to a
        // foreign domain: "for all days" must fail.
        let mut z = ZoneDb::new();
        z.insert_pool(d("api.devc.com"), vec![ip(60)], RotationPolicy::STABLE);
        let mut db = fed_dnsdb(&z);
        // Inject the foreign observation directly on day 2.
        let mut z2 = ZoneDb::new();
        z2.insert_pool(d("intruder.net"), vec![ip(60)], RotationPolicy::STABLE);
        let r2 = Resolver::new(&z2);
        let res = r2.resolve(&d("intruder.net"), SimTime(2 * 86_400 + 60)).unwrap();
        db.record_resolution(&res, SimTime(2 * 86_400 + 60));
        assert_eq!(
            dnsdb_verdict(&db, &infra(), &d("api.devc.com"), &StudyWindow::days(0, 3)),
            DedicationVerdict::Shared
        );
    }

    #[test]
    fn missing_domain_is_no_record() {
        let z = ZoneDb::new();
        let db = fed_dnsdb(&z);
        assert_eq!(
            dnsdb_verdict(&db, &infra(), &d("ghost.com"), &StudyWindow::days(0, 3)),
            DedicationVerdict::NoRecord
        );
    }

    #[test]
    fn censys_fallback_requires_https_and_matching_cert() {
        let mut scans = ScanDb::new();
        let cert = Certificate::single(haystack_dns::DomainPattern::parse("*.deve.com").unwrap(), 1);
        let banner = HttpsBanner::new("deve", "x");
        for i in [70u8, 71, 72] {
            scans.insert(ip(i), HostScan { cert: cert.clone(), banner: banner.clone(), port: 443 });
        }
        let seeds: BTreeSet<_> = [ip(70)].into_iter().collect();
        let got = censys_fallback(&scans, &d("c.deve.com"), true, &seeds).unwrap();
        assert_eq!(got.len(), 3);
        // No HTTPS → no fallback.
        assert_eq!(censys_fallback(&scans, &d("c.deve.com"), false, &seeds), None);
        // Unknown seed → no fallback.
        let bad: BTreeSet<_> = [ip(99)].into_iter().collect();
        assert_eq!(censys_fallback(&scans, &d("c.deve.com"), true, &bad), None);
    }
}
