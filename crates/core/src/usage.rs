//! §7.1 — distinguishing active use from mere presence.
//!
//! Two independent signals, both from the ground truth:
//!
//! 1. **Usage-indicator domains**: some domains only speak when the
//!    device is used (flagged on the rule during §4.3 generation from the
//!    active/idle rate contrast). Any sampled flow to one is direct
//!    evidence of active use.
//! 2. **Volume**: the paper "used the threshold of 10 for packet counts
//!    per hour to filter out subscribers that actively used Alexa-enabled
//!    devices" — active use multiplies traffic enough to survive
//!    sampling at that level, idle chatter does not (Figure 17).
//!
//! The tracker is windowed per hour: callers reset it at hour boundaries.

use crate::checkpoint::{CheckpointError, UsageDelta, UsageState};
use crate::fasthash::{FastMap, FastSet};
use crate::hitlist::HitList;
use crate::rules::RuleSet;
use crate::telemetry::HotStats;
use haystack_net::AnonId;
use haystack_wild::WildRecord;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Usage-detection configuration.
#[derive(Debug, Clone, Copy)]
pub struct UsageConfig {
    /// Sampled packets/hour to a rule's service IPs that imply active use.
    pub packet_threshold: u64,
}

impl Default for UsageConfig {
    fn default() -> Self {
        UsageConfig { packet_threshold: 10 }
    }
}

/// Per-hour active-use tracker.
#[derive(Debug)]
pub struct UsageTracker {
    rules: Arc<RuleSet>,
    hitlist: HitList,
    config: UsageConfig,
    /// Per-rule: line → sampled packets this hour.
    packets: Vec<FastMap<AnonId, u64>>,
    /// Per-rule: lines that touched a usage-indicator domain.
    indicator: Vec<FastSet<AnonId>>,
    /// Per-rule lines mutated since the last snapshot (every match
    /// mutates the packet tally, so one set covers both maps).
    dirty: Vec<FastSet<AnonId>>,
    /// Set when the dirty sets cannot bound the mutations since the last
    /// snapshot (fresh tracker, hourly reset, restore, rule swap).
    dirty_all: bool,
    /// Plain hot-path tallies (`detections` counts indicator hits).
    stats: HotStats,
}

impl UsageTracker {
    /// Create a tracker sharing the detector's rule set and hitlist.
    pub fn new(rules: Arc<RuleSet>, hitlist: HitList, config: UsageConfig) -> Self {
        let n = rules.rules.len();
        UsageTracker {
            rules,
            hitlist,
            config,
            packets: (0..n).map(|_| FastMap::default()).collect(),
            indicator: (0..n).map(|_| FastSet::default()).collect(),
            dirty: (0..n).map(|_| FastSet::default()).collect(),
            dirty_all: true,
            stats: HotStats::default(),
        }
    }

    /// Swap the daily hitlist.
    pub fn set_hitlist(&mut self, hitlist: HitList) {
        self.hitlist = hitlist;
    }

    /// The rule set this tracker observes against.
    pub fn rules(&self) -> &Arc<RuleSet> {
        &self.rules
    }

    /// Swap the rule set (and matching hitlist) after a hot reload. The
    /// per-rule hour windows are re-sized to the new rule count and
    /// cleared; callers that want to carry evidence across the swap
    /// migrate the exported state and restore it afterwards.
    pub fn set_rules(&mut self, rules: Arc<RuleSet>, hitlist: HitList) {
        let n = rules.rules.len();
        self.rules = rules;
        self.hitlist = hitlist;
        self.packets = (0..n).map(|_| FastMap::default()).collect();
        self.indicator = (0..n).map(|_| FastSet::default()).collect();
        self.dirty = (0..n).map(|_| FastSet::default()).collect();
        self.dirty_all = true;
    }

    /// Observe one record of the current hour. Allocation-free on the
    /// steady-state matching path: the hitlist and the per-rule maps are
    /// disjoint fields, so entries are iterated in place.
    pub fn observe(&mut self, r: &WildRecord) {
        let UsageTracker { rules, hitlist, packets, indicator, dirty, dirty_all, stats, .. } =
            self;
        stats.records += 1;
        stats.probes += 1;
        for &(ri, di) in hitlist.lookup(r.dst, r.dport) {
            stats.matches += 1;
            *packets[ri as usize].entry(r.line).or_default() += r.packets;
            if !*dirty_all {
                dirty[ri as usize].insert(r.line);
            }
            if rules.rules[ri as usize].domains[di as usize].usage_indicator {
                stats.detections += 1;
                indicator[ri as usize].insert(r.line);
            }
        }
    }

    /// Lines actively using `class` this hour (either signal).
    pub fn active_lines(&self, class: &str) -> BTreeSet<AnonId> {
        self.rules
            .rule_index(class)
            .map_or_else(BTreeSet::new, |ri| self.active_lines_rule(ri as u16))
    }

    /// [`UsageTracker::active_lines`] by rule index (the rule's position
    /// in the rule set), for callers that already enumerate the rules.
    pub fn active_lines_rule(&self, ri: u16) -> BTreeSet<AnonId> {
        let mut out: BTreeSet<AnonId> = self.packets[ri as usize]
            .iter()
            .filter(|(_, pkts)| **pkts >= self.config.packet_threshold)
            .map(|(l, _)| *l)
            .collect();
        out.extend(self.indicator[ri as usize].iter().copied());
        out
    }

    /// Start the next hour. Deltas cannot express the cleared window,
    /// so the next snapshot is full.
    pub fn reset(&mut self) {
        for m in &mut self.packets {
            m.clear();
        }
        for s in &mut self.indicator {
            s.clear();
        }
        self.dirty_all = true;
        for s in &mut self.dirty {
            s.clear();
        }
    }

    /// Cumulative hot-path tallies (records, probes, matches, indicator
    /// hits in `detections`). Not cleared by [`UsageTracker::reset`].
    pub fn hot_stats(&self) -> HotStats {
        self.stats
    }

    /// Export the current hour window for checkpointing, sorted for
    /// deterministic encoding.
    pub fn export_state(&self) -> UsageState {
        let packets = self
            .packets
            .iter()
            .map(|m| {
                let mut entries: Vec<(AnonId, u64)> =
                    m.iter().map(|(l, p)| (*l, *p)).collect();
                entries.sort_unstable();
                entries
            })
            .collect();
        let indicator = self
            .indicator
            .iter()
            .map(|s| {
                let mut lines: Vec<AnonId> = s.iter().copied().collect();
                lines.sort_unstable();
                lines
            })
            .collect();
        UsageState { packets, indicator }
    }

    /// Replace the hour window with a checkpointed state. A state taken
    /// under a different rule count is rejected.
    pub fn restore_state(&mut self, state: &UsageState) -> Result<(), CheckpointError> {
        if state.packets.len() != self.packets.len()
            || state.indicator.len() != self.indicator.len()
        {
            return Err(CheckpointError::StateMismatch("usage tracker rule count"));
        }
        for (m, entries) in self.packets.iter_mut().zip(&state.packets) {
            m.clear();
            m.extend(entries.iter().copied());
        }
        for (s, lines) in self.indicator.iter_mut().zip(&state.indicator) {
            s.clear();
            s.extend(lines.iter().copied());
        }
        self.dirty_all = true;
        for s in &mut self.dirty {
            s.clear();
        }
        Ok(())
    }

    fn mark_clean(&mut self) {
        self.dirty_all = false;
        for s in &mut self.dirty {
            s.clear();
        }
    }

    /// Export the full window *and* mark everything clean — the
    /// checkpointing counterpart of the read-only
    /// [`UsageTracker::export_state`].
    pub fn checkpoint_full(&mut self) -> UsageState {
        let state = self.export_state();
        self.mark_clean();
        state
    }

    /// Take an incremental snapshot: `Ok(delta)` with the (line, rule)
    /// entries mutated since the previous snapshot as absolute-value
    /// upserts, or `Err(full)` when the dirty sets cannot bound the
    /// mutations (fresh tracker, hourly reset, restore). Clears the
    /// dirty tracking either way.
    #[allow(clippy::result_large_err)]
    pub fn take_snapshot_delta(&mut self) -> Result<UsageDelta, UsageState> {
        if self.dirty_all {
            return Err(self.checkpoint_full());
        }
        let packets = self
            .dirty
            .iter()
            .zip(&self.packets)
            .map(|(dirty, m)| {
                let mut entries: Vec<(AnonId, u64)> = dirty
                    .iter()
                    .map(|line| (*line, m.get(line).copied().unwrap_or_default()))
                    .collect();
                entries.sort_unstable();
                entries
            })
            .collect();
        let indicator = self
            .dirty
            .iter()
            .zip(&self.indicator)
            .map(|(dirty, set)| {
                let mut lines: Vec<AnonId> =
                    dirty.iter().filter(|l| set.contains(l)).copied().collect();
                lines.sort_unstable();
                lines
            })
            .collect();
        self.mark_clean();
        Ok(UsageDelta { packets, indicator })
    }

    /// Dirty lines accumulated since the last snapshot, or `None` when
    /// the next snapshot must be full.
    pub fn dirty_entries(&self) -> Option<usize> {
        if self.dirty_all {
            None
        } else {
            Some(self.dirty.iter().map(FastSet::len).sum())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleDomain, RuleSetBuilder};
    use haystack_dns::DomainName;
    use haystack_net::ports::Proto;
    use haystack_net::{HourBin, Prefix4};
    use haystack_testbed::catalog::DetectionLevel;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 6, last)
    }

    fn ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.rule(
            "Alexa Enabled",
            DetectionLevel::Platform,
            None,
            vec![
                RuleDomain {
                    name: DomainName::parse("avs.a.com").unwrap(),
                    ports: [443u16].into_iter().collect(),
                    ips: [ip(1)].into_iter().collect(),
                    usage_indicator: false,
                },
                RuleDomain {
                    name: DomainName::parse("voice-upload.a.com").unwrap(),
                    ports: [443u16].into_iter().collect(),
                    ips: [ip(2)].into_iter().collect(),
                    usage_indicator: true,
                },
            ],
        );
        b.build()
    }

    fn rec(line: u64, dst: Ipv4Addr, packets: u64) -> WildRecord {
        WildRecord {
            line: AnonId(line),
            line_slash24: Prefix4::slash24_of(Ipv4Addr::new(100, 64, 0, 1)),
            src_ip: Ipv4Addr::new(100, 64, 0, 1),
            dst,
            dport: 443,
            proto: Proto::Tcp,
            packets,
            bytes: packets * 500,
            established: true,
            hour: HourBin(0),
        }
    }

    #[test]
    fn volume_threshold() {
        let rules = Arc::new(ruleset());
        let mut t =
            UsageTracker::new(rules.clone(), HitList::whole_window(&rules), UsageConfig::default());
        t.observe(&rec(1, ip(1), 4));
        t.observe(&rec(1, ip(1), 7)); // cumulative 11 ≥ 10
        t.observe(&rec(2, ip(1), 3)); // idle-level
        let active = t.active_lines("Alexa Enabled");
        assert!(active.contains(&AnonId(1)));
        assert!(!active.contains(&AnonId(2)));
    }

    #[test]
    fn indicator_domain_wins_regardless_of_volume() {
        let rules = Arc::new(ruleset());
        let mut t =
            UsageTracker::new(rules.clone(), HitList::whole_window(&rules), UsageConfig::default());
        t.observe(&rec(3, ip(2), 1));
        assert!(t.active_lines("Alexa Enabled").contains(&AnonId(3)));
    }

    #[test]
    fn reset_clears_the_hour() {
        let rules = Arc::new(ruleset());
        let mut t =
            UsageTracker::new(rules.clone(), HitList::whole_window(&rules), UsageConfig::default());
        t.observe(&rec(1, ip(1), 50));
        t.reset();
        assert!(t.active_lines("Alexa Enabled").is_empty());
    }

    #[test]
    fn full_plus_delta_chain_reconstructs_the_window() {
        let rules = Arc::new(ruleset());
        let mut t =
            UsageTracker::new(rules.clone(), HitList::whole_window(&rules), UsageConfig::default());
        // Fresh tracker: the first snapshot must be full.
        assert!(t.dirty_entries().is_none());
        assert!(t.take_snapshot_delta().is_err());
        t.observe(&rec(1, ip(1), 4));
        let base = t.checkpoint_full();
        t.observe(&rec(1, ip(1), 7));
        t.observe(&rec(3, ip(2), 1)); // indicator hit
        assert_eq!(t.dirty_entries(), Some(2));
        let delta = t.take_snapshot_delta().expect("bounded dirty set");
        assert_eq!(delta.entry_count(), 3, "two packet upserts + one indicator insert");
        let mut replayed = base;
        delta.apply(&mut replayed).unwrap();
        assert_eq!(replayed, t.export_state());
        // The hourly reset clears the window — next snapshot is full.
        t.reset();
        assert!(t.dirty_entries().is_none());
        assert!(t.take_snapshot_delta().is_err());
    }

    #[test]
    fn non_rule_traffic_ignored() {
        let rules = Arc::new(ruleset());
        let mut t =
            UsageTracker::new(rules.clone(), HitList::whole_window(&rules), UsageConfig::default());
        t.observe(&rec(1, ip(99), 1_000));
        assert!(t.active_lines("Alexa Enabled").is_empty());
    }
}
