//! The streaming detector.
//!
//! State per (subscriber line, rule) is one 64-bit evidence mask — which
//! of the rule's primary domains the line has touched. Each record costs
//! one hitlist lookup plus a few bit operations, which is what lets the
//! methodology run against an ISP's full NetFlow feed ("able to identify
//! millions of IoT devices within minutes", §1; the `detector_throughput`
//! bench quantifies it).
//!
//! Detection semantics (§4.3.2): rule `r` fires for a line once the line
//! has contacted IP/port combinations of at least `max(1, ⌊D·N⌋)` of the
//! rule's `N` domains. Hierarchies gate children (§5: "for Samsung TV we
//! require to observe enough domains to confirm the presence of a
//! Samsung IoT device before moving forward"): a child rule only *counts
//! as detected* while every ancestor rule is also detected for that line.
//!
//! Hot-path layout (DESIGN.md §10): per-line state lives in *one map per
//! rule* (`Vec<FastMap<AnonId, LineState>>`, FxHash-keyed) rather than a
//! SipHash'd map keyed by `(line, rule)` tuples. That makes
//! [`Detector::observe`] allocation-free — the compiled
//! [`HitList`](crate::hitlist::HitList) slice and the state maps live in
//! disjoint fields, so no defensive clone is needed — and lets
//! [`Detector::detected_lines`] walk only the queried rule's map instead
//! of scanning every (line, rule) pair. Ancestor chains and class → rule
//! resolution are precomputed at construction; the `*_rule` methods
//! accept the resulting [`RuleHandle`] so query loops resolve a class
//! string once, not per line.
//!
//! The wild workload is *miss-dominated* — the overwhelming majority of
//! sampled records match no IoT rule — so [`Detector::observe_chunk`]
//! runs in two struct-of-arrays passes per `SOA_BLOCK`-record block,
//! over detector-owned scratch columns: a fused *gate pass*
//! (`gate::gate_block`) packs, hashes, and fingerprint-tests every
//! record, branchlessly emitting the survivors' positions and hashes;
//! then a *probe pass* runs full hitlist probes and state updates over
//! survivors only. A miss costs one hash and one L1 fingerprint byte —
//! it never reaches the probe table or the state maps.

use crate::checkpoint::{
    CheckpointError, DetectorDelta, DetectorSnapshot, DetectorState, LineEvidence,
};
use crate::fasthash::{mix64, FastMap, FastSet};
use crate::gate::{self, SOA_BLOCK};
use crate::hitlist::{self, HitList};
use crate::rules::RuleSet;
use crate::telemetry::HotStats;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin};
use haystack_wild::WildRecord;

/// An index into the rule set, resolved once per query loop via
/// [`Detector::rule_handle`]. Equal to the rule's position in
/// `RuleSet::rules` (classes are unique), so callers that already
/// enumerate the rules can use the position directly.
pub type RuleHandle = u16;

/// The query surface shared by every detector shape — the single
/// [`Detector`], the legacy [`ShardedDetector`](crate::parallel::
/// ShardedDetector) façade, and the persistent
/// [`DetectorPool`](crate::parallel::DetectorPool). Evaluation code
/// (`quality::evaluate`) is generic over this, so the same scoring runs
/// against any of them. `&mut self` because pooled implementations must
/// flush in-flight records before answering.
pub trait DetectionQuery {
    /// All lines for which `class` is currently detected, sorted.
    fn query_detected_lines(&mut self, class: &str) -> Vec<AnonId>;
}

impl DetectionQuery for Detector<'_> {
    fn query_detected_lines(&mut self, class: &str) -> Vec<AnonId> {
        self.detected_lines(class)
    }
}

/// Detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// The evidence threshold `D` (paper's conservative choice: 0.4).
    pub threshold: f64,
    /// §6.3: require established-TCP evidence (IXP deployments).
    pub require_established: bool,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig { threshold: 0.4, require_established: false }
    }
}

/// Per-(line, rule) evidence: the domain bitmask plus the hour the
/// rule's own threshold was first met. One entry in the rule's line map.
#[derive(Debug, Clone, Copy, Default)]
struct LineState {
    /// Evidence bitmask over the rule's domains.
    mask: u64,
    /// Hour the rule's own threshold was first met, if ever.
    first_met: Option<HourBin>,
}


/// Struct-of-arrays scratch for [`Detector::observe_chunk`], owned by
/// the detector so steady-state chunks reuse the same allocations (the
/// columns are sized to [`SOA_BLOCK`] on first use, then stay put —
/// `tests/alloc_free.rs` pins this at both all-hit and all-miss
/// workloads).
///
/// Only gate *survivors* are materialized. An earlier shape stored a
/// full per-record hash column (pass A) and gated it in a second pass
/// (pass B); measuring showed the column round-trip — 8 B stored and
/// reloaded per record — cost more than it saved, and the branchy
/// survivor push stalled the pipeline (~300 M rec/s vs ~400 M for the
/// fused branchless loop on the 99 %-miss mix). The packed key is not
/// stored either: re-packing from the record is two ALU ops and only
/// the few survivors need it.
#[derive(Debug, Default)]
struct Scratch {
    /// Chunk positions that passed the fingerprint gate; pass C probes
    /// only these. Sized [`SOA_BLOCK`]: the branchless emit writes
    /// `surv[len]` unconditionally and bumps `len` only on gate pass.
    surv: Vec<u32>,
    /// `mix64` of the packed key for the survivor at the same column
    /// position — pass C reuses it as the probe index instead of
    /// re-hashing.
    shash: Vec<u64>,
}

impl Scratch {
    /// Size the columns for a block (first call allocates; steady state
    /// is a no-op).
    #[inline]
    fn ensure(&mut self) {
        if self.surv.len() < SOA_BLOCK {
            self.surv.resize(SOA_BLOCK, 0);
            self.shash.resize(SOA_BLOCK, 0);
        }
    }
}

/// The streaming detector. Lifetime-bound to its rule set.
///
/// ```
/// use haystack_core::detector::{Detector, DetectorConfig};
/// use haystack_core::hitlist::HitList;
/// use haystack_core::rules::{RuleDomain, RuleSetBuilder};
/// use haystack_dns::DomainName;
/// use haystack_net::ports::Proto;
/// use haystack_net::{AnonId, HourBin};
///
/// let mut b = RuleSetBuilder::new();
/// b.rule(
///     "Example Cam",
///     haystack_testbed::catalog::DetectionLevel::Manufacturer,
///     None,
///     vec![RuleDomain {
///         name: DomainName::parse("api.example-cam.com").unwrap(),
///         ports: [443u16].into_iter().collect(),
///         ips: ["198.18.0.1".parse().unwrap()].into_iter().collect(),
///         usage_indicator: false,
///     }],
/// );
/// let rules = b.build();
/// let mut det = Detector::new(
///     &rules,
///     HitList::whole_window(&rules),
///     DetectorConfig::default(),
/// );
/// let line = AnonId(7);
/// det.observe(line, "198.18.0.1".parse().unwrap(), 443, Proto::Tcp, true, HourBin(0));
/// assert!(det.is_detected(line, "Example Cam"));
/// ```
#[derive(Debug)]
pub struct Detector<'r> {
    rules: &'r RuleSet,
    config: DetectorConfig,
    hitlist: HitList,
    required: Vec<u32>,
    /// Rule index of each rule's parent, resolved at construction.
    parent: Vec<Option<u16>>,
    /// Per-rule line state: `state[ri]` maps line → evidence for rule
    /// `ri`. Indexed by rule so class queries touch one map.
    state: Vec<FastMap<AnonId, LineState>>,
    /// Per-rule lines mutated since the last snapshot — the working set
    /// of [`Detector::take_snapshot_delta`]. Only *actual* mutations
    /// insert here (re-observed evidence takes the mask early-out), so
    /// steady-state hot loops stay allocation-free.
    dirty: Vec<FastSet<AnonId>>,
    /// Set when the dirty sets cannot bound the mutations since the last
    /// snapshot (fresh detector, reset, restore, rule swap) — the next
    /// snapshot must be full.
    dirty_all: bool,
    /// Reusable struct-of-arrays buffers for the batched observe path.
    scratch: Scratch,
    /// Plain (non-atomic) hot-path tallies; owners flush them into
    /// telemetry counters at chunk granularity.
    stats: HotStats,
}

impl<'r> Detector<'r> {
    /// Create a detector. Panics if any rule has more than 64 domains
    /// (the evidence mask is a `u64`; the paper's largest rule has 34).
    pub fn new(rules: &'r RuleSet, hitlist: HitList, config: DetectorConfig) -> Self {
        let required = rules
            .rules
            .iter()
            .map(|r| {
                assert!(
                    r.domains.len() <= 64,
                    "rule {} exceeds 64 domains",
                    rules.class_name(r.class)
                );
                r.required(config.threshold) as u32
            })
            .collect();
        let parent = rules
            .rules
            .iter()
            .map(|r| r.parent.and_then(|p| rules.rule_index_of(p)).map(|p| p as u16))
            .collect();
        let state = rules.rules.iter().map(|_| FastMap::default()).collect();
        let dirty = rules.rules.iter().map(|_| FastSet::default()).collect();
        Detector {
            rules,
            config,
            hitlist,
            required,
            parent,
            state,
            dirty,
            dirty_all: true,
            scratch: Scratch::default(),
            stats: HotStats::default(),
        }
    }

    /// Swap in the next day's hitlist, keeping accumulated evidence.
    pub fn set_hitlist(&mut self, hitlist: HitList) {
        self.hitlist = hitlist;
    }

    /// The rule set.
    pub fn rules(&self) -> &RuleSet {
        self.rules
    }

    /// Resolve a class string to its [`RuleHandle`], for hoisting out of
    /// query loops. The handle equals the rule's position in
    /// `RuleSet::rules`.
    #[inline]
    pub fn rule_handle(&self, class: &str) -> Option<RuleHandle> {
        self.rules.rule_index(class).map(|i| i as RuleHandle)
    }

    /// Observe one flow record's worth of evidence.
    ///
    /// Allocation-free on the matching path: the hitlist and the state
    /// maps are disjoint fields, so the entry slice is iterated in place
    /// (no defensive clone), and re-observed evidence only flips bits in
    /// existing map entries (`tests/alloc_free.rs` pins this). The
    /// fingerprint front gate retires the no-match majority on one cache
    /// line before any table probe; `observe_chunk` is the same pipeline
    /// restructured into batched column passes and is what the shard workers
    /// feed — this scalar form keeps identical stats semantics.
    #[inline]
    pub fn observe(
        &mut self,
        line: AnonId,
        dst: std::net::Ipv4Addr,
        dport: u16,
        proto: Proto,
        established: bool,
        hour: HourBin,
    ) {
        self.stats.records += 1;
        if self.config.require_established && proto == Proto::Tcp && !established {
            return;
        }
        // Disjoint borrows: the hitlist slice must not alias the state
        // maps, which destructuring proves to the borrow checker.
        let Detector { hitlist, state, required, stats, dirty, dirty_all, .. } = self;
        let key = HitList::pack_key(dst, dport);
        let h = mix64(key);
        if !hitlist.prefilter_pass(h) {
            stats.prefilter_misses += 1;
            return;
        }
        stats.prefilter_hits += 1;
        stats.probes += 1;
        for &(ri, di) in hitlist.lookup_hashed(key, h) {
            stats.matches += 1;
            let entry = state[ri as usize].entry(line).or_default();
            let bit = 1u64 << di;
            if entry.mask & bit != 0 {
                continue;
            }
            entry.mask |= bit;
            if !*dirty_all {
                dirty[ri as usize].insert(line);
            }
            if entry.mask.count_ones() == required[ri as usize] && entry.first_met.is_none() {
                entry.first_met = Some(hour);
                stats.detections += 1;
            }
        }
    }

    /// Observe a wild vantage-point record.
    #[inline]
    pub fn observe_wild(&mut self, r: &WildRecord) {
        self.observe(r.line, r.dst, r.dport, r.proto, r.established, r.hour);
    }

    /// Observe a batch of wild records — the entry point `DetectorPool`
    /// shards and the crosscheck/ground-truth consumers feed.
    ///
    /// Structured as struct-of-arrays passes over the detector-owned
    /// scratch columns (DESIGN.md §10): a fused gate pass packs,
    /// hashes, and fingerprint-tests every record in one branchless
    /// loop, emitting survivor positions + hashes into the columns
    /// (unconditional store, conditional length bump — nothing for the
    /// branch predictor to miss, so the loop schedules as a straight
    /// line); a
    /// probe pass then runs full probes and `LineState` updates on
    /// survivors only. In a miss-dominated wild workload the gate pass
    /// is the whole per-record cost — no table probe, no state-map
    /// touch. The passes run over `SOA_BLOCK`-record blocks so the
    /// scratch columns are fixed-size and L1-resident however large the
    /// caller's chunk is. Detections are byte-identical to per-record
    /// [`Detector::observe`] across all chunk sizes, and steady-state
    /// chunks allocate nothing.
    pub fn observe_chunk(&mut self, records: &[WildRecord]) {
        for block in records.chunks(SOA_BLOCK) {
            self.observe_block(block);
        }
    }

    /// One [`SOA_BLOCK`]-bounded struct-of-arrays round of
    /// [`Detector::observe_chunk`].
    fn observe_block(&mut self, records: &[WildRecord]) {
        self.stats.records += records.len() as u64;
        let Detector { hitlist, state, required, stats, scratch, config, dirty, dirty_all, .. } =
            self;
        let filtered = config.require_established;
        let fp = hitlist.prefilter();
        if fp.is_empty() {
            // Empty hitlist: every eligible record is a gate miss.
            let eligible = if filtered {
                records.iter().filter(|r| r.proto != Proto::Tcp || r.established).count()
            } else {
                records.len()
            };
            stats.prefilter_misses += eligible as u64;
            return;
        }
        scratch.ensure();
        // Constant-length views + masked column indices in the filtered
        // loop prove every store in-bounds, so the emit loop carries no
        // bounds checks (the mask is semantically a no-op: `len` trails
        // the record index, which `observe_chunk` bounds at
        // `SOA_BLOCK`).
        let surv = &mut scratch.surv[..SOA_BLOCK];
        let shash = &mut scratch.shash[..SOA_BLOCK];
        // Gate pass (fused pack + hash + fingerprint test): branchless
        // survivor emit — store position and hash unconditionally, bump
        // the column length only when the gate bit is set. A miss costs
        // the hash and one L1 byte test. The unfiltered common case
        // dispatches to [`gate::gate_block`]; the established filter
        // (IXP deployments only) folds its predicate into a variant of
        // the same loop here.
        let mut len = 0usize;
        let eligible = if filtered {
            let mut eligible = 0u64;
            for (j, r) in records.iter().enumerate() {
                let elig = u8::from(r.proto != Proto::Tcp || r.established);
                let h = mix64(HitList::pack_key(r.dst, r.dport));
                let pass = elig & hitlist::fp_bit(fp, h);
                surv[len & (SOA_BLOCK - 1)] = j as u32;
                shash[len & (SOA_BLOCK - 1)] = h;
                len += pass as usize;
                eligible += u64::from(elig);
            }
            eligible
        } else {
            len = gate::gate_block(records, fp, surv, shash);
            records.len() as u64
        };
        stats.prefilter_hits += len as u64;
        stats.prefilter_misses += eligible - len as u64;
        stats.probes += len as u64;
        // Probe pass: full probes + state updates, survivors only. The
        // packed key is rebuilt from the record — two ALU ops on the
        // few survivors, instead of a whole stored column in the gate
        // pass.
        for (&j, &h) in surv[..len].iter().zip(&shash[..len]) {
            let r = &records[j as usize];
            let key = HitList::pack_key(r.dst, r.dport);
            let entries = hitlist.lookup_hashed(key, h);
            if entries.is_empty() {
                // Fingerprint false positive: probe rejected it.
                continue;
            }
            for &(ri, di) in entries {
                stats.matches += 1;
                let entry = state[ri as usize].entry(r.line).or_default();
                let bit = 1u64 << di;
                if entry.mask & bit != 0 {
                    continue;
                }
                entry.mask |= bit;
                if !*dirty_all {
                    dirty[ri as usize].insert(r.line);
                }
                if entry.mask.count_ones() == required[ri as usize] && entry.first_met.is_none() {
                    entry.first_met = Some(r.hour);
                    stats.detections += 1;
                }
            }
        }
    }

    /// Whether the rule's own evidence threshold is met (ignoring
    /// hierarchy gating).
    #[inline]
    fn own_threshold_met(&self, line: AnonId, ri: u16) -> bool {
        self.state[ri as usize]
            .get(&line)
            .map(|s| s.mask.count_ones() >= self.required[ri as usize])
            .unwrap_or(false)
    }

    /// Whether `class` is detected for `line`, including hierarchy gating.
    pub fn is_detected(&self, line: AnonId, class: &str) -> bool {
        self.rule_handle(class).is_some_and(|ri| self.is_detected_rule(line, ri))
    }

    /// [`Detector::is_detected`] by pre-resolved [`RuleHandle`].
    pub fn is_detected_rule(&self, line: AnonId, handle: RuleHandle) -> bool {
        let mut ri = handle;
        loop {
            if !self.own_threshold_met(line, ri) {
                return false;
            }
            match self.parent[ri as usize] {
                Some(p) => ri = p,
                None => return true,
            }
        }
    }

    /// Graded detection confidence for `(line, class)` in `[0, 1]`.
    ///
    /// The minimum, over the rule and its ancestors, of
    /// `evidence / required` (capped at 1). Exactly 1.0 iff
    /// [`Detector::is_detected`] holds; partial evidence — e.g. domains
    /// whose flows were lost to an impaired export feed — lowers the
    /// score smoothly instead of flipping the verdict for downstream
    /// consumers that want ranking rather than a hard cut.
    pub fn confidence(&self, line: AnonId, class: &str) -> f64 {
        self.rule_handle(class).map_or(0.0, |ri| self.confidence_rule(line, ri))
    }

    /// [`Detector::confidence`] by pre-resolved [`RuleHandle`].
    pub fn confidence_rule(&self, line: AnonId, handle: RuleHandle) -> f64 {
        let mut ri = handle;
        let mut conf = 1.0f64;
        loop {
            let required = self.required[ri as usize].max(1) as f64;
            let have = self.state[ri as usize]
                .get(&line)
                .map(|s| f64::from(s.mask.count_ones()))
                .unwrap_or(0.0);
            conf = conf.min((have / required).min(1.0));
            match self.parent[ri as usize] {
                Some(p) => ri = p,
                None => return conf,
            }
        }
    }

    /// First hour the full (hierarchy-gated) detection held for
    /// (line, class): the max of the chain's own first-met hours.
    pub fn first_detection(&self, line: AnonId, class: &str) -> Option<HourBin> {
        self.rule_handle(class).and_then(|ri| self.first_detection_rule(line, ri))
    }

    /// [`Detector::first_detection`] by pre-resolved [`RuleHandle`].
    pub fn first_detection_rule(&self, line: AnonId, handle: RuleHandle) -> Option<HourBin> {
        let mut ri = handle;
        let mut latest: Option<HourBin> = None;
        loop {
            let h = self.state[ri as usize].get(&line)?.first_met?;
            latest = Some(latest.map_or(h, |l: HourBin| l.max(h)));
            match self.parent[ri as usize] {
                Some(p) => ri = p,
                None => return latest,
            }
        }
    }

    /// All lines for which `class` is currently detected, sorted.
    pub fn detected_lines(&self, class: &str) -> Vec<AnonId> {
        self.rule_handle(class).map_or_else(Vec::new, |ri| self.detected_lines_rule(ri))
    }

    /// [`Detector::detected_lines`] by pre-resolved [`RuleHandle`]: walks
    /// only the queried rule's line map, not every (line, rule) pair.
    pub fn detected_lines_rule(&self, handle: RuleHandle) -> Vec<AnonId> {
        let mut out: Vec<AnonId> = self.state[handle as usize]
            .keys()
            .copied()
            .filter(|l| self.is_detected_rule(*l, handle))
            .collect();
        out.sort_unstable();
        out
    }

    /// Clear accumulated evidence (start a new aggregation window).
    /// Deltas cannot express removal, so the next snapshot is full.
    pub fn reset(&mut self) {
        for m in &mut self.state {
            m.clear();
        }
        self.dirty_all = true;
        for s in &mut self.dirty {
            s.clear();
        }
    }

    /// Number of (line, rule) states held.
    pub fn state_size(&self) -> usize {
        self.state.iter().map(FastMap::len).sum()
    }

    /// The configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// Cumulative hot-path tallies (records offered, hitlist probes,
    /// entry matches, rule thresholds newly met). Plain counters — take
    /// deltas with [`HotStats::since`] and flush them into telemetry at
    /// chunk granularity. Not cleared by [`Detector::reset`].
    pub fn hot_stats(&self) -> HotStats {
        self.stats
    }

    /// Export the accumulated per-line evidence for checkpointing.
    /// Entries are sorted by line, so equal detectors export equal
    /// (and byte-identical, once encoded) states.
    pub fn export_state(&self) -> DetectorState {
        let rules = self
            .state
            .iter()
            .map(|m| {
                let mut entries: Vec<LineEvidence> = m
                    .iter()
                    .map(|(line, s)| LineEvidence {
                        line: *line,
                        mask: s.mask,
                        first_met: s.first_met,
                    })
                    .collect();
                entries.sort_unstable_by_key(|e| e.line);
                entries
            })
            .collect();
        DetectorState { rules }
    }

    /// Replace the accumulated evidence with a checkpointed state.
    /// Configuration, rules, and hitlist are the caller's to rebuild —
    /// a state taken under a different rule count is rejected.
    pub fn restore_state(&mut self, state: &DetectorState) -> Result<(), CheckpointError> {
        if state.rules.len() != self.state.len() {
            return Err(CheckpointError::StateMismatch("detector rule count"));
        }
        for (m, entries) in self.state.iter_mut().zip(&state.rules) {
            m.clear();
            for e in entries {
                m.insert(e.line, LineState { mask: e.mask, first_met: e.first_met });
            }
        }
        // The restored state replaces whatever the dirty sets were
        // bounding — force the next snapshot full.
        self.dirty_all = true;
        for s in &mut self.dirty {
            s.clear();
        }
        Ok(())
    }

    /// Mark every entry clean: the next
    /// [`Detector::take_snapshot_delta`] covers only mutations made
    /// after this point.
    fn mark_clean(&mut self) {
        self.dirty_all = false;
        for s in &mut self.dirty {
            s.clear();
        }
    }

    /// Export the full state *and* mark everything clean — the
    /// checkpointing counterpart of the read-only
    /// [`Detector::export_state`]. Use this when the export is actually
    /// persisted as the base of a delta chain.
    pub fn checkpoint_full(&mut self) -> DetectorState {
        let state = self.export_state();
        self.mark_clean();
        state
    }

    /// Take an incremental snapshot: the dirty (line, rule) entries
    /// mutated since the previous snapshot, as absolute-value upserts —
    /// or the full state when the dirty sets cannot bound the mutations
    /// (fresh detector, reset, restore). Clears the dirty tracking
    /// either way.
    pub fn take_snapshot_delta(&mut self) -> DetectorSnapshot {
        if self.dirty_all {
            return DetectorSnapshot::Full(self.checkpoint_full());
        }
        let rules = self
            .dirty
            .iter()
            .zip(&self.state)
            .map(|(dirty, m)| {
                let mut entries: Vec<LineEvidence> = dirty
                    .iter()
                    .map(|line| {
                        let s = m.get(line).copied().unwrap_or_default();
                        LineEvidence { line: *line, mask: s.mask, first_met: s.first_met }
                    })
                    .collect();
                entries.sort_unstable_by_key(|e| e.line);
                entries
            })
            .collect();
        self.mark_clean();
        DetectorSnapshot::Delta(DetectorDelta { rules })
    }

    /// Dirty (line, rule) entries accumulated since the last snapshot,
    /// or `None` when the next snapshot must be full.
    pub fn dirty_entries(&self) -> Option<usize> {
        if self.dirty_all {
            None
        } else {
            Some(self.dirty.iter().map(FastSet::len).sum())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleDomain, RuleSetBuilder};
    use haystack_dns::DomainName;
    use haystack_testbed::catalog::DetectionLevel;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 5, last)
    }

    fn dom(name: &str, ips: &[u8]) -> RuleDomain {
        RuleDomain {
            name: DomainName::parse(name).unwrap(),
            ports: [443u16].into_iter().collect(),
            ips: ips.iter().map(|i| ip(*i)).collect(),
            usage_indicator: false,
        }
    }

    /// Parent rule "Fam" (2 domains), child rule "Kid" (2 domains).
    fn ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.rule(
            "Fam",
            DetectionLevel::Manufacturer,
            None,
            vec![dom("d0.fam.com", &[1]), dom("d1.fam.com", &[2])],
        );
        b.rule(
            "Kid",
            DetectionLevel::Product,
            Some("Fam"),
            vec![dom("d0.kid.com", &[10]), dom("d1.kid.com", &[11])],
        );
        b.build()
    }

    fn detector(rules: &RuleSet, threshold: f64) -> Detector<'_> {
        let hl = HitList::whole_window(rules);
        Detector::new(rules, hl, DetectorConfig { threshold, require_established: false })
    }

    const LINE: AnonId = AnonId(77);

    fn hit(det: &mut Detector<'_>, addr: Ipv4Addr, hour: u32) {
        det.observe(LINE, addr, 443, Proto::Tcp, true, HourBin(hour));
    }

    #[test]
    fn threshold_counts_distinct_domains() {
        let rules = ruleset();
        let mut det = detector(&rules, 1.0); // need both domains
        hit(&mut det, ip(1), 0);
        assert!(!det.is_detected(LINE, "Fam"));
        hit(&mut det, ip(1), 1); // same domain again: no new evidence
        assert!(!det.is_detected(LINE, "Fam"));
        hit(&mut det, ip(2), 2);
        assert!(det.is_detected(LINE, "Fam"));
        assert_eq!(det.first_detection(LINE, "Fam"), Some(HourBin(2)));
    }

    #[test]
    fn low_threshold_needs_one_domain() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4); // ⌊0.4·2⌋ = 0 → max(1,·) = 1
        hit(&mut det, ip(2), 5);
        assert!(det.is_detected(LINE, "Fam"));
        assert_eq!(det.first_detection(LINE, "Fam"), Some(HourBin(5)));
    }

    #[test]
    fn child_requires_parent() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4);
        hit(&mut det, ip(10), 0);
        assert!(!det.is_detected(LINE, "Kid"), "child gated on parent");
        hit(&mut det, ip(1), 3);
        assert!(det.is_detected(LINE, "Kid"));
        // First *gated* detection is when the chain completed (hour 3).
        assert_eq!(det.first_detection(LINE, "Kid"), Some(HourBin(3)));
    }

    #[test]
    fn established_filter_drops_syn_only_records() {
        let rules = ruleset();
        let hl = HitList::whole_window(&rules);
        let mut det = Detector::new(
            &rules,
            hl,
            DetectorConfig { threshold: 0.4, require_established: true },
        );
        det.observe(LINE, ip(1), 443, Proto::Tcp, false, HourBin(0));
        assert!(!det.is_detected(LINE, "Fam"), "spoofable evidence rejected");
        det.observe(LINE, ip(1), 443, Proto::Tcp, true, HourBin(1));
        assert!(det.is_detected(LINE, "Fam"));
    }

    #[test]
    fn non_rule_traffic_is_free() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4);
        for i in 0..100 {
            det.observe(AnonId(i), ip(200), 443, Proto::Tcp, true, HourBin(0));
        }
        assert_eq!(det.state_size(), 0, "irrelevant flows allocate nothing");
    }

    #[test]
    fn detected_lines_and_reset() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4);
        hit(&mut det, ip(1), 0);
        det.observe(AnonId(5), ip(2), 443, Proto::Tcp, true, HourBin(0));
        let mut lines = det.detected_lines("Fam");
        lines.sort_unstable();
        assert_eq!(lines, vec![AnonId(5), LINE]);
        det.reset();
        assert!(det.detected_lines("Fam").is_empty());
    }

    #[test]
    fn confidence_degrades_smoothly_with_partial_evidence() {
        let rules = ruleset();
        // Threshold 1.0: both domains required.
        let mut det = detector(&rules, 1.0);
        assert_eq!(det.confidence(LINE, "Fam"), 0.0);
        // Half the evidence (as if the other domain's flows were lost in
        // transit): confidence is 0.5, verdict stays negative — no flip.
        hit(&mut det, ip(1), 0);
        assert!((det.confidence(LINE, "Fam") - 0.5).abs() < 1e-12);
        assert!(!det.is_detected(LINE, "Fam"));
        hit(&mut det, ip(2), 1);
        assert_eq!(det.confidence(LINE, "Fam"), 1.0);
        assert!(det.is_detected(LINE, "Fam"));
    }

    #[test]
    fn confidence_is_gated_by_the_hierarchy() {
        let rules = ruleset();
        let mut det = detector(&rules, 1.0);
        // Full child evidence, half parent evidence: the chain minimum
        // carries the parent's uncertainty down to the child.
        hit(&mut det, ip(10), 0);
        hit(&mut det, ip(11), 1);
        hit(&mut det, ip(1), 2);
        assert!((det.confidence(LINE, "Kid") - 0.5).abs() < 1e-12);
        assert!(!det.is_detected(LINE, "Kid"));
        // Confidence 1.0 coincides exactly with the boolean verdict.
        hit(&mut det, ip(2), 3);
        assert_eq!(det.confidence(LINE, "Kid"), 1.0);
        assert!(det.is_detected(LINE, "Kid"));
        assert_eq!(det.confidence(LINE, "NoSuchClass"), 0.0);
    }

    #[test]
    fn monotone_in_threshold() {
        // Property: anything detected at high D is detected at lower D
        // given the same evidence stream.
        let rules = ruleset();
        let mut hi = detector(&rules, 1.0);
        let mut lo = detector(&rules, 0.4);
        for (addr, h) in [(ip(1), 0u32), (ip(2), 1)] {
            hit(&mut hi, addr, h);
            hit(&mut lo, addr, h);
        }
        assert!(hi.is_detected(LINE, "Fam"));
        assert!(lo.is_detected(LINE, "Fam"));
        assert!(
            lo.first_detection(LINE, "Fam").unwrap() <= hi.first_detection(LINE, "Fam").unwrap()
        );
    }

    #[test]
    fn rule_handles_match_rule_positions_and_string_queries() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4);
        assert_eq!(det.rule_handle("Fam"), Some(0));
        assert_eq!(det.rule_handle("Kid"), Some(1));
        assert_eq!(det.rule_handle("NoSuchClass"), None);
        hit(&mut det, ip(10), 0);
        hit(&mut det, ip(1), 3);
        for (ri, rule) in rules.rules.iter().enumerate() {
            let ri = ri as RuleHandle;
            let class = rules.class_name(rule.class);
            assert_eq!(det.is_detected_rule(LINE, ri), det.is_detected(LINE, class));
            assert_eq!(det.confidence_rule(LINE, ri), det.confidence(LINE, class));
            assert_eq!(
                det.first_detection_rule(LINE, ri),
                det.first_detection(LINE, class)
            );
            assert_eq!(det.detected_lines_rule(ri), det.detected_lines(class));
        }
    }

    #[test]
    fn hot_stats_tally_probes_matches_and_detections() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4);
        let before = det.hot_stats();
        assert_eq!(before, crate::telemetry::HotStats::default());
        hit(&mut det, ip(200), 0); // non-rule traffic: gated or probed-empty
        hit(&mut det, ip(1), 1); // matches Fam d0, fires Fam (required 1)
        hit(&mut det, ip(1), 2); // re-observed evidence: match, no detection
        let s = det.hot_stats().since(&before);
        assert_eq!(s.records, 3);
        // Every record is accounted to exactly one side of the gate, and
        // only gate survivors probe. The two rule hits must survive; the
        // non-rule record may survive only as a fingerprint false
        // positive (in which case its probe matches nothing).
        assert_eq!(s.prefilter_hits + s.prefilter_misses, 3);
        assert!(s.prefilter_hits >= 2);
        assert_eq!(s.probes, s.prefilter_hits);
        assert_eq!(s.matches, 2);
        assert_eq!(s.detections, 1);
    }

    #[test]
    fn chunked_and_scalar_paths_tally_identical_stats() {
        let rules = ruleset();
        let mut scalar = detector(&rules, 0.4);
        let mut chunked = detector(&rules, 0.4);
        let records: Vec<WildRecord> = [(ip(200), 0u32), (ip(1), 1), (ip(1), 2), (ip(10), 3)]
            .into_iter()
            .map(|(dst, h)| WildRecord {
                line: LINE,
                line_slash24: haystack_net::Prefix4::slash24_of(Ipv4Addr::new(100, 64, 0, 1)),
                src_ip: Ipv4Addr::new(100, 64, 0, 1),
                dst,
                dport: 443,
                proto: Proto::Tcp,
                packets: 1,
                bytes: 64,
                established: true,
                hour: HourBin(h),
            })
            .collect();
        for r in &records {
            scalar.observe_wild(r);
        }
        chunked.observe_chunk(&records);
        assert_eq!(scalar.hot_stats(), chunked.hot_stats());
    }

    #[test]
    fn first_snapshot_is_full_then_deltas_track_only_mutations() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4);
        hit(&mut det, ip(1), 0);
        // Fresh detector: dirty sets can't bound anything yet.
        assert_eq!(det.dirty_entries(), None);
        let snap = det.take_snapshot_delta();
        assert!(snap.is_full(), "first snapshot must be full");
        // Re-observed evidence is not a mutation.
        hit(&mut det, ip(1), 1);
        assert_eq!(det.dirty_entries(), Some(0));
        // New evidence dirties exactly the touched (rule, line) entries.
        hit(&mut det, ip(2), 2);
        det.observe(AnonId(5), ip(10), 443, Proto::Tcp, true, HourBin(2));
        assert_eq!(det.dirty_entries(), Some(2));
        let snap = det.take_snapshot_delta();
        let crate::checkpoint::DetectorSnapshot::Delta(delta) = &snap else {
            panic!("expected a delta");
        };
        assert_eq!(delta.entry_count(), 2);
        assert_eq!(det.dirty_entries(), Some(0), "taking the snapshot clears dirty");
    }

    #[test]
    fn full_plus_delta_chain_reconstructs_the_full_state() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4);
        hit(&mut det, ip(1), 0);
        let base = det.checkpoint_full();
        hit(&mut det, ip(2), 1);
        det.observe(AnonId(5), ip(1), 443, Proto::Tcp, true, HourBin(2));
        let snap1 = det.take_snapshot_delta();
        det.observe(AnonId(5), ip(2), 443, Proto::Tcp, true, HourBin(3));
        let snap2 = det.take_snapshot_delta();
        // Replay the chain onto the base: must equal a fresh full export.
        let mut replayed = base;
        snap1.apply_to(&mut replayed).unwrap();
        snap2.apply_to(&mut replayed).unwrap();
        assert_eq!(replayed, det.export_state());
    }

    #[test]
    fn reset_and_restore_force_the_next_snapshot_full() {
        let rules = ruleset();
        let mut det = detector(&rules, 0.4);
        det.take_snapshot_delta();
        hit(&mut det, ip(1), 0);
        det.reset();
        assert_eq!(det.dirty_entries(), None);
        assert!(det.take_snapshot_delta().is_full());
        hit(&mut det, ip(1), 0);
        let state = det.export_state();
        det.restore_state(&state).unwrap();
        assert_eq!(det.dirty_entries(), None);
        assert!(det.take_snapshot_delta().is_full());
    }

    #[test]
    fn observe_chunk_matches_record_at_a_time() {
        use haystack_wild::WildRecord;
        let rules = ruleset();
        let mut chunked = detector(&rules, 1.0);
        let mut single = detector(&rules, 1.0);
        let records: Vec<WildRecord> = [(ip(1), 0u32), (ip(10), 1), (ip(2), 2), (ip(11), 3)]
            .into_iter()
            .map(|(dst, h)| WildRecord {
                line: LINE,
                line_slash24: haystack_net::Prefix4::slash24_of(Ipv4Addr::new(100, 64, 0, 1)),
                src_ip: Ipv4Addr::new(100, 64, 0, 1),
                dst,
                dport: 443,
                proto: Proto::Tcp,
                packets: 1,
                bytes: 64,
                established: true,
                hour: HourBin(h),
            })
            .collect();
        chunked.observe_chunk(&records);
        for r in &records {
            single.observe_wild(r);
        }
        for class in ["Fam", "Kid"] {
            assert_eq!(chunked.detected_lines(class), single.detected_lines(class));
            assert_eq!(chunked.first_detection(LINE, class), single.first_detection(LINE, class));
        }
        assert_eq!(chunked.state_size(), single.state_size());
    }
}
