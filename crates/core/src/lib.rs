//! # haystack-core
//!
//! The paper's contribution (Figure 7's pipeline), stage by stage:
//!
//! 1. [`observations`] — collect per-domain ground-truth usage from the
//!    testbed capture (which device classes contact it, on which ports,
//!    toward which service IPs).
//! 2. [`domains`] — §4.1: classify observed domains into IoT-specific
//!    **Primary** / **Support** vs **Generic**.
//! 3. [`dedicated`] — §4.2.1: DNSDB-based dedicated-vs-shared inference
//!    (single-SLD exclusivity with the cloud-VM allowance), §4.2.2: the
//!    Censys certificate/banner fallback for DNSDB-less domains, §4.2.3:
//!    removal of shared-infrastructure services.
//! 4. [`rules`] — §4.3: detection rules at platform / manufacturer /
//!    product level with the evidence threshold `D`, including the
//!    Amazon and Samsung hierarchies.
//! 5. [`hitlist`] — the *daily* (service IP, port) → rule index that
//!    absorbs DNS churn.
//! 6. [`detector`] — the streaming detector: constant state per
//!    (line, rule), O(1) per record via the hitlist index.
//! 7. [`usage`] — §7.1: distinguishing active use from idle presence.
//! 8. [`visibility`] — §3: what survives sampling (Figures 5, 6, 9, 17).
//! 9. [`crosscheck`] — §5: time-to-detection on ground truth (Figure 10).
//! 10. [`report`] — §6: wild-scale aggregation (Figures 11–16, 18).
//! 11. [`pipeline`] — end-to-end orchestration and the §4 funnel counts.
//!
//! Supporting systems around the pipeline: [`parallel`] (sharded
//! multi-core detection), [`fasthash`] (the hot-path hasher), [`reference`]
//! (the pre-optimization detector kept as the equivalence oracle),
//! [`mitigation`] (§7.2 block/redirect/notify), [`dns_assisted`] (§7.4's
//! resolver-log variant), [`staleness`] (§7.3 rule-health monitoring),
//! [`baseline`] (the §8 traffic-feature comparator), and [`quality`]
//! (precision/recall against the simulation oracle). [`checkpoint`] is
//! the crash-safe snapshot/restore of all long-lived state (DESIGN.md
//! §12). [`telemetry`] is
//! the pipeline-wide metrics/span substrate (DESIGN.md §11): a no-op
//! unless compiled with the `telemetry` feature *and* enabled at
//! runtime, so the hot path pays nothing by default. [`classes`] interns
//! device-class names into compact ids shared by every rule-indexed
//! structure; [`pack`] is the versioned, checksummed signature-pack
//! codec that externalizes the rule layer (DESIGN.md §14); [`events`]
//! derives the NDJSON detection-event stream from detector state.
//! [`procpool`] is the process-isolated sibling of [`parallel`]: one
//! supervised `haystack shard-worker` child per line-space partition,
//! spoken to over checksummed pipe frames (DESIGN.md §15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod checkpoint;
pub mod classes;
pub mod crosscheck;
pub mod dedicated;
pub mod detector;
pub mod dns_assisted;
pub mod domains;
pub mod events;
pub mod fasthash;
mod gate;
pub mod hitlist;
pub mod mitigation;
pub mod observations;
pub mod pack;
pub mod parallel;
pub mod pipeline;
pub mod procpool;
pub mod quality;
pub mod reference;
pub mod report;
pub mod staleness;
pub mod rules;
pub mod telemetry;
pub mod usage;
pub mod visibility;

pub use checkpoint::{
    CheckpointDir, CheckpointError, DetectorDelta, DetectorSnapshot, DetectorState,
    StalenessDelta, StalenessState, UsageDelta, UsageState,
};
pub use classes::{ClassId, ClassTable};
pub use crosscheck::{GroundTruthVantage, HOME_LINE};
pub use dedicated::{DedicationVerdict, InfraKnowledge};
pub use detector::{DetectionQuery, Detector, DetectorConfig, RuleHandle};
pub use domains::{DomainClass, WebIntelligence};
pub use fasthash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use hitlist::{HitList, MapHitList};
pub use reference::ReferenceDetector;
pub use observations::{DomainObservations, DomainUsage};
pub use parallel::{
    DetectorPool, PoolError, RespawnPolicy, ShardBackend, ShardHealth, ShardStatus,
    ShardStatusReport, ShardedDetector,
};
pub use procpool::{ProcPool, ProcPoolOptions};
pub use events::DetectionEvent;
pub use pack::{PackError, SignaturePack};
pub use pipeline::{Pipeline, PipelineStats};
pub use rules::{DetectionRule, RuleSet, RuleSetBuilder};
pub use telemetry::{Counter, Gauge, Histogram, HotStats, InstrumentedStream, Scope, Snapshot};

#[cfg(test)]
pub(crate) mod testutil {
    use crate::pipeline::{Pipeline, PipelineConfig};
    use std::sync::OnceLock;

    /// One shared fast pipeline for the whole test binary — building it
    /// costs tens of seconds, and every §5/§6 test needs the same one.
    pub fn shared_pipeline() -> &'static Pipeline {
        static PIPELINE: OnceLock<Pipeline> = OnceLock::new();
        PIPELINE.get_or_init(|| Pipeline::run(PipelineConfig::fast(13)))
    }
}
