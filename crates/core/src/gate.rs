//! The batched fingerprint gate — the per-record kernel of the
//! miss-dominated detector hot path (DESIGN.md §10).
//!
//! [`gate_block`] takes one [`SOA_BLOCK`]-bounded block of records and
//! the compiled hitlist's fingerprint bytes, and emits the gate
//! *survivors* — `(position, mix64 hash)` column pairs — for the probe
//! pass. Everything else is a proven miss and is never looked at again.
//!
//! The loop is *branchless*: pack, `mix64`, one L1 byte test, then an
//! **unconditional** survivor store with a **conditional** length bump
//! (`len += bit`). There is no data-dependent branch, so nothing for
//! the predictor to miss at any hit rate, and the loop body schedules
//! as a straight line. Two generated-code details carry the throughput
//! (measured on the bench machine; see DESIGN.md §10 for numbers):
//!
//! - the survivor stores index through `len & (SOA_BLOCK - 1)` against
//!   constant-length column views — semantically a no-op (`len` trails
//!   the record index, which is bounded by `SOA_BLOCK`), but it proves
//!   every store in-bounds so the loop carries no bounds checks;
//! - `HitList::pack_key` reads the IP in *native* byte order, so the
//!   key is the raw 4-byte load of the `Ipv4Addr` — no per-record byte
//!   swap (`WildRecord`'s fixed `repr(C)` layout keeps `dst`/`dport`
//!   adjacent on one cache line).
//!
//! Earlier shapes, kept out: a separate whole-block hash column
//! ("pass A stores, pass B reloads") pays an 8-byte store + reload per
//! record and measured ~25 % slower; a branchy `survivors.push(j)`
//! emit stalls the pipeline on unpredictable hit patterns and blocks
//! straight-line scheduling even on predictable ones.

use crate::fasthash::mix64;
use crate::hitlist::{self, HitList};
use haystack_wild::WildRecord;

/// Records per gate round: bounds the survivor columns at
/// `(4 + 8) B × 2048 = 24 KiB` so they stay L1-resident for arbitrarily
/// large caller chunks, and makes the columns fixed-size so the
/// branchless emit's masked index is provably in-bounds.
pub const SOA_BLOCK: usize = 2_048;

/// Run the fingerprint gate over one block of records, writing survivor
/// positions and their hashes to the front of `surv`/`shash`. Returns
/// the survivor count.
///
/// `fp` must be non-empty with power-of-two length; `records` must hold
/// at most [`SOA_BLOCK`] records and `surv`/`shash` at least
/// [`SOA_BLOCK`] elements (column slots past the survivor count are
/// scratch — the emit overwrites one slot past the last survivor).
#[inline]
pub fn gate_block(
    records: &[WildRecord],
    fp: &[u8],
    surv: &mut [u32],
    shash: &mut [u64],
) -> usize {
    debug_assert!(fp.len().is_power_of_two());
    debug_assert!(records.len() <= SOA_BLOCK);
    let surv = &mut surv[..SOA_BLOCK];
    let shash = &mut shash[..SOA_BLOCK];
    let mut len = 0usize;
    for (j, r) in records.iter().enumerate() {
        let h = mix64(HitList::pack_key(r.dst, r.dport));
        surv[len & (SOA_BLOCK - 1)] = j as u32;
        shash[len & (SOA_BLOCK - 1)] = h;
        len += hitlist::fp_bit(fp, h) as usize;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_net::ports::Proto;
    use haystack_net::{AnonId, HourBin, Prefix4};
    use std::net::Ipv4Addr;

    fn record(seed: u64) -> WildRecord {
        let x = mix64(seed);
        WildRecord {
            line: AnonId(x),
            line_slash24: Prefix4::new(Ipv4Addr::from((x >> 8) as u32), 24).unwrap(),
            src_ip: Ipv4Addr::from(x as u32),
            dst: Ipv4Addr::from((x >> 16) as u32),
            dport: (x >> 48) as u16,
            proto: if x & 1 == 0 { Proto::Tcp } else { Proto::Udp },
            packets: 3,
            bytes: 300,
            established: x & 2 == 0,
            hour: HourBin((x >> 32) as u32 & 0xffff),
        }
    }

    /// A fingerprint array with roughly `density` (out of 256) bits
    /// set, deterministically.
    fn fingerprint(len: usize, density: u64) -> Vec<u8> {
        (0..len)
            .map(|i| {
                let mut b = 0u8;
                for bit in 0..8 {
                    if mix64((i * 8 + bit) as u64) % 256 < density {
                        b |= 1 << bit;
                    }
                }
                b
            })
            .collect()
    }

    /// The branchless gate agrees with a naive per-record reference:
    /// position order preserved, hash = mix64 of the packed key,
    /// survivor iff the fingerprint bit is set.
    #[test]
    fn gate_block_matches_reference() {
        let fp = fingerprint(256, 64);
        for n in [0usize, 1, 7, 777, SOA_BLOCK] {
            let records: Vec<WildRecord> = (0..n).map(|i| record(0xbeef + i as u64)).collect();
            let mut surv = vec![u32::MAX; SOA_BLOCK];
            let mut shash = vec![u64::MAX; SOA_BLOCK];
            let len = gate_block(&records, &fp, &mut surv, &mut shash);
            let expect: Vec<(u32, u64)> = records
                .iter()
                .enumerate()
                .filter_map(|(j, r)| {
                    let h = mix64(HitList::pack_key(r.dst, r.dport));
                    (hitlist::fp_bit(&fp, h) == 1).then_some((j as u32, h))
                })
                .collect();
            assert_eq!(len, expect.len(), "survivor count, n={n}");
            for (k, &(j, h)) in expect.iter().enumerate() {
                assert_eq!(surv[k], j, "position {k}, n={n}");
                assert_eq!(shash[k], h, "hash {k}, n={n}");
            }
        }
    }

    /// Dense fingerprints (all-hit workloads) emit every record in
    /// order — the gate degrades to an identity pass, never drops a
    /// real hit.
    #[test]
    fn saturated_fingerprint_keeps_everything() {
        let fp = vec![0xffu8; 64];
        let records: Vec<WildRecord> = (0..100).map(|i| record(7 + i as u64)).collect();
        let mut surv = vec![0u32; SOA_BLOCK];
        let mut shash = vec![0u64; SOA_BLOCK];
        let len = gate_block(&records, &fp, &mut surv, &mut shash);
        assert_eq!(len, records.len());
        for (j, r) in records.iter().enumerate() {
            assert_eq!(surv[j], j as u32);
            assert_eq!(shash[j], mix64(HitList::pack_key(r.dst, r.dport)));
        }
    }
}
