//! §3 — what survives sampling at the ISP vantage point.
//!
//! Machinery behind Figures 5, 6, 8, 9, and 17: summarize the Home-VP's
//! full capture and the ISP's sampled view of the *same* packets, then
//! compare. DNS traffic is excluded throughout ("We explicitly exclude
//! DNS traffic, since it is not IoT-specific"); the simulation generates
//! none, and the summarizer filters port 53 defensively anyway.

use haystack_flow::sampling::PacketSampler;
use haystack_net::ports::PortClass;
use haystack_testbed::GroundTruthPacket;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Summary of one hour of traffic at one vantage point.
#[derive(Debug, Default, Clone)]
pub struct HourVisibility {
    /// Unique service IPs contacted (Figure 5a).
    pub service_ips: BTreeSet<Ipv4Addr>,
    /// Unique domains contacted, by id (Figure 5b).
    pub domains: BTreeSet<u32>,
    /// Unique devices with ≥ 1 packet (Figure 5d).
    pub devices: BTreeSet<u32>,
    /// Bytes per service IP (heavy-hitter ranking, Figure 6).
    pub bytes_per_ip: HashMap<Ipv4Addr, u64>,
    /// Service IPs per §3 port class (Figure 5c).
    pub ips_by_class: BTreeMap<PortClass, BTreeSet<Ipv4Addr>>,
    /// Packets per (device, domain) (Figures 8, 9, 17).
    pub packets_by_device_domain: HashMap<(u32, u32), u64>,
}

impl HourVisibility {
    /// Summarize a packet stream (full or sampled).
    pub fn summarize(packets: &[GroundTruthPacket]) -> HourVisibility {
        let mut v = HourVisibility::default();
        for g in packets {
            if g.packet.dport == 53 {
                continue; // DNS excluded per §3
            }
            v.service_ips.insert(g.packet.dst);
            v.domains.insert(g.domain_id);
            v.devices.insert(g.instance);
            *v.bytes_per_ip.entry(g.packet.dst).or_default() += u64::from(g.packet.bytes);
            v.ips_by_class
                .entry(PortClass::of(g.packet.dport))
                .or_default()
                .insert(g.packet.dst);
            *v.packets_by_device_domain.entry((g.instance, g.domain_id)).or_default() += 1;
        }
        v
    }
}

/// Apply a packet sampler to a ground-truth stream (the ISP's view of the
/// Home-VP traffic).
pub fn sample_stream(
    packets: &[GroundTruthPacket],
    sampler: &mut impl PacketSampler,
) -> Vec<GroundTruthPacket> {
    packets.iter().filter(|_| sampler.sample()).copied().collect()
}

/// Figure 6: of the top `top_frac` service IPs by byte volume at the
/// home vantage point, the fraction also visible at the sampled vantage
/// point. Returns `None` when the home side saw nothing.
pub fn heavy_hitter_visibility(
    home: &HourVisibility,
    sampled: &HourVisibility,
    top_frac: f64,
) -> Option<f64> {
    if home.bytes_per_ip.is_empty() {
        return None;
    }
    let mut ranked: Vec<(&Ipv4Addr, &u64)> = home.bytes_per_ip.iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    let take = ((ranked.len() as f64 * top_frac).ceil() as usize).max(1);
    let top = &ranked[..take.min(ranked.len())];
    let visible = top.iter().filter(|(ip, _)| sampled.service_ips.contains(ip)).count();
    Some(visible as f64 / top.len() as f64)
}

/// Empirical CDF of a sample: sorted `(value, F(value))` pairs.
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = sorted.len() as f64;
    sorted
        .iter()
        .enumerate()
        .map(|(i, v)| (*v, (i + 1) as f64 / n))
        .collect()
}

/// Interpolated ECDF evaluation: fraction of the sample ≤ `x`.
pub fn ecdf_at(curve: &[(f64, f64)], x: f64) -> f64 {
    match curve.binary_search_by(|(v, _)| v.partial_cmp(&x).expect("finite")) {
        Ok(i) => curve[i].1,
        Err(0) => 0.0,
        Err(i) => curve[i - 1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_flow::{Packet, SystematicSampler, TcpFlags};
    use haystack_net::ports::Proto;
    use haystack_net::SimTime;

    fn gt(instance: u32, domain: u32, dst_last: u8, dport: u16, bytes: u32) -> GroundTruthPacket {
        GroundTruthPacket {
            packet: Packet {
                ts: SimTime(10),
                src: Ipv4Addr::new(100, 64, 4, 49),
                dst: Ipv4Addr::new(198, 18, 0, dst_last),
                sport: 40_000,
                dport,
                proto: Proto::Tcp,
                bytes,
                flags: TcpFlags::ACK,
            },
            instance,
            domain_id: domain,
        }
    }

    #[test]
    fn summarize_counts_uniques_and_excludes_dns() {
        let packets = vec![
            gt(0, 0, 1, 443, 100),
            gt(0, 0, 1, 443, 100),
            gt(1, 2, 2, 123, 76),
            gt(2, 3, 3, 53, 60), // DNS → excluded
        ];
        let v = HourVisibility::summarize(&packets);
        assert_eq!(v.service_ips.len(), 2);
        assert_eq!(v.domains.len(), 2);
        assert_eq!(v.devices.len(), 2);
        assert_eq!(v.bytes_per_ip[&Ipv4Addr::new(198, 18, 0, 1)], 200);
        assert_eq!(v.ips_by_class[&PortClass::Web].len(), 1);
        assert_eq!(v.ips_by_class[&PortClass::Ntp].len(), 1);
        assert_eq!(v.packets_by_device_domain[&(0, 0)], 2);
    }

    #[test]
    fn sampling_reduces_the_view() {
        let packets: Vec<_> = (0..1000u32).map(|i| gt(i % 8, i % 16, (i % 50) as u8, 443, 100)).collect();
        let mut sampler = SystematicSampler::new(10, 0).unwrap();
        let sampled = sample_stream(&packets, &mut sampler);
        assert_eq!(sampled.len(), 100);
        let full = HourVisibility::summarize(&packets);
        let thin = HourVisibility::summarize(&sampled);
        assert!(thin.service_ips.len() <= full.service_ips.len());
        assert!(thin.devices.len() <= full.devices.len());
    }

    #[test]
    fn heavy_hitters_more_visible_than_tail() {
        // 10 heavy IPs (200 pkts each), 90 light IPs (2 pkts each).
        let mut packets = Vec::new();
        for ip in 0..10u8 {
            for _ in 0..200 {
                packets.push(gt(0, u32::from(ip), ip, 443, 500));
            }
        }
        for ip in 10..100u8 {
            for _ in 0..2 {
                packets.push(gt(0, u32::from(ip), ip, 443, 500));
            }
        }
        let home = HourVisibility::summarize(&packets);
        let mut sampler = SystematicSampler::new(50, 7).unwrap();
        let sampled = HourVisibility::summarize(&sample_stream(&packets, &mut sampler));
        let top10 = heavy_hitter_visibility(&home, &sampled, 0.10).unwrap();
        let all = heavy_hitter_visibility(&home, &sampled, 1.0).unwrap();
        assert!(top10 > 0.9, "top-10% visibility {top10}");
        assert!(all < top10, "overall visibility {all} below heavy-hitter visibility");
        assert!(heavy_hitter_visibility(&HourVisibility::default(), &sampled, 0.1).is_none());
    }

    #[test]
    fn ecdf_basics() {
        let curve = ecdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(curve.first().unwrap().0, 1.0);
        assert_eq!(curve.last().unwrap(), &(3.0, 1.0));
        assert!((ecdf_at(&curve, 2.0) - 0.75).abs() < 1e-9);
        assert_eq!(ecdf_at(&curve, 0.5), 0.0);
        assert_eq!(ecdf_at(&curve, 99.0), 1.0);
    }
}
