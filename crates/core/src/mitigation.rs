//! §7.2 — acting on detections: the ISP-side security workflow.
//!
//! > *"If there are known security problems with an IoT device, the
//! > ISP/IXP can block access to certain domains/IP ranges or redirect
//! > their traffic to benign servers … Once identified, their owner can
//! > be notified."*
//!
//! Three primitives, all built on the same daily hitlist the detector
//! uses:
//!
//! * [`block_plan`] — the (service IP, port) combinations to block or
//!   redirect for a vulnerable device class on a given day;
//! * [`NotificationList`] — the affected subscriber lines (anonymized;
//!   the ISP's subscriber-management system maps ids to customers
//!   on-premises);
//! * [`enforce`] — apply a plan to a record stream, producing the passed
//!   traffic plus an enforcement log (what a BNG filter would do).

use crate::detector::Detector;
use crate::rules::RuleSet;
use haystack_dns::DnsDb;
use haystack_net::{AnonId, DayBin, StudyWindow};
use haystack_wild::WildRecord;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// What to do with matching traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Drop matching flows (botnet control traffic).
    Block,
    /// Rewrite the destination to a benign server (privacy notices,
    /// patches for abandoned devices — the paper's example).
    Redirect(Ipv4Addr),
}

/// A per-class, per-day enforcement plan.
#[derive(Debug, Clone)]
pub struct BlockPlan {
    /// The targeted detection class.
    pub class: &'static str,
    /// Day of validity (plans follow the daily hitlist).
    pub day: DayBin,
    /// The (service IP, port) combinations to act on.
    pub targets: BTreeSet<(Ipv4Addr, u16)>,
    /// The action.
    pub action: Action,
}

/// Build the enforcement plan for `class` on `day`: every service
/// IP/port combination of the class's rule domains, as passive DNS maps
/// them that day (falling back to the whole-window union exactly like
/// the hitlist does).
pub fn block_plan(
    rules: &RuleSet,
    dnsdb: &DnsDb,
    class: &'static str,
    day: DayBin,
    action: Action,
) -> Option<BlockPlan> {
    let rule = rules.rule(class)?;
    let day_window = StudyWindow::days(day.0, day.0 + 1);
    let mut targets = BTreeSet::new();
    for dom in &rule.domains {
        let daily = dnsdb.ips_of(&dom.name, &day_window);
        let ips: Vec<Ipv4Addr> = if daily.is_empty() {
            dom.ips.iter().copied().collect()
        } else {
            daily.into_iter().collect()
        };
        for ip in ips {
            for &port in &dom.ports {
                targets.insert((ip, port));
            }
        }
    }
    if targets.is_empty() {
        return None;
    }
    Some(BlockPlan { class, day, targets, action })
}

/// The owner-notification list (§7.2 / [31]): lines where the class is
/// currently detected.
#[derive(Debug, Clone)]
pub struct NotificationList {
    /// The device class the notification concerns.
    pub class: &'static str,
    /// Affected (anonymized) subscriber lines.
    pub lines: Vec<AnonId>,
}

/// Build the notification list from a detector's current state.
pub fn notification_list(detector: &Detector<'_>, class: &'static str) -> NotificationList {
    NotificationList { class, lines: detector.detected_lines(class) }
}

/// Outcome of enforcing a plan over one batch of records.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct EnforcementLog {
    /// Records dropped.
    pub blocked: u64,
    /// Records rewritten to the benign server.
    pub redirected: u64,
    /// Distinct lines whose traffic was touched.
    pub affected_lines: BTreeSet<AnonId>,
}

/// Apply `plan` to a record batch: returns the surviving records (with
/// redirects rewritten) and the enforcement log.
pub fn enforce(plan: &BlockPlan, records: Vec<WildRecord>) -> (Vec<WildRecord>, EnforcementLog) {
    let mut log = EnforcementLog::default();
    let mut out = Vec::with_capacity(records.len());
    for mut r in records {
        if plan.targets.contains(&(r.dst, r.dport)) {
            log.affected_lines.insert(r.line);
            match plan.action {
                Action::Block => {
                    log.blocked += r.packets;
                    continue;
                }
                Action::Redirect(benign) => {
                    log.redirected += r.packets;
                    r.dst = benign;
                }
            }
        }
        out.push(r);
    }
    (out, log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use crate::hitlist::HitList;
    use crate::rules::{RuleDomain, RuleSetBuilder};
    use haystack_dns::DomainName;
    use haystack_net::ports::Proto;
    use haystack_net::{HourBin, Prefix4};
    use haystack_testbed::catalog::DetectionLevel;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 9, last)
    }

    fn ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.rule(
            "Vuln Cam",
            DetectionLevel::Manufacturer,
            None,
            vec![RuleDomain {
                name: DomainName::parse("c2.vulncam.com").unwrap(),
                ports: [443u16, 8883].into_iter().collect(),
                ips: [ip(1), ip(2)].into_iter().collect(),
                usage_indicator: false,
            }],
        );
        b.build()
    }

    fn rec(line: u64, dst: Ipv4Addr, dport: u16) -> WildRecord {
        let src = Ipv4Addr::new(100, 64, 0, line as u8);
        WildRecord {
            line: AnonId(line),
            line_slash24: Prefix4::slash24_of(src),
            src_ip: src,
            dst,
            dport,
            proto: Proto::Tcp,
            packets: 3,
            bytes: 300,
            established: true,
            hour: HourBin(0),
        }
    }

    #[test]
    fn plan_covers_all_rule_combos() {
        let rules = ruleset();
        let plan =
            block_plan(&rules, &DnsDb::new(), "Vuln Cam", DayBin(0), Action::Block).unwrap();
        assert_eq!(plan.targets.len(), 4, "2 IPs × 2 ports");
        assert!(block_plan(&rules, &DnsDb::new(), "Nope", DayBin(0), Action::Block).is_none());
    }

    #[test]
    fn block_drops_only_matching_traffic() {
        let rules = ruleset();
        let plan =
            block_plan(&rules, &DnsDb::new(), "Vuln Cam", DayBin(0), Action::Block).unwrap();
        let records = vec![rec(1, ip(1), 443), rec(2, ip(9), 443), rec(1, ip(2), 8883)];
        let (passed, log) = enforce(&plan, records);
        assert_eq!(passed.len(), 1);
        assert_eq!(passed[0].dst, ip(9));
        assert_eq!(log.blocked, 6);
        assert_eq!(log.affected_lines.len(), 1, "only line 1 touched the C2");
    }

    #[test]
    fn redirect_rewrites_destination() {
        let rules = ruleset();
        let benign = Ipv4Addr::new(198, 18, 99, 99);
        let plan =
            block_plan(&rules, &DnsDb::new(), "Vuln Cam", DayBin(0), Action::Redirect(benign))
                .unwrap();
        let (passed, log) = enforce(&plan, vec![rec(1, ip(1), 443), rec(2, ip(9), 80)]);
        assert_eq!(passed.len(), 2);
        assert_eq!(passed[0].dst, benign);
        assert_eq!(passed[1].dst, ip(9));
        assert_eq!(log.redirected, 3);
        assert_eq!(log.blocked, 0);
    }

    #[test]
    fn notification_list_matches_detections() {
        let rules = ruleset();
        let mut det = Detector::new(
            &rules,
            HitList::whole_window(&rules),
            DetectorConfig::default(),
        );
        det.observe(AnonId(5), ip(1), 443, Proto::Tcp, true, HourBin(0));
        det.observe(AnonId(9), ip(2), 8883, Proto::Tcp, true, HourBin(1));
        det.observe(AnonId(3), ip(50), 443, Proto::Tcp, true, HourBin(1)); // unrelated
        let list = notification_list(&det, "Vuln Cam");
        assert_eq!(list.lines, vec![AnonId(5), AnonId(9)]);
    }

    #[test]
    fn enforcement_starves_the_detector() {
        // After blocking, the device class becomes invisible — the
        // "hide by blocking" corollary of §7.2/§7.4.
        let rules = ruleset();
        let plan =
            block_plan(&rules, &DnsDb::new(), "Vuln Cam", DayBin(0), Action::Block).unwrap();
        let records = vec![rec(1, ip(1), 443), rec(1, ip(2), 8883)];
        let (passed, _) = enforce(&plan, records);
        let mut det = Detector::new(
            &rules,
            HitList::whole_window(&rules),
            DetectorConfig::default(),
        );
        for r in &passed {
            det.observe_wild(r);
        }
        assert!(!det.is_detected(AnonId(1), "Vuln Cam"));
    }
}
