//! The reference detector: the pre-optimization implementation, kept
//! verbatim as the equivalence oracle.
//!
//! [`ReferenceDetector`] is the detector as it stood before the hot-path
//! flattening: SipHash'd `HashMap`s keyed by `(line, rule)` tuples, a
//! [`MapHitList`] lookup that clones its entry slice per matching record,
//! and full-state scans in `detected_lines`. It is deliberately *not*
//! fast — its job is to be obviously correct so `tests/prop_hotpath.rs`
//! can pin the optimized [`Detector`](crate::detector::Detector) against
//! it on random rulesets and flow streams, and so the
//! `detector_throughput` bench can report a genuine before/after.

use crate::hitlist::MapHitList;
use crate::rules::RuleSet;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin};
use haystack_wild::WildRecord;
use std::collections::HashMap;

pub use crate::detector::DetectorConfig;

/// The pre-optimization streaming detector (see module docs).
#[derive(Debug)]
pub struct ReferenceDetector<'r> {
    rules: &'r RuleSet,
    config: DetectorConfig,
    hitlist: MapHitList,
    required: Vec<u32>,
    /// (line, rule) → evidence bitmask over the rule's domains.
    state: HashMap<(AnonId, u16), u64>,
    /// (line, rule) → hour the rule's own threshold was first met.
    first_met: HashMap<(AnonId, u16), HourBin>,
}

impl<'r> ReferenceDetector<'r> {
    /// Create a reference detector. Panics if any rule has more than 64
    /// domains (the evidence mask is a `u64`).
    pub fn new(rules: &'r RuleSet, hitlist: MapHitList, config: DetectorConfig) -> Self {
        let required = rules
            .rules
            .iter()
            .map(|r| {
                assert!(
                    r.domains.len() <= 64,
                    "rule {} exceeds 64 domains",
                    rules.class_name(r.class)
                );
                r.required(config.threshold) as u32
            })
            .collect();
        ReferenceDetector {
            rules,
            config,
            hitlist,
            required,
            state: HashMap::new(),
            first_met: HashMap::new(),
        }
    }

    /// Swap in the next day's hitlist, keeping accumulated evidence.
    pub fn set_hitlist(&mut self, hitlist: MapHitList) {
        self.hitlist = hitlist;
    }

    /// Observe one flow record's worth of evidence.
    pub fn observe(
        &mut self,
        line: AnonId,
        dst: std::net::Ipv4Addr,
        dport: u16,
        proto: Proto,
        established: bool,
        hour: HourBin,
    ) {
        if self.config.require_established && proto == Proto::Tcp && !established {
            return;
        }
        let entries = self.hitlist.lookup(dst, dport);
        if entries.is_empty() {
            return;
        }
        // The allocation the optimized path exists to remove: clone the
        // entry slice so the state map can be borrowed mutably.
        let entries = entries.to_vec();
        for (ri, di) in entries {
            let mask = self.state.entry((line, ri)).or_insert(0);
            let bit = 1u64 << di;
            if *mask & bit != 0 {
                continue;
            }
            *mask |= bit;
            if mask.count_ones() == self.required[ri as usize] {
                self.first_met.entry((line, ri)).or_insert(hour);
            }
        }
    }

    /// Observe a wild vantage-point record.
    pub fn observe_wild(&mut self, r: &WildRecord) {
        self.observe(r.line, r.dst, r.dport, r.proto, r.established, r.hour);
    }

    /// Whether the rule's own evidence threshold is met (ignoring
    /// hierarchy gating).
    fn own_threshold_met(&self, line: AnonId, ri: u16) -> bool {
        self.state
            .get(&(line, ri))
            .map(|m| m.count_ones() >= self.required[ri as usize])
            .unwrap_or(false)
    }

    /// Whether `class` is detected for `line`, including hierarchy gating.
    pub fn is_detected(&self, line: AnonId, class: &str) -> bool {
        let Some(mut ri) = self.rules.rule_index(class) else {
            return false;
        };
        loop {
            if !self.own_threshold_met(line, ri as u16) {
                return false;
            }
            match self.rules.rules[ri].parent.and_then(|p| self.rules.rule_index_of(p)) {
                Some(p) => ri = p,
                None => return true,
            }
        }
    }

    /// Graded detection confidence for `(line, class)` in `[0, 1]`.
    pub fn confidence(&self, line: AnonId, class: &str) -> f64 {
        let Some(mut ri) = self.rules.rule_index(class) else {
            return 0.0;
        };
        let mut conf = 1.0f64;
        loop {
            let required = self.required[ri].max(1) as f64;
            let have = self
                .state
                .get(&(line, ri as u16))
                .map(|m| f64::from(m.count_ones()))
                .unwrap_or(0.0);
            conf = conf.min((have / required).min(1.0));
            match self.rules.rules[ri].parent.and_then(|p| self.rules.rule_index_of(p)) {
                Some(p) => ri = p,
                None => return conf,
            }
        }
    }

    /// First hour the full (hierarchy-gated) detection held for
    /// (line, class): the max of the chain's own first-met hours.
    pub fn first_detection(&self, line: AnonId, class: &str) -> Option<HourBin> {
        let mut ri = self.rules.rule_index(class)?;
        let mut latest: Option<HourBin> = None;
        loop {
            let h = *self.first_met.get(&(line, ri as u16))?;
            latest = Some(latest.map_or(h, |l: HourBin| l.max(h)));
            match self.rules.rules[ri].parent.and_then(|p| self.rules.rule_index_of(p)) {
                Some(p) => ri = p,
                None => return latest,
            }
        }
    }

    /// All lines for which `class` is currently detected.
    pub fn detected_lines(&self, class: &str) -> Vec<AnonId> {
        let Some(ri) = self.rules.rule_index(class) else {
            return Vec::new();
        };
        let mut out: Vec<AnonId> = self
            .state
            .keys()
            .filter(|(_, r)| *r == ri as u16)
            .map(|(l, _)| *l)
            .filter(|l| self.is_detected(*l, class))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of (line, rule) states held.
    pub fn state_size(&self) -> usize {
        self.state.len()
    }
}
