//! §6 — applying the rules in the wild and aggregating the results.
//!
//! Two studies, mirroring the paper's two vantage points:
//!
//! * [`run_isp_study`] — Figures 11, 12, 13, 14, 18: per-hour and per-day
//!   unique subscriber lines per detection class, cumulative lines and
//!   /24s across the window, and per-hour *active-use* counts.
//! * [`run_ixp_study`] — Figures 15, 16: per-day unique client IPs per
//!   device-type group after the §6.3 established-TCP filter, plus the
//!   per-member-AS breakdown.
//!
//! Both rebuild the hitlist daily from passive DNS, exactly as Figure 7's
//! "Daily Hitlist & Detection Rules" box prescribes.

use crate::detector::{Detector, DetectorConfig};
use crate::hitlist::HitList;
use crate::pipeline::Pipeline;
use crate::usage::{UsageConfig, UsageTracker};
use haystack_net::ports::Proto;
use haystack_net::{AnonId, Asn, DayBin, Prefix4, StudyWindow};
use haystack_testbed::materialize::MaterializedWorld;
use haystack_wild::{IspVantage, IxpVantage, RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// The three headline device-type groups of Figures 11/15/16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceGroup {
    /// The Alexa Enabled hierarchy.
    Alexa,
    /// The Samsung IoT hierarchy.
    Samsung,
    /// Everything else ("Other 32 IoT device types").
    Other,
}

impl DeviceGroup {
    /// Group a detection class by its hierarchy root.
    pub fn of(pipeline: &Pipeline, class: &str) -> DeviceGroup {
        let root = pipeline
            .catalog
            .ancestry(class)
            .last()
            .map(|c| c.name)
            .unwrap_or(class);
        match root {
            "Alexa Enabled" => DeviceGroup::Alexa,
            "Samsung IoT" => DeviceGroup::Samsung,
            _ => DeviceGroup::Other,
        }
    }

    /// Report label.
    pub fn label(self) -> &'static str {
        match self {
            DeviceGroup::Alexa => "Alexa Enabled",
            DeviceGroup::Samsung => "Samsung IoT",
            DeviceGroup::Other => "Other 32 IoT Device types",
        }
    }
}

/// ISP study configuration.
#[derive(Debug, Clone)]
pub struct IspStudyConfig {
    /// Evidence threshold `D` (§6.2 uses the conservative 0.4).
    pub threshold: f64,
    /// The window to study (the paper's full two weeks by default).
    pub window: StudyWindow,
    /// §7.1 usage-detection settings.
    pub usage: UsageConfig,
}

impl Default for IspStudyConfig {
    fn default() -> Self {
        IspStudyConfig {
            threshold: 0.4,
            window: StudyWindow::FULL,
            usage: UsageConfig::default(),
        }
    }
}

/// ISP study output.
#[derive(Debug, Default)]
pub struct IspStudyResult {
    /// Unique lines per (class, hour) — Figure 11(a)/12 hourly.
    pub hourly: BTreeMap<(String, u32), u64>,
    /// Unique lines per (class, day) — Figures 11(b)/12/14.
    pub daily: BTreeMap<(String, u32), u64>,
    /// Cumulative unique lines per (class, day) — Figure 13 upper.
    pub cumulative_lines: BTreeMap<(String, u32), u64>,
    /// Cumulative unique /24s per (class, day) — Figure 13 lower.
    pub cumulative_slash24: BTreeMap<(String, u32), u64>,
    /// Lines with *active use* per (class, hour) — Figure 18.
    pub active_hourly: BTreeMap<(String, u32), u64>,
    /// Unique lines per (group, hour/day) — Figure 11's three series.
    pub group_hourly: BTreeMap<(DeviceGroup, u32), u64>,
    /// See [`IspStudyResult::group_hourly`].
    pub group_daily: BTreeMap<(DeviceGroup, u32), u64>,
    /// Lines with ≥1 detected class per day ("20 % of subscriber lines").
    pub any_iot_daily: BTreeMap<u32, u64>,
    /// Total sampled packets processed.
    pub sampled_packets: u64,
}

/// Run the ISP study.
pub fn run_isp_study(
    pipeline: &Pipeline,
    world: &MaterializedWorld,
    isp: &IspVantage,
    config: &IspStudyConfig,
) -> IspStudyResult {
    let rules = &pipeline.rules;
    let det_cfg = DetectorConfig { threshold: config.threshold, require_established: false };
    let mut hourly_det = Detector::new(rules, HitList::default(), det_cfg);
    let mut daily_det = Detector::new(rules, HitList::default(), det_cfg);
    let mut usage = UsageTracker::new(pipeline.rules.clone(), HitList::default(), config.usage);

    let mut result = IspStudyResult::default();
    let mut cum_lines: HashMap<u16, BTreeSet<AnonId>> = HashMap::new();
    let mut cum_slash24: HashMap<u16, BTreeSet<Prefix4>> = HashMap::new();
    // Rule handles equal rule positions; resolve each class name and its
    // device group once, not per hour × rule query.
    let rule_meta: Vec<(u16, String, DeviceGroup)> = rules
        .rules
        .iter()
        .enumerate()
        .map(|(ri, r)| {
            let class = rules.class_name(r.class);
            (ri as u16, class.to_string(), DeviceGroup::of(pipeline, class))
        })
        .collect();
    // One chunk buffer for the whole study — the streaming vantage point
    // refills it per chunk, so no hour is ever materialized.
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);

    for day in config.window.day_bins() {
        let hitlist = HitList::for_day(rules, &pipeline.dnsdb, day);
        hourly_det.set_hitlist(hitlist.clone());
        daily_det.set_hitlist(hitlist.clone());
        usage.set_hitlist(hitlist);
        daily_det.reset();
        // The /24 of each line seen today (kept on-premises, §6.1).
        let mut slash24_of: HashMap<AnonId, Prefix4> = HashMap::new();

        for hour in day.hours() {
            hourly_det.reset();
            usage.reset();
            let mut stream = isp.stream_hour(world, hour, DEFAULT_CHUNK_RECORDS);
            while stream.next_chunk(&mut chunk) {
                result.sampled_packets += chunk.sampled_packets;
                for r in &chunk.records {
                    hourly_det.observe_wild(r);
                    daily_det.observe_wild(r);
                    usage.observe(r);
                    slash24_of.insert(r.line, r.line_slash24);
                }
            }
            let mut group_lines: BTreeMap<DeviceGroup, BTreeSet<AnonId>> = BTreeMap::new();
            for (ri, class, group) in &rule_meta {
                let lines = hourly_det.detected_lines_rule(*ri);
                result.hourly.insert((class.clone(), hour.0), lines.len() as u64);
                group_lines.entry(*group).or_default().extend(lines);
                let active = usage.active_lines_rule(*ri);
                result.active_hourly.insert((class.clone(), hour.0), active.len() as u64);
            }
            for (g, lines) in group_lines {
                result.group_hourly.insert((g, hour.0), lines.len() as u64);
            }
        }

        // Day-end aggregation.
        let mut group_lines: BTreeMap<DeviceGroup, BTreeSet<AnonId>> = BTreeMap::new();
        let mut any_iot: BTreeSet<AnonId> = BTreeSet::new();
        for (ri, class, group) in &rule_meta {
            let lines = daily_det.detected_lines_rule(*ri);
            result.daily.insert((class.clone(), day.0), lines.len() as u64);
            group_lines.entry(*group).or_default().extend(lines.iter().copied());
            any_iot.extend(lines.iter().copied());
            let cl = cum_lines.entry(*ri).or_default();
            let cs = cum_slash24.entry(*ri).or_default();
            for l in lines {
                cl.insert(l);
                if let Some(p) = slash24_of.get(&l) {
                    cs.insert(*p);
                }
            }
            result.cumulative_lines.insert((class.clone(), day.0), cl.len() as u64);
            result.cumulative_slash24.insert((class.clone(), day.0), cs.len() as u64);
        }
        for (g, lines) in group_lines {
            result.group_daily.insert((g, day.0), lines.len() as u64);
        }
        result.any_iot_daily.insert(day.0, any_iot.len() as u64);
    }
    result
}

/// IXP study configuration.
#[derive(Debug, Clone)]
pub struct IxpStudyConfig {
    /// Evidence threshold `D`.
    pub threshold: f64,
    /// Study window.
    pub window: StudyWindow,
    /// Apply the §6.3 established-TCP filter (on by default; turning it
    /// off shows the spoofing over-count, the ablation the paper argues
    /// against).
    pub established_filter: bool,
}

impl Default for IxpStudyConfig {
    fn default() -> Self {
        IxpStudyConfig { threshold: 0.4, window: StudyWindow::FULL, established_filter: true }
    }
}

/// IXP study output.
#[derive(Debug, Default)]
pub struct IxpStudyResult {
    /// Unique detected client IPs per (group, day) — Figure 15.
    pub daily_ips: BTreeMap<(DeviceGroup, u32), u64>,
    /// Per (member ASN, group): unique detected IPs on the first study
    /// day — Figure 16's raw data.
    pub per_as_day0: BTreeMap<(Asn, DeviceGroup), u64>,
    /// Total records before/after the established filter (spoofing
    /// ablation).
    pub records_before_filter: u64,
    /// See [`IxpStudyResult::records_before_filter`].
    pub records_after_filter: u64,
}

/// Run the IXP study.
pub fn run_ixp_study(
    pipeline: &Pipeline,
    world: &MaterializedWorld,
    ixp: &IxpVantage,
    config: &IxpStudyConfig,
) -> IxpStudyResult {
    let rules = &pipeline.rules;
    let det_cfg = DetectorConfig {
        threshold: config.threshold,
        require_established: config.established_filter,
    };
    let mut daily_det = Detector::new(rules, HitList::default(), det_cfg);
    let mut result = IxpStudyResult::default();
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);

    for day in config.window.day_bins() {
        daily_det.set_hitlist(HitList::for_day(rules, &pipeline.dnsdb, day));
        daily_det.reset();
        let mut ip_of: HashMap<AnonId, Ipv4Addr> = HashMap::new();
        for hour in day.hours() {
            let mut stream = ixp.stream_hour(world, hour, DEFAULT_CHUNK_RECORDS);
            while stream.next_chunk(&mut chunk) {
                result.records_before_filter += chunk.records.len() as u64;
                for r in &chunk.records {
                    // The §6.3 established-TCP filter, applied per record.
                    if config.established_filter && r.proto == Proto::Tcp && !r.established {
                        continue;
                    }
                    result.records_after_filter += 1;
                    daily_det.observe_wild(r);
                    ip_of.insert(r.line, r.src_ip);
                }
            }
        }
        let mut group_ips: BTreeMap<DeviceGroup, BTreeSet<Ipv4Addr>> = BTreeMap::new();
        for (ri, rule) in rules.rules.iter().enumerate() {
            let group = DeviceGroup::of(pipeline, rules.class_name(rule.class));
            for line in daily_det.detected_lines_rule(ri as u16) {
                if let Some(ip) = ip_of.get(&line) {
                    group_ips.entry(group).or_default().insert(*ip);
                }
            }
        }
        for (g, ips) in &group_ips {
            result.daily_ips.insert((*g, day.0), ips.len() as u64);
        }
        if day == config.window.day_bins().next().unwrap_or(DayBin(0)) {
            for (g, ips) in &group_ips {
                for ip in ips {
                    if let Some(m) = ixp.member_of(*ip) {
                        *result.per_as_day0.entry((m.asn, *g)).or_default() += 1;
                    }
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use haystack_wild::{IspConfig, IxpConfig};

    fn pipeline() -> &'static Pipeline {
        crate::testutil::shared_pipeline()
    }

    #[test]
    fn isp_study_produces_sane_shapes() {
        let p = pipeline();
        let isp = IspVantage::new(
            &p.catalog,
            IspConfig { lines: 8_000, sampling: 1_000, seed: 3, background: false },
        );
        let cfg = IspStudyConfig { window: StudyWindow::days(0, 2), ..Default::default() };
        let r = run_isp_study(p, &p.world, &isp, &cfg);
        // Alexa daily detections beat hourly ones (§6.2's ×2 gain).
        let alexa_daily = r.daily.get(&("Alexa Enabled".to_string(), 0)).copied().unwrap_or(0);
        let alexa_hour = r.hourly.get(&("Alexa Enabled".to_string(), 12)).copied().unwrap_or(0);
        assert!(alexa_daily > 0, "Alexa detected in the wild");
        assert!(alexa_daily >= alexa_hour, "daily {alexa_daily} >= hourly {alexa_hour}");
        // Cumulative counts are monotone.
        let c0 = r.cumulative_lines.get(&("Alexa Enabled".to_string(), 0)).copied().unwrap_or(0);
        let c1 = r.cumulative_lines.get(&("Alexa Enabled".to_string(), 1)).copied().unwrap_or(0);
        assert!(c1 >= c0);
        // Any-IoT share is a plausible fraction of 8 000 lines.
        let any = r.any_iot_daily[&0] as f64 / 8_000.0;
        assert!((0.05..0.40).contains(&any), "any-IoT daily share {any:.3}");
    }

    #[test]
    fn ixp_study_counts_ips_and_filters_spoofing() {
        let p = pipeline();
        let ixp = IxpVantage::new(
            &p.catalog,
            IxpConfig {
                sampling: 2_000,
                seed: 9,
                big_eyeballs: 3,
                big_lines: 3_000,
                tail_members: 6,
                tail_lines: 200,
                route_visibility: 0.6,
                spoofed_per_hour: 300,
            },
        );
        let cfg = IxpStudyConfig { window: StudyWindow::days(0, 1), ..Default::default() };
        let r = run_ixp_study(p, &p.world, &ixp, &cfg);
        assert!(r.records_before_filter > r.records_after_filter, "filter drops spoofed records");
        let alexa = r.daily_ips.get(&(DeviceGroup::Alexa, 0)).copied().unwrap_or(0);
        assert!(alexa > 0, "Alexa visible at the IXP");
        assert!(!r.per_as_day0.is_empty());
    }

    #[test]
    fn window_semantics_are_nested() {
        // hourly <= daily <= cumulative, for every class and day.
        let p = pipeline();
        let isp = IspVantage::new(
            &p.catalog,
            IspConfig { lines: 6_000, sampling: 1_000, seed: 8, background: false },
        );
        let cfg = IspStudyConfig { window: StudyWindow::days(0, 2), ..Default::default() };
        let r = run_isp_study(p, &p.world, &isp, &cfg);
        for rule in &p.rules.rules {
            let class = p.rules.class_name(rule.class).to_string();
            for day in 0..2u32 {
                let daily = r.daily.get(&(class.clone(), day)).copied().unwrap_or(0);
                let max_hourly = (day * 24..(day + 1) * 24)
                    .filter_map(|h| r.hourly.get(&(class.clone(), h)))
                    .max()
                    .copied()
                    .unwrap_or(0);
                assert!(max_hourly <= daily, "{class} day {day}: hourly {max_hourly} > daily {daily}");
                let cumulative = r.cumulative_lines.get(&(class.clone(), day)).copied().unwrap_or(0);
                assert!(daily <= cumulative, "{class} day {day}: daily {daily} > cumulative {cumulative}");
                let slash24 =
                    r.cumulative_slash24.get(&(class.clone(), day)).copied().unwrap_or(0);
                assert!(slash24 <= cumulative, "{class}: /24s {slash24} > lines {cumulative}");
            }
        }
    }

    #[test]
    fn active_usage_is_a_subset_of_presence() {
        let p = pipeline();
        let isp = IspVantage::new(
            &p.catalog,
            IspConfig { lines: 6_000, sampling: 1_000, seed: 8, background: false },
        );
        let cfg = IspStudyConfig { window: StudyWindow::days(0, 1), ..Default::default() };
        let r = run_isp_study(p, &p.world, &isp, &cfg);
        for hour in 0..24u32 {
            let active = r.active_hourly.get(&("Alexa Enabled".to_string(), hour)).copied().unwrap_or(0);
            let present = r
                .group_hourly
                .get(&(DeviceGroup::Alexa, hour))
                .copied()
                .unwrap_or(0);
            // Active use needs >= 10 sampled packets, which all but
            // guarantees the single-domain presence rule also fired; allow
            // a sliver of indicator-only slack.
            assert!(
                active <= present + present / 10 + 2,
                "hour {hour}: active {active} vs present {present}"
            );
        }
    }

    #[test]
    fn group_labels() {
        let p = pipeline();
        assert_eq!(DeviceGroup::of(p, "Fire TV"), DeviceGroup::Alexa);
        assert_eq!(DeviceGroup::of(p, "Samsung TV"), DeviceGroup::Samsung);
        assert_eq!(DeviceGroup::of(p, "Yi Camera"), DeviceGroup::Other);
        assert_eq!(DeviceGroup::Other.label(), "Other 32 IoT Device types");
    }
}
