//! `haystack-telemetry` — pipeline-wide metrics, spans, and conservation
//! accounting (DESIGN.md §11).
//!
//! The paper's deployment (§6) digests two weeks of NetFlow from 15 M
//! subscriber lines; at that scale, knowing *where* records vanish —
//! sampling, template churn, backpressure, rule misses — is the
//! difference between "device not present" and "pipeline dropped it".
//! This module is the shared measurement substrate every stage reports
//! into:
//!
//! * [`Counter`] / [`Gauge`] — relaxed `AtomicU64` cells.
//! * [`Histogram`] — fixed power-of-two buckets (no allocation after
//!   creation), for latencies and sizes.
//! * [`SpanTimer`] — a drop-guard recording elapsed microseconds into a
//!   histogram.
//! * [`Registry`] — the process-global, mutex-protected name → metric
//!   table, organized into dot-separated [`Scope`]s
//!   (`pool.shard0.queue_depth`).
//! * [`Snapshot`] — a point-in-time copy that renders as Prometheus text
//!   ([`Snapshot::to_prometheus`]) or JSON ([`Snapshot::to_json`]), and
//!   supports deltas for test isolation.
//! * [`InstrumentedStream`] — a [`RecordStream`] adapter counting
//!   records/chunks emitted and the degradation accounting that rode
//!   along, the stream-stage instrumentation point.
//! * [`observe_collector`] — the bridge scraping a flow
//!   [`Collector`](haystack_flow::Collector)'s health counters into a
//!   scope (the flow crate sits *below* this one, so the collector is
//!   pulled, not pushed).
//!
//! ## Zero overhead when disabled
//!
//! Instrumentation is double-gated. Without the `telemetry` cargo
//! feature, [`enabled`] is a compile-time `false`: every handle
//! constructor returns a no-op and call sites reduce to a branch on
//! `None`. With the feature compiled in (the workspace default via the
//! CLI and bench crates), a process-global flag — off until
//! [`set_enabled`]`(true)` — decides at *handle creation* whether the
//! handle is live. Hot loops therefore never consult the flag; the
//! PR-3 allocation-free observe path is preserved bit-for-bit, and the
//! `telemetry_overhead` bench pins the enabled cost below 2 %.
//!
//! ## Conservation invariants
//!
//! Stages account for every record they touch, so snapshots can be
//! audited (`crates/core/tests/telemetry_conservation.rs`):
//!
//! * collector: `records_in == records_decoded + missed_records`
//! * stream:    `records_in == records_emitted + records_lost
//!   - records_duplicated`
//! * pool:      `records_in == records_observed` (after `finish`)

use crate::hitlist::HitList;
use haystack_wild::{RecordChunk, RecordStream};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Number of histogram buckets: powers of two `1, 2, 4, …, 2^20`, plus
/// a final catch-all (`+Inf`). Covers chunk sizes and microsecond spans
/// up to ~1 s without allocation.
pub const HISTOGRAM_BUCKETS: usize = 22;

// ---------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry handle creation is live. Compile-time `false`
/// without the `telemetry` feature; otherwise the process-global flag.
#[inline]
pub fn enabled() -> bool {
    cfg!(feature = "telemetry") && ENABLED.load(Relaxed)
}

/// Turn telemetry on or off process-wide. Handles bind at *creation*:
/// enable before constructing instrumented components. A no-op without
/// the `telemetry` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------
// Metric handles
// ---------------------------------------------------------------------

/// A monotonically increasing counter. Cloning shares the cell; a
/// default-constructed (or disabled-registry) counter is a no-op.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached no-op counter.
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// A settable (and incrementable/decrementable) instantaneous value —
/// queue depths, cache sizes. Same no-op semantics as [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A detached no-op gauge.
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        if let Some(c) = &self.0 {
            c.store(v, Relaxed);
        }
    }

    /// Increment by one (e.g. a batch entering a queue).
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.fetch_add(1, Relaxed);
        }
    }

    /// Decrement by one, saturating at zero.
    #[inline]
    pub fn dec(&self) {
        if let Some(c) = &self.0 {
            // fetch_update never underflows a balanced inc/dec pair but
            // stays safe if a caller double-decs.
            let _ = c.fetch_update(Relaxed, Relaxed, |v| Some(v.saturating_sub(1)));
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// Shared histogram storage: per-bucket counts plus sum and count.
#[derive(Debug)]
struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        let idx = (bucket_index(v)).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }
}

/// Bucket index for value `v`: 0 holds `v ≤ 1`, bucket `i` holds
/// `2^(i-1) < v ≤ 2^i`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros()) as usize
    }
}

/// Upper bound (`le`) of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    1u64 << i
}

/// A fixed-bucket distribution (sizes, latencies). No-op semantics as
/// [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A detached no-op histogram.
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Start a span whose elapsed microseconds are recorded on drop.
    /// A no-op histogram never even reads the clock.
    #[inline]
    pub fn start_span(&self) -> SpanTimer {
        SpanTimer(self.0.as_ref().map(|h| (Instant::now(), Arc::clone(h))))
    }

    /// Observations recorded so far (0 for a no-op handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Relaxed))
    }
}

/// Drop-guard span: records the elapsed time in microseconds into its
/// histogram when dropped. Obtained from [`Histogram::start_span`].
#[derive(Debug)]
pub struct SpanTimer(Option<(Instant, Arc<HistogramCore>)>);

impl SpanTimer {
    /// End the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((t0, h)) = self.0.take() {
            h.record(t0.elapsed().as_micros() as u64);
        }
    }
}

// ---------------------------------------------------------------------
// Registry and scopes
// ---------------------------------------------------------------------

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

/// The name → metric table. One global instance ([`global`]); metric
/// names are dot-separated scope paths (`pool.shard0.queue_depth`).
/// Registration takes the mutex; recording never does.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A handle rooted at `prefix` on the global registry.
    pub fn scope(&'static self, prefix: &str) -> Scope {
        Scope { registry: self, prefix: prefix.to_string() }
    }

    fn counter(&self, name: &str) -> Counter {
        if !enabled() {
            return Counter::noop();
        }
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        Counter(Some(Arc::clone(
            inner.counters.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )))
    }

    fn gauge(&self, name: &str) -> Gauge {
        if !enabled() {
            return Gauge::noop();
        }
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        Gauge(Some(Arc::clone(
            inner.gauges.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )))
    }

    fn histogram(&self, name: &str) -> Histogram {
        if !enabled() {
            return Histogram::noop();
        }
        let mut inner = self.inner.lock().expect("telemetry registry poisoned");
        Histogram(Some(Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        )))
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("telemetry registry poisoned");
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Relaxed)))
                .collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.load(Relaxed))).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: h.count.load(Relaxed),
                            sum: h.sum.load(Relaxed),
                            buckets: h.buckets.iter().map(|b| b.load(Relaxed)).collect(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Zero every registered metric (existing handles stay bound).
    pub fn reset(&self) {
        let inner = self.inner.lock().expect("telemetry registry poisoned");
        for v in inner.counters.values() {
            v.store(0, Relaxed);
        }
        for v in inner.gauges.values() {
            v.store(0, Relaxed);
        }
        for h in inner.histograms.values() {
            for b in &h.buckets {
                b.store(0, Relaxed);
            }
            h.count.store(0, Relaxed);
            h.sum.store(0, Relaxed);
        }
    }
}

/// A named namespace in a registry. Cheap to clone; sub-scopes nest via
/// [`Scope::sub`].
#[derive(Debug, Clone)]
pub struct Scope {
    registry: &'static Registry,
    prefix: String,
}

impl Scope {
    /// A scope named `prefix` on the global registry.
    pub fn named(prefix: &str) -> Scope {
        global().scope(prefix)
    }

    /// This scope's dot-separated prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// A child scope (`pool` → `pool.shard0`).
    pub fn sub(&self, name: &str) -> Scope {
        Scope { registry: self.registry, prefix: format!("{}.{}", self.prefix, name) }
    }

    fn path(&self, name: &str) -> String {
        format!("{}.{}", self.prefix, name)
    }

    /// Register (or re-acquire) the counter `prefix.name`. Returns a
    /// no-op handle while telemetry is disabled.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.path(name))
    }

    /// Register (or re-acquire) the gauge `prefix.name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&self.path(name))
    }

    /// Register (or re-acquire) the histogram `prefix.name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(&self.path(name))
    }
}

// ---------------------------------------------------------------------
// Snapshots and export formats
// ---------------------------------------------------------------------

/// Point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Per-bucket (non-cumulative) counts, [`HISTOGRAM_BUCKETS`] long.
    pub buckets: Vec<u64>,
}

/// Point-in-time copy of a registry, sorted by metric name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, u64)>,
    /// Histogram name → distribution.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// `pool.shard0.queue_depth` → `haystack_pool_shard0_queue_depth`.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("haystack_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

impl Snapshot {
    /// The value of counter `name` (exact dot-path), if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The value of gauge `name` (exact dot-path), if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Restrict to metrics under `scope.` (a dot-path prefix).
    pub fn filtered(&self, scope: &str) -> Snapshot {
        let keep = |k: &str| k == scope || k.starts_with(&format!("{scope}."));
        Snapshot {
            counters: self.counters.iter().filter(|(k, _)| keep(k)).cloned().collect(),
            gauges: self.gauges.iter().filter(|(k, _)| keep(k)).cloned().collect(),
            histograms: self.histograms.iter().filter(|(k, _)| keep(k)).cloned().collect(),
        }
    }

    /// Counter deltas against an `earlier` snapshot (gauges keep their
    /// later value; histograms diff count/sum/buckets). The test-isolation
    /// primitive: two snapshots bracket a workload, the delta is its cost.
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let base_c: BTreeMap<&str, u64> =
            earlier.counters.iter().map(|(k, v)| (k.as_str(), *v)).collect();
        let base_h: BTreeMap<&str, &HistogramSnapshot> =
            earlier.histograms.iter().map(|(k, v)| (k.as_str(), v)).collect();
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    (k.clone(), v.saturating_sub(base_c.get(k.as_str()).copied().unwrap_or(0)))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let base = base_h.get(k.as_str());
                    (
                        k.clone(),
                        HistogramSnapshot {
                            count: h.count.saturating_sub(base.map_or(0, |b| b.count)),
                            sum: h.sum.saturating_sub(base.map_or(0, |b| b.sum)),
                            buckets: h
                                .buckets
                                .iter()
                                .enumerate()
                                .map(|(i, v)| {
                                    v.saturating_sub(
                                        base.and_then(|b| b.buckets.get(i)).copied().unwrap_or(0),
                                    )
                                })
                                .collect(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Prometheus text exposition format (`haystack metrics`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let p = prometheus_name(name);
            out.push_str(&format!("# TYPE {p} counter\n{p} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let p = prometheus_name(name);
            out.push_str(&format!("# TYPE {p} gauge\n{p} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let p = prometheus_name(name);
            out.push_str(&format!("# TYPE {p} histogram\n"));
            let mut cum = 0u64;
            for (i, b) in h.buckets.iter().enumerate() {
                cum += b;
                if i + 1 == h.buckets.len() {
                    out.push_str(&format!("{p}_bucket{{le=\"+Inf\"}} {cum}\n"));
                } else if *b > 0 || cum > 0 {
                    out.push_str(&format!("{p}_bucket{{le=\"{}\"}} {cum}\n", bucket_bound(i)));
                }
            }
            out.push_str(&format!("{p}_sum {}\n{p}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Structured JSON (the section appended to the degradation and
    /// crosscheck reports and compared by the golden end-to-end test).
    /// Histograms serialize as `{count, sum, buckets: {le: n, ...}}`
    /// with empty buckets omitted.
    pub fn to_json(&self) -> serde_json::Value {
        let counters: serde_json::Map = self
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), serde_json::json!(*v)))
            .collect();
        let gauges: serde_json::Map =
            self.gauges.iter().map(|(k, v)| (k.clone(), serde_json::json!(*v))).collect();
        let histograms: serde_json::Map = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let buckets: serde_json::Map = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| **v > 0)
                    .map(|(i, v)| {
                        let le = if i + 1 == h.buckets.len() {
                            "+Inf".to_string()
                        } else {
                            bucket_bound(i).to_string()
                        };
                        (le, serde_json::json!(*v))
                    })
                    .collect();
                (
                    k.clone(),
                    serde_json::json!({
                        "count": h.count,
                        "sum": h.sum,
                        "buckets": serde_json::Value::Object(buckets),
                    }),
                )
            })
            .collect();
        serde_json::json!({
            "counters": serde_json::Value::Object(counters),
            "gauges": serde_json::Value::Object(gauges),
            "histograms": serde_json::Value::Object(histograms),
        })
    }

    /// Counters only, as JSON — the deterministic subset the golden
    /// end-to-end fixture pins (gauges and span histograms depend on
    /// scheduling and wall-clock, counters do not).
    pub fn counters_to_json(&self) -> serde_json::Value {
        serde_json::Value::Object(
            self.counters.iter().map(|(k, v)| (k.clone(), serde_json::json!(*v))).collect(),
        )
    }
}

// ---------------------------------------------------------------------
// Stage bridges
// ---------------------------------------------------------------------

/// Scrape a flow collector's health counters into `scope` as gauges
/// (monotonic on the collector's side; scraped, not pushed, because
/// `haystack-flow` sits below this crate). Call after a feed pass or on
/// a scrape interval.
pub fn observe_collector(scope: &Scope, c: &haystack_flow::Collector) {
    scope.gauge("datagrams_received").set(c.datagrams_received());
    scope.gauge("records_decoded").set(c.records_decoded());
    scope.gauge("template_hits").set(c.template_hits());
    scope.gauge("template_announcements").set(c.template_announcements());
    scope.gauge("template_misses").set(c.dropped_unknown_template());
    scope.gauge("templates_evicted").set(c.templates_evicted());
    scope.gauge("templates_cached").set(c.template_count() as u64);
    scope.gauge("missed_datagrams").set(c.missed_datagrams());
    scope.gauge("missed_records").set(c.missed_records());
    scope.gauge("restarts_detected").set(c.restarts_detected());
    scope.gauge("malformed_messages").set(c.malformed_messages());
    scope.gauge("malformed_sets").set(c.malformed_sets());
    scope.gauge("quarantined_sources").set(c.quarantined_sources().len() as u64);
    scope.gauge("requarantined").set(c.requarantines_total());
}

/// Handles for one instrumented record stream.
#[derive(Debug, Clone)]
struct StreamTelemetry {
    chunks: Counter,
    records_emitted: Counter,
    sampled_packets: Counter,
    batches: Counter,
    batches_dropped: Counter,
    records_lost: Counter,
    records_duplicated: Counter,
    restarts: Counter,
    chunk_records: Histogram,
    chunk_span_us: Histogram,
}

impl StreamTelemetry {
    fn new(scope: &Scope) -> StreamTelemetry {
        StreamTelemetry {
            chunks: scope.counter("chunks"),
            records_emitted: scope.counter("records_emitted"),
            sampled_packets: scope.counter("sampled_packets"),
            batches: scope.counter("batches"),
            batches_dropped: scope.counter("batches_dropped"),
            records_lost: scope.counter("records_lost"),
            records_duplicated: scope.counter("records_duplicated"),
            restarts: scope.counter("restarts"),
            chunk_records: scope.histogram("chunk_records"),
            chunk_span_us: scope.histogram("chunk_span_us"),
        }
    }
}

/// A [`RecordStream`] adapter that counts what flows through: chunks and
/// records emitted, sampled packets, and the per-reason degradation
/// accounting riding on each chunk. The stream-stage instrumentation
/// point — wrap any vantage-point or degrade stream in one.
#[derive(Debug)]
pub struct InstrumentedStream<S> {
    inner: S,
    tel: StreamTelemetry,
}

impl<S: RecordStream> InstrumentedStream<S> {
    /// Wrap `inner`, reporting under `scope`.
    pub fn new(inner: S, scope: &Scope) -> InstrumentedStream<S> {
        InstrumentedStream { inner, tel: StreamTelemetry::new(scope) }
    }
}

impl<S: RecordStream> RecordStream for InstrumentedStream<S> {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        let span = self.tel.chunk_span_us.start_span();
        let more = self.inner.next_chunk(out);
        span.finish();
        if more {
            self.tel.chunks.inc();
            self.tel.records_emitted.add(out.records.len() as u64);
            self.tel.sampled_packets.add(out.sampled_packets);
            self.tel.chunk_records.record(out.records.len() as u64);
            let d = out.degradation;
            self.tel.batches.add(d.batches);
            self.tel.batches_dropped.add(d.batches_dropped);
            self.tel.records_lost.add(d.records_lost);
            self.tel.records_duplicated.add(d.records_duplicated);
            self.tel.restarts.add(d.restarts);
        }
        more
    }
}

/// Plain per-detector hot-path tallies ([`Detector`](crate::detector::
/// Detector) and [`UsageTracker`](crate::usage::UsageTracker) keep one
/// each). These are unconditional non-atomic adds — cheap enough for
/// the allocation-free observe loop — and are flushed into atomic
/// [`Counter`]s at chunk granularity by whoever owns the component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotStats {
    /// Records offered to the component.
    pub records: u64,
    /// Records that passed the hitlist's fingerprint front gate (and so
    /// went on to a full table probe). Detector only; usage leaves the
    /// prefilter tallies at zero.
    pub prefilter_hits: u64,
    /// Records the fingerprint gate retired on one cache line — the
    /// real-world miss rate is `prefilter_misses / (prefilter_hits +
    /// prefilter_misses)`.
    pub prefilter_misses: u64,
    /// Hitlist probes executed (records surviving pre-filters).
    pub probes: u64,
    /// Hitlist entries matched (evidence candidates).
    pub matches: u64,
    /// Rule thresholds newly met (detector) or indicator hits (usage).
    pub detections: u64,
}

impl HotStats {
    /// Tallies accrued since `earlier` (component stats only grow).
    pub fn since(&self, earlier: &HotStats) -> HotStats {
        HotStats {
            records: self.records - earlier.records,
            prefilter_hits: self.prefilter_hits - earlier.prefilter_hits,
            prefilter_misses: self.prefilter_misses - earlier.prefilter_misses,
            probes: self.probes - earlier.probes,
            matches: self.matches - earlier.matches,
            detections: self.detections - earlier.detections,
        }
    }
}

/// Counter handles a detector-owning stage flushes [`HotStats`] into.
#[derive(Debug, Clone)]
pub struct HotStatsCounters {
    records: Counter,
    prefilter_hits: Counter,
    prefilter_misses: Counter,
    probes: Counter,
    matches: Counter,
    detections: Counter,
}

impl HotStatsCounters {
    /// Register `records_observed` / `prefilter_hits` /
    /// `prefilter_misses` / `hitlist_probes` / `hitlist_matches` /
    /// `detections` under `scope`.
    pub fn new(scope: &Scope) -> HotStatsCounters {
        HotStatsCounters {
            records: scope.counter("records_observed"),
            prefilter_hits: scope.counter("prefilter_hits"),
            prefilter_misses: scope.counter("prefilter_misses"),
            probes: scope.counter("hitlist_probes"),
            matches: scope.counter("hitlist_matches"),
            detections: scope.counter("detections"),
        }
    }

    /// Add a (delta) tally.
    #[inline]
    pub fn flush(&self, delta: HotStats) {
        self.records.add(delta.records);
        self.prefilter_hits.add(delta.prefilter_hits);
        self.prefilter_misses.add(delta.prefilter_misses);
        self.probes.add(delta.probes);
        self.matches.add(delta.matches);
        self.detections.add(delta.detections);
    }
}

/// Publish a hitlist's size under `scope` (rebuilt daily; the gauges
/// track the current day's entry count and the fingerprint front gate's
/// footprint).
pub fn observe_hitlist(scope: &Scope, hitlist: &HitList) {
    scope.gauge("hitlist_entries").set(hitlist.len() as u64);
    scope.gauge("hitlist_prefilter_bytes").set(hitlist.prefilter_len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "telemetry")]
    use haystack_wild::VecStream;

    /// Every test uses its own scope prefix: the registry is global and
    /// the test binary is multi-threaded.
    fn unique_scope(name: &str) -> Scope {
        Scope::named(name)
    }

    /// The enable flag is process-global; tests that flip it hold this.
    fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_handles_are_noops() {
        let _g = flag_lock();
        set_enabled(false);
        let s = unique_scope("t_disabled");
        let c = s.counter("x");
        c.add(5);
        assert_eq!(c.get(), 0);
        let h = s.histogram("h");
        h.record(9);
        assert_eq!(h.count(), 0);
        // Nothing registered while disabled.
        assert_eq!(global().snapshot().counter("t_disabled.x"), None);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn counters_gauges_histograms_register_and_snapshot() {
        let _g = flag_lock();
        set_enabled(true);
        let s = unique_scope("t_basic");
        let before = global().snapshot();
        let c = s.counter("records");
        c.add(3);
        c.inc();
        let g = s.sub("shard0").gauge("queue_depth");
        g.set(7);
        g.inc();
        g.dec();
        g.dec();
        let h = s.histogram("sizes");
        for v in [0, 1, 2, 3, 1024, 1u64 << 40] {
            h.record(v);
        }
        let snap = global().snapshot().delta_since(&before);
        assert_eq!(snap.counter("t_basic.records"), Some(4));
        assert_eq!(global().snapshot().gauge("t_basic.shard0.queue_depth"), Some(6));
        let (_, hs) = snap
            .histograms
            .iter()
            .find(|(k, _)| k == "t_basic.sizes")
            .expect("histogram registered");
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, 1 + 2 + 3 + 1024 + (1u64 << 40));
        // 0 and 1 share bucket 0; 2 in bucket 1; 3 in bucket 2; 1024 in
        // bucket 10; 2^40 lands in the +Inf catch-all.
        assert_eq!(hs.buckets[0], 2);
        assert_eq!(hs.buckets[1], 1);
        assert_eq!(hs.buckets[2], 1);
        assert_eq!(hs.buckets[10], 1);
        assert_eq!(hs.buckets[HISTOGRAM_BUCKETS - 1], 1);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        for i in 0..20usize {
            let le = bucket_bound(i);
            assert_eq!(bucket_index(le), i, "le {le} must land in bucket {i}");
            assert_eq!(bucket_index(le + 1), i + 1, "le+1 spills to the next bucket");
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn export_formats_cover_every_metric() {
        let _g = flag_lock();
        set_enabled(true);
        let s = unique_scope("t_export");
        s.counter("hits").add(2);
        s.gauge("depth").set(5);
        s.histogram("lat_us").record(100);
        let snap = global().snapshot().filtered("t_export");
        let prom = snap.to_prometheus();
        assert!(prom.contains("# TYPE haystack_t_export_hits counter"));
        assert!(prom.contains("haystack_t_export_hits 2"));
        assert!(prom.contains("haystack_t_export_depth 5"));
        assert!(prom.contains("haystack_t_export_lat_us_count 1"));
        assert!(prom.contains("le=\"+Inf\"} 1"));
        let json = snap.to_json();
        assert_eq!(json["counters"]["t_export.hits"].as_u64(), Some(2));
        assert_eq!(json["gauges"]["t_export.depth"].as_u64(), Some(5));
        assert_eq!(json["histograms"]["t_export.lat_us"]["count"].as_u64(), Some(1));
        // JSON round-trips through the shim parser.
        let text = serde_json::to_string_pretty(&json).unwrap();
        let back: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(back, json);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn instrumented_stream_counts_chunks_and_degradation() {
        use haystack_net::ports::Proto;
        use haystack_net::{AnonId, HourBin, Prefix4};
        use std::net::Ipv4Addr;
        let _g = flag_lock();
        set_enabled(true);
        let s = unique_scope("t_stream");
        let src = Ipv4Addr::new(100, 64, 0, 1);
        let records: Vec<haystack_wild::WildRecord> = (0..25)
            .map(|i| haystack_wild::WildRecord {
                line: AnonId(i),
                line_slash24: Prefix4::slash24_of(src),
                src_ip: src,
                dst: Ipv4Addr::new(198, 18, 0, 1),
                dport: 443,
                proto: Proto::Tcp,
                packets: 2,
                bytes: 100,
                established: true,
                hour: HourBin(0),
            })
            .collect();
        let mut inner = VecStream::new(records, 10);
        inner.set_sampled_packets(50);
        let mut stream = InstrumentedStream::new(inner, &s);
        let mut chunk = RecordChunk::default();
        let mut total = 0usize;
        while stream.next_chunk(&mut chunk) {
            total += chunk.records.len();
        }
        assert_eq!(total, 25);
        let snap = global().snapshot().filtered("t_stream");
        assert_eq!(snap.counter("t_stream.chunks"), Some(3));
        assert_eq!(snap.counter("t_stream.records_emitted"), Some(25));
        assert_eq!(snap.counter("t_stream.sampled_packets"), Some(50));
        assert_eq!(snap.counter("t_stream.records_lost"), Some(0));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn span_timer_records_on_drop() {
        let _g = flag_lock();
        set_enabled(true);
        let s = unique_scope("t_span");
        let h = s.histogram("span_us");
        {
            let _span = h.start_span();
        }
        h.start_span().finish();
        assert_eq!(h.count(), 2);
    }
}
