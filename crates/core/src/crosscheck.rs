//! §5 — crosschecking the rules against the ground truth.
//!
//! The Home-VP's packets are run through the *full* measurement pipeline
//! — packet sampling at the border router, the flow cache, NetFlow v9
//! encoding, collection, decoding — and the resulting records are fed to
//! the detector. The output is Figure 10: per detection class and
//! threshold `D`, the time until the class is detected at the Home-VP
//! subscriber line (or "not detected" within the window).
//!
//! The same machinery powers the false-positive crosscheck ("another
//! experiment where we only enable a small subset of IoT devices … we do
//! not identify any devices that are not explicitly part of the
//! experiment"): pass an instance filter and assert on
//! [`detected_classes`].

use crate::detector::{Detector, DetectorConfig};
use crate::hitlist::HitList;
use crate::pipeline::Pipeline;
use haystack_flow::cache::{FlowCache, FlowCacheConfig};
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::sampling::{PacketSampler, SystematicSampler};
use haystack_flow::{Collector, FlowRecord};
use haystack_net::{AnonId, HourBin, StudyWindow};
use haystack_testbed::ExperimentKind;
use std::collections::BTreeSet;

/// The Home-VP is one subscriber line; this is its detector identity.
pub const HOME_LINE: AnonId = AnonId(0x000A_11CE);

/// Crosscheck configuration.
#[derive(Debug, Clone)]
pub struct CrosscheckConfig {
    /// 1-in-N border-router sampling (ISP default 1/1000).
    pub sampling: u64,
    /// Which experiment to replay.
    pub kind: ExperimentKind,
    /// Limit the replay to the first `hours` of the window (whole window
    /// if `None`).
    pub hours: Option<u32>,
}

/// Per-class detection timing at one threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionTime {
    /// Detection class.
    pub class: &'static str,
    /// Threshold `D`.
    pub threshold: f64,
    /// Hours from window start until detection (`None` = not detected).
    pub hours_to_detect: Option<u32>,
}

/// Replay the ground truth through sampling + NetFlow and return the
/// decoded flow records per hour.
pub fn replay_flows(pipeline: &Pipeline, config: &CrosscheckConfig) -> Vec<(HourBin, Vec<FlowRecord>)> {
    let window = match config.kind {
        ExperimentKind::Active => StudyWindow::ACTIVE_GT,
        ExperimentKind::Idle => StudyWindow::IDLE_GT,
    };
    let mut sampler = SystematicSampler::new(config.sampling, pipeline.driver.catalog().products.len() as u64)
        .expect("valid sampling rate");
    let mut cache = FlowCache::new(FlowCacheConfig::default());
    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 1);
    let mut collector = Collector::new();
    let mut out = Vec::new();
    let hours: Vec<HourBin> = match config.hours {
        Some(h) => window.hour_bins().take(h as usize).collect(),
        None => window.hour_bins().collect(),
    };
    for hour in hours {
        let packets = pipeline.driver.generate_hour(&pipeline.world, hour);
        for g in &packets {
            if sampler.sample() {
                cache.on_packet(&g.packet);
            }
        }
        cache.advance(hour.next().start());
        let expired = cache.drain_expired();
        let mut decoded = Vec::with_capacity(expired.len());
        for msg in exporter
            .export(&expired, hour.start().0 as u32)
            .expect("export never fails on valid records")
        {
            decoded.extend(
                collector
                    .feed_netflow_v9(msg)
                    .expect("self-produced datagrams decode"),
            );
        }
        out.push((hour, decoded));
    }
    out
}

/// Figure 10: detection times for every rule class across thresholds.
pub fn detection_times(
    pipeline: &Pipeline,
    config: &CrosscheckConfig,
    thresholds: &[f64],
) -> Vec<DetectionTime> {
    let flows = replay_flows(pipeline, config);
    let window_start = flows.first().map(|(h, _)| h.0).unwrap_or(0);
    let mut out = Vec::new();
    for &threshold in thresholds {
        let hitlist = HitList::whole_window(&pipeline.rules);
        let mut det = Detector::new(
            &pipeline.rules,
            hitlist,
            DetectorConfig { threshold, require_established: false },
        );
        for (hour, records) in &flows {
            for r in records {
                det.observe(HOME_LINE, r.key.dst, r.key.dport, r.key.proto, r.is_established_evidence(), *hour);
            }
        }
        for rule in &pipeline.rules.rules {
            let hours_to_detect = det
                .first_detection(HOME_LINE, rule.class)
                .map(|h| h.0 - window_start);
            out.push(DetectionTime { class: rule.class, threshold, hours_to_detect });
        }
    }
    out
}

/// False-positive crosscheck: replay only the given instances' traffic
/// and report which classes the detector claims.
pub fn detected_classes(
    pipeline: &Pipeline,
    instances: &BTreeSet<u32>,
    config: &CrosscheckConfig,
    threshold: f64,
) -> BTreeSet<&'static str> {
    let window = match config.kind {
        ExperimentKind::Active => StudyWindow::ACTIVE_GT,
        ExperimentKind::Idle => StudyWindow::IDLE_GT,
    };
    let mut sampler = SystematicSampler::new(config.sampling, 3).expect("valid sampling rate");
    let hitlist = HitList::whole_window(&pipeline.rules);
    let mut det = Detector::new(
        &pipeline.rules,
        hitlist,
        DetectorConfig { threshold, require_established: false },
    );
    let hours: Vec<HourBin> = match config.hours {
        Some(h) => window.hour_bins().take(h as usize).collect(),
        None => window.hour_bins().collect(),
    };
    for hour in hours {
        let packets = pipeline.driver.generate_hour(&pipeline.world, hour);
        for g in &packets {
            if instances.contains(&g.instance) && sampler.sample() {
                det.observe(
                    HOME_LINE,
                    g.packet.dst,
                    g.packet.dport,
                    g.packet.proto,
                    g.packet.flags.is_established_evidence(),
                    hour,
                );
            }
        }
    }
    pipeline
        .rules
        .rules
        .iter()
        .map(|r| r.class)
        .filter(|c| det.is_detected(HOME_LINE, c))
        .collect()
}

/// Summary used by the §5 headline claim: the fraction of rule classes
/// (optionally restricted by level) detected within `within_hours`.
pub fn fraction_detected_within(
    times: &[DetectionTime],
    threshold: f64,
    within_hours: u32,
    classes: &BTreeSet<&'static str>,
) -> f64 {
    let relevant: Vec<&DetectionTime> = times
        .iter()
        .filter(|t| (t.threshold - threshold).abs() < 1e-9 && classes.contains(t.class))
        .collect();
    if relevant.is_empty() {
        return 0.0;
    }
    let hit = relevant
        .iter()
        .filter(|t| t.hours_to_detect.map(|h| h < within_hours).unwrap_or(false))
        .count();
    hit as f64 / relevant.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> &'static Pipeline {
        crate::testutil::shared_pipeline()
    }

    #[test]
    fn replay_produces_flow_records() {
        let p = pipeline();
        let flows = replay_flows(
            &p,
            &CrosscheckConfig { sampling: 100, kind: ExperimentKind::Idle, hours: Some(3) },
        );
        assert_eq!(flows.len(), 3);
        let total: usize = flows.iter().map(|(_, r)| r.len()).sum();
        assert!(total > 50, "sampled flows: {total}");
    }

    #[test]
    fn hot_classes_detected_quickly_at_low_threshold() {
        let p = pipeline();
        let times = detection_times(
            &p,
            &CrosscheckConfig { sampling: 1_000, kind: ExperimentKind::Active, hours: Some(12) },
            &[0.4],
        );
        let alexa = times.iter().find(|t| t.class == "Alexa Enabled").unwrap();
        assert!(
            alexa.hours_to_detect.map(|h| h <= 2).unwrap_or(false),
            "Alexa detected almost instantly, got {:?}",
            alexa.hours_to_detect
        );
    }

    #[test]
    fn higher_threshold_never_detects_earlier() {
        let p = pipeline();
        let times = detection_times(
            &p,
            &CrosscheckConfig { sampling: 500, kind: ExperimentKind::Active, hours: Some(8) },
            &[0.2, 1.0],
        );
        for rule in &p.rules.rules {
            let low = times
                .iter()
                .find(|t| t.class == rule.class && t.threshold == 0.2)
                .unwrap();
            let high = times
                .iter()
                .find(|t| t.class == rule.class && t.threshold == 1.0)
                .unwrap();
            match (low.hours_to_detect, high.hours_to_detect) {
                (None, Some(_)) => panic!("{}: high-D detected but low-D missed", rule.class),
                (Some(l), Some(h)) => assert!(l <= h, "{}: low {l} > high {h}", rule.class),
                _ => {}
            }
        }
    }

    #[test]
    fn subset_experiment_has_no_false_positives() {
        let p = pipeline();
        // Enable only the Yi Camera instances.
        let yi: BTreeSet<u32> = p
            .driver
            .instances()
            .iter()
            .filter(|i| p.catalog.products[i.product].class == "Yi Camera")
            .map(|i| i.id)
            .collect();
        assert!(!yi.is_empty());
        let detected = detected_classes(
            &p,
            &yi,
            &CrosscheckConfig { sampling: 100, kind: ExperimentKind::Active, hours: Some(10) },
            0.4,
        );
        for class in &detected {
            assert_eq!(*class, "Yi Camera", "false positive: {class}");
        }
    }

    #[test]
    fn fraction_helper() {
        let times = vec![
            DetectionTime { class: "A", threshold: 0.4, hours_to_detect: Some(0) },
            DetectionTime { class: "B", threshold: 0.4, hours_to_detect: Some(30) },
            DetectionTime { class: "C", threshold: 0.4, hours_to_detect: None },
        ];
        let classes: BTreeSet<&'static str> = ["A", "B", "C"].into_iter().collect();
        assert!((fraction_detected_within(&times, 0.4, 1, &classes) - 1.0 / 3.0).abs() < 1e-9);
        assert!((fraction_detected_within(&times, 0.4, 48, &classes) - 2.0 / 3.0).abs() < 1e-9);
    }
}
