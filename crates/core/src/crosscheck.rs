//! §5 — crosschecking the rules against the ground truth.
//!
//! The Home-VP's packets are run through the *full* measurement pipeline
//! — packet sampling at the border router, the flow cache, NetFlow v9
//! encoding, collection, decoding — and the resulting records are fed to
//! the detector. The output is Figure 10: per detection class and
//! threshold `D`, the time until the class is detected at the Home-VP
//! subscriber line (or "not detected" within the window).
//!
//! The same machinery powers the false-positive crosscheck ("another
//! experiment where we only enable a small subset of IoT devices … we do
//! not identify any devices that are not explicitly part of the
//! experiment"): pass an instance filter and assert on
//! [`detected_classes`].

use crate::detector::{Detector, DetectorConfig};
use crate::hitlist::HitList;
use crate::pipeline::Pipeline;
use haystack_flow::cache::{FlowCache, FlowCacheConfig};
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::sampling::{PacketSampler, SystematicSampler};
use haystack_flow::{Collector, FlowRecord};
use haystack_net::{AnonId, HourBin, Prefix4, StudyWindow};
use haystack_testbed::materialize::MaterializedWorld;
use haystack_testbed::ExperimentKind;
use haystack_wild::{
    RecordChunk, RecordStream, VantagePoint, VecStream, WildRecord, DEFAULT_CHUNK_RECORDS,
};
use std::cell::RefCell;
use std::collections::BTreeSet;

/// The Home-VP is one subscriber line; this is its detector identity.
pub const HOME_LINE: AnonId = AnonId(0x000A_11CE);

/// Crosscheck configuration.
#[derive(Debug, Clone)]
pub struct CrosscheckConfig {
    /// 1-in-N border-router sampling (ISP default 1/1000).
    pub sampling: u64,
    /// Which experiment to replay.
    pub kind: ExperimentKind,
    /// Limit the replay to the first `hours` of the window (whole window
    /// if `None`).
    pub hours: Option<u32>,
}

/// Per-class detection timing at one threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionTime {
    /// Detection class name (owned — resolved from the rule set's
    /// interned table).
    pub class: String,
    /// Threshold `D`.
    pub threshold: f64,
    /// Hours from window start until detection (`None` = not detected).
    pub hours_to_detect: Option<u32>,
}

/// Replay the ground truth through sampling + NetFlow and return the
/// decoded flow records per hour.
pub fn replay_flows(pipeline: &Pipeline, config: &CrosscheckConfig) -> Vec<(HourBin, Vec<FlowRecord>)> {
    let window = match config.kind {
        ExperimentKind::Active => StudyWindow::ACTIVE_GT,
        ExperimentKind::Idle => StudyWindow::IDLE_GT,
    };
    let mut sampler = SystematicSampler::new(config.sampling, pipeline.driver.catalog().products.len() as u64)
        .expect("valid sampling rate");
    let mut cache = FlowCache::new(FlowCacheConfig::default());
    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 1);
    let mut collector = Collector::new();
    let mut out = Vec::new();
    let hours: Vec<HourBin> = match config.hours {
        Some(h) => window.hour_bins().take(h as usize).collect(),
        None => window.hour_bins().collect(),
    };
    for hour in hours {
        let packets = pipeline.driver.generate_hour(&pipeline.world, hour);
        for g in &packets {
            if sampler.sample() {
                cache.on_packet(&g.packet);
            }
        }
        cache.advance(hour.next().start());
        let expired = cache.drain_expired();
        let mut decoded = Vec::with_capacity(expired.len());
        for msg in exporter
            .export(&expired, hour.start().0 as u32)
            .expect("export never fails on valid records")
        {
            decoded.extend(
                collector
                    .feed_netflow_v9(msg)
                    .expect("self-produced datagrams decode"),
            );
        }
        out.push((hour, decoded));
    }
    out
}

/// The ground-truth testbed capture as a [`VantagePoint`]: each streamed
/// hour is the Home-VP's packets run through border sampling, the flow
/// cache, NetFlow v9 export, and collection, with the decoded flows
/// surfacing as [`WildRecord`]s attributed to [`HOME_LINE`].
///
/// The measurement chain is stateful (the flow cache carries flows
/// across hour boundaries, the sampler its phase), so hours must be
/// replayed in order. Streaming the window's first hour — or any hour
/// at or before the last one served — resets the chain and fast-forwards
/// from the window start, which keeps the interface random-access at the
/// cost of a re-replay.
pub struct GroundTruthVantage<'p> {
    pipeline: &'p Pipeline,
    config: CrosscheckConfig,
    state: RefCell<ReplayState>,
}

/// The sequential measurement chain between the testbed and the records.
struct ReplayState {
    sampler: SystematicSampler,
    cache: FlowCache,
    exporter: Exporter,
    collector: Collector,
    /// The hour the chain expects to replay next.
    next_hour: HourBin,
}

impl std::fmt::Debug for GroundTruthVantage<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroundTruthVantage").field("config", &self.config).finish_non_exhaustive()
    }
}

impl<'p> GroundTruthVantage<'p> {
    /// A vantage point replaying `config.kind`'s experiment window.
    pub fn new(pipeline: &'p Pipeline, config: CrosscheckConfig) -> Self {
        let window_start = Self::window_of(&config).hour_bins().next().expect("non-empty window");
        let state = RefCell::new(Self::fresh_state(pipeline, &config, window_start));
        GroundTruthVantage { pipeline, config, state }
    }

    fn window_of(config: &CrosscheckConfig) -> StudyWindow {
        match config.kind {
            ExperimentKind::Active => StudyWindow::ACTIVE_GT,
            ExperimentKind::Idle => StudyWindow::IDLE_GT,
        }
    }

    fn fresh_state(pipeline: &Pipeline, config: &CrosscheckConfig, start: HourBin) -> ReplayState {
        ReplayState {
            sampler: SystematicSampler::new(
                config.sampling,
                pipeline.driver.catalog().products.len() as u64,
            )
            .expect("valid sampling rate"),
            cache: FlowCache::new(FlowCacheConfig::default()),
            exporter: Exporter::new(ExportProtocol::NetflowV9, 1),
            collector: Collector::new(),
            next_hour: start,
        }
    }

    /// Run one hour through the measurement chain, returning the decoded
    /// records and the number of border-sampled packets.
    fn replay_one(&self, state: &mut ReplayState, world: &MaterializedWorld, hour: HourBin) -> (Vec<WildRecord>, u64) {
        let packets = self.pipeline.driver.generate_hour(world, hour);
        let mut sampled = 0u64;
        for g in &packets {
            if state.sampler.sample() {
                sampled += 1;
                state.cache.on_packet(&g.packet);
            }
        }
        state.cache.advance(hour.next().start());
        let expired = state.cache.drain_expired();
        let mut decoded = Vec::with_capacity(expired.len());
        for msg in state
            .exporter
            .export(&expired, hour.start().0 as u32)
            .expect("export never fails on valid records")
        {
            decoded.extend(
                state
                    .collector
                    .feed_netflow_v9(msg)
                    .expect("self-produced datagrams decode"),
            );
        }
        state.next_hour = hour.next();
        (decoded.iter().map(|r| home_record(r, hour)).collect(), sampled)
    }
}

/// Attribute a decoded flow to the Home-VP subscriber line.
fn home_record(r: &FlowRecord, hour: HourBin) -> WildRecord {
    WildRecord {
        line: HOME_LINE,
        line_slash24: Prefix4::slash24_of(r.key.src),
        src_ip: r.key.src,
        dst: r.key.dst,
        dport: r.key.dport,
        proto: r.key.proto,
        packets: r.packets,
        bytes: r.bytes,
        established: r.is_established_evidence(),
        hour,
    }
}

impl VantagePoint for GroundTruthVantage<'_> {
    fn stream_hour<'a>(
        &'a self,
        world: &'a MaterializedWorld,
        hour: HourBin,
        chunk_records: usize,
    ) -> Box<dyn RecordStream + 'a> {
        let mut state = self.state.borrow_mut();
        if hour < state.next_hour {
            *state = Self::fresh_state(
                self.pipeline,
                &self.config,
                Self::window_of(&self.config).hour_bins().next().expect("non-empty window"),
            );
        }
        // Fast-forward the chain through any skipped hours so the flow
        // cache and sampler phase match a strictly sequential replay.
        while state.next_hour < hour {
            let skipped = state.next_hour;
            let _ = self.replay_one(&mut state, world, skipped);
        }
        let (records, sampled) = self.replay_one(&mut state, world, hour);
        let mut stream = VecStream::new(records, chunk_records);
        stream.set_sampled_packets(sampled);
        Box::new(stream)
    }
}

/// Figure 10: detection times for every rule class across thresholds.
///
/// Single pass: the window is streamed once through the ground-truth
/// vantage point and every threshold's detector observes each chunk.
pub fn detection_times(
    pipeline: &Pipeline,
    config: &CrosscheckConfig,
    thresholds: &[f64],
) -> Vec<DetectionTime> {
    let vantage = GroundTruthVantage::new(pipeline, config.clone());
    let window = GroundTruthVantage::window_of(config);
    let hours: Vec<HourBin> = match config.hours {
        Some(h) => window.hour_bins().take(h as usize).collect(),
        None => window.hour_bins().collect(),
    };
    let window_start = hours.first().map(|h| h.0).unwrap_or(0);
    let mut dets: Vec<Detector<'_>> = thresholds
        .iter()
        .map(|&threshold| {
            Detector::new(
                &pipeline.rules,
                HitList::whole_window(&pipeline.rules),
                DetectorConfig { threshold, require_established: false },
            )
        })
        .collect();
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    for hour in hours {
        let mut stream = vantage.stream_hour(&pipeline.world, hour, DEFAULT_CHUNK_RECORDS);
        while stream.next_chunk(&mut chunk) {
            for det in &mut dets {
                det.observe_chunk(&chunk.records);
            }
        }
    }
    let mut out = Vec::new();
    for (det, &threshold) in dets.iter().zip(thresholds) {
        // Rule handles equal rule positions, so enumerating resolves each
        // class once instead of per query.
        for (ri, rule) in pipeline.rules.rules.iter().enumerate() {
            let hours_to_detect = det
                .first_detection_rule(HOME_LINE, ri as u16)
                .map(|h| h.0 - window_start);
            out.push(DetectionTime {
                class: pipeline.rules.class_name(rule.class).to_string(),
                threshold,
                hours_to_detect,
            });
        }
    }
    out
}

/// False-positive crosscheck: replay only the given instances' traffic
/// and report which classes the detector claims.
pub fn detected_classes(
    pipeline: &Pipeline,
    instances: &BTreeSet<u32>,
    config: &CrosscheckConfig,
    threshold: f64,
) -> BTreeSet<String> {
    let window = match config.kind {
        ExperimentKind::Active => StudyWindow::ACTIVE_GT,
        ExperimentKind::Idle => StudyWindow::IDLE_GT,
    };
    let mut sampler = SystematicSampler::new(config.sampling, 3).expect("valid sampling rate");
    let hitlist = HitList::whole_window(&pipeline.rules);
    let mut det = Detector::new(
        &pipeline.rules,
        hitlist,
        DetectorConfig { threshold, require_established: false },
    );
    let hours: Vec<HourBin> = match config.hours {
        Some(h) => window.hour_bins().take(h as usize).collect(),
        None => window.hour_bins().collect(),
    };
    for hour in hours {
        let packets = pipeline.driver.generate_hour(&pipeline.world, hour);
        for g in &packets {
            if instances.contains(&g.instance) && sampler.sample() {
                det.observe(
                    HOME_LINE,
                    g.packet.dst,
                    g.packet.dport,
                    g.packet.proto,
                    g.packet.flags.is_established_evidence(),
                    hour,
                );
            }
        }
    }
    pipeline
        .rules
        .rules
        .iter()
        .enumerate()
        .filter(|(ri, _)| det.is_detected_rule(HOME_LINE, *ri as u16))
        .map(|(_, r)| pipeline.rules.class_name(r.class).to_string())
        .collect()
}

/// Summary used by the §5 headline claim: the fraction of rule classes
/// (optionally restricted by level) detected within `within_hours`.
pub fn fraction_detected_within(
    times: &[DetectionTime],
    threshold: f64,
    within_hours: u32,
    classes: &BTreeSet<&str>,
) -> f64 {
    let relevant: Vec<&DetectionTime> = times
        .iter()
        .filter(|t| (t.threshold - threshold).abs() < 1e-9 && classes.contains(t.class.as_str()))
        .collect();
    if relevant.is_empty() {
        return 0.0;
    }
    let hit = relevant
        .iter()
        .filter(|t| t.hours_to_detect.map(|h| h < within_hours).unwrap_or(false))
        .count();
    hit as f64 / relevant.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipeline() -> &'static Pipeline {
        crate::testutil::shared_pipeline()
    }

    #[test]
    fn replay_produces_flow_records() {
        let p = pipeline();
        let flows = replay_flows(
            p,
            &CrosscheckConfig { sampling: 100, kind: ExperimentKind::Idle, hours: Some(3) },
        );
        assert_eq!(flows.len(), 3);
        let total: usize = flows.iter().map(|(_, r)| r.len()).sum();
        assert!(total > 50, "sampled flows: {total}");
    }

    #[test]
    fn vantage_stream_matches_replay_flows() {
        let p = pipeline();
        let config = CrosscheckConfig { sampling: 100, kind: ExperimentKind::Idle, hours: Some(3) };
        let flows = replay_flows(p, &config);
        let vantage = GroundTruthVantage::new(p, config);
        let mut chunk = RecordChunk::default();
        for (hour, records) in &flows {
            let expected: Vec<WildRecord> = records.iter().map(|r| home_record(r, *hour)).collect();
            let mut got = Vec::new();
            let mut stream = vantage.stream_hour(&p.world, *hour, 64);
            while stream.next_chunk(&mut chunk) {
                got.extend_from_slice(&chunk.records);
            }
            assert_eq!(got, expected, "hour {hour:?}");
        }
        // Re-streaming an earlier hour resets the measurement chain and
        // replays deterministically from the window start.
        let (h0, r0) = &flows[0];
        let again = vantage.materialize_hour(&p.world, *h0);
        let expected0: Vec<WildRecord> = r0.iter().map(|r| home_record(r, *h0)).collect();
        assert_eq!(again.records, expected0, "reset replay diverged");
    }

    #[test]
    fn hot_classes_detected_quickly_at_low_threshold() {
        let p = pipeline();
        let times = detection_times(
            p,
            &CrosscheckConfig { sampling: 1_000, kind: ExperimentKind::Active, hours: Some(12) },
            &[0.4],
        );
        let alexa = times.iter().find(|t| t.class == "Alexa Enabled").unwrap();
        assert!(
            alexa.hours_to_detect.map(|h| h <= 2).unwrap_or(false),
            "Alexa detected almost instantly, got {:?}",
            alexa.hours_to_detect
        );
    }

    #[test]
    fn higher_threshold_never_detects_earlier() {
        let p = pipeline();
        let times = detection_times(
            p,
            &CrosscheckConfig { sampling: 500, kind: ExperimentKind::Active, hours: Some(8) },
            &[0.2, 1.0],
        );
        for rule in &p.rules.rules {
            let class = p.rules.class_name(rule.class);
            let low = times
                .iter()
                .find(|t| t.class == class && t.threshold == 0.2)
                .unwrap();
            let high = times
                .iter()
                .find(|t| t.class == class && t.threshold == 1.0)
                .unwrap();
            match (low.hours_to_detect, high.hours_to_detect) {
                (None, Some(_)) => panic!("{class}: high-D detected but low-D missed"),
                (Some(l), Some(h)) => assert!(l <= h, "{class}: low {l} > high {h}"),
                _ => {}
            }
        }
    }

    #[test]
    fn subset_experiment_has_no_false_positives() {
        let p = pipeline();
        // Enable only the Yi Camera instances.
        let yi: BTreeSet<u32> = p
            .driver
            .instances()
            .iter()
            .filter(|i| p.catalog.products[i.product].class == "Yi Camera")
            .map(|i| i.id)
            .collect();
        assert!(!yi.is_empty());
        let detected = detected_classes(
            p,
            &yi,
            &CrosscheckConfig { sampling: 100, kind: ExperimentKind::Active, hours: Some(10) },
            0.4,
        );
        for class in &detected {
            assert_eq!(*class, "Yi Camera", "false positive: {class}");
        }
    }

    #[test]
    fn fraction_helper() {
        let times = vec![
            DetectionTime { class: "A".to_string(), threshold: 0.4, hours_to_detect: Some(0) },
            DetectionTime { class: "B".to_string(), threshold: 0.4, hours_to_detect: Some(30) },
            DetectionTime { class: "C".to_string(), threshold: 0.4, hours_to_detect: None },
        ];
        let classes: BTreeSet<&'static str> = ["A", "B", "C"].into_iter().collect();
        assert!((fraction_detected_within(&times, 0.4, 1, &classes) - 1.0 / 3.0).abs() < 1e-9);
        assert!((fraction_detected_within(&times, 0.4, 48, &classes) - 2.0 / 3.0).abs() < 1e-9);
    }
    /// Regression: the flow cache used to drain in per-instance-random
    /// hash order, making two identical replays disagree record-by-record
    /// (and `GroundTruthVantage`'s reset-replay impossible to pin).
    #[test]
    fn replay_flows_is_call_stable() {
        let p = pipeline();
        let config = CrosscheckConfig { sampling: 100, kind: ExperimentKind::Idle, hours: Some(1) };
        let a = replay_flows(p, &config);
        let b = replay_flows(p, &config);
        assert_eq!(a, b);
    }
}
