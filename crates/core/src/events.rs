//! The NDJSON detection-event stream (DESIGN.md §14).
//!
//! One event per (line, rule) state transition into *detected*: the
//! hour the rule's evidence threshold was first met, together with how
//! many distinct domains had been seen by then. Events are **derived**
//! from exported [`DetectorState`] — the hot path pays nothing, a
//! resumed run re-derives the identical stream, and the derivation is
//! independent of worker count because shard states partition lines.
//!
//! Output is byte-determinate: events sort by (hour, rule, line) and
//! each serializes as one hand-formatted JSON line, so `haystack detect
//! --events` captures diff clean across runs and `GET /events` responses
//! are reproducible fixtures.

use crate::checkpoint::DetectorState;
use crate::rules::RuleSet;
use haystack_net::{AnonId, HourBin};

/// One line-state transition into *detected*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectionEvent {
    /// The subscriber line.
    pub line: AnonId,
    /// Rule index within the rule set.
    pub rule: u16,
    /// Distinct evidence domains seen at transition time.
    pub evidence: u32,
    /// Hour the rule's threshold was first met.
    pub hour: HourBin,
}

/// Derive the event stream from exported detector shard states.
///
/// Shards partition lines, so concatenating shard states loses nothing
/// and duplicates nothing; the final sort makes the result independent
/// of shard count and order.
pub fn events_from_states(rules: &RuleSet, states: &[DetectorState]) -> Vec<DetectionEvent> {
    let mut out = Vec::new();
    for state in states {
        for (ri, entries) in state.rules.iter().enumerate() {
            if ri >= rules.rules.len() {
                continue; // foreign state; extra rules carry no meaning here
            }
            for e in entries {
                if let Some(hour) = e.first_met {
                    out.push(DetectionEvent {
                        line: e.line,
                        rule: ri as u16,
                        evidence: e.mask.count_ones(),
                        hour,
                    });
                }
            }
        }
    }
    out.sort_unstable_by_key(|e| (e.hour, e.rule, e.line));
    out
}

/// Minimal JSON string escaping (quotes, backslashes, control bytes) —
/// class names are tame, but the format must never emit invalid JSON.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize one event as an NDJSON line (no trailing newline). `day`
/// is present in `haystack detect --events` output (which spans days)
/// and absent from the daemon's `GET /events` (which streams one day).
pub fn ndjson_line(rules: &RuleSet, event: &DetectionEvent, day: Option<u32>) -> String {
    let mut out = String::with_capacity(96);
    out.push('{');
    if let Some(day) = day {
        out.push_str(&format!("\"day\":{day},"));
    }
    out.push_str(&format!("\"line\":{},\"class\":", event.line.0));
    let class = rules
        .rules
        .get(usize::from(event.rule))
        .map(|r| rules.class_name(r.class))
        .unwrap_or("<unknown>");
    push_json_str(&mut out, class);
    out.push_str(&format!(
        ",\"evidence\":{},\"hour\":{}}}",
        event.evidence, event.hour.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checkpoint::LineEvidence;
    use crate::rules::RuleSetBuilder;
    use haystack_testbed::catalog::DetectionLevel;

    fn rules() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.rule("Alexa Enabled", DetectionLevel::Platform, None, vec![]);
        b.rule("Fire \"TV\"", DetectionLevel::Product, Some("Alexa Enabled"), vec![]);
        b.build()
    }

    fn ev(line: u64, mask: u64, first_met: Option<u32>) -> LineEvidence {
        LineEvidence { line: AnonId(line), mask, first_met: first_met.map(HourBin) }
    }

    #[test]
    fn only_transitions_become_events_and_order_is_canonical() {
        let rules = rules();
        let shard_a = DetectorState {
            rules: vec![vec![ev(5, 0b111, Some(9)), ev(2, 0b1, None)], vec![ev(3, 0b11, Some(4))]],
        };
        let shard_b = DetectorState { rules: vec![vec![ev(1, 0b1, Some(9))], vec![]] };
        let events = events_from_states(&rules, &[shard_a.clone(), shard_b.clone()]);
        assert_eq!(
            events,
            vec![
                DetectionEvent { line: AnonId(3), rule: 1, evidence: 2, hour: HourBin(4) },
                DetectionEvent { line: AnonId(1), rule: 0, evidence: 1, hour: HourBin(9) },
                DetectionEvent { line: AnonId(5), rule: 0, evidence: 3, hour: HourBin(9) },
            ]
        );
        // Shard order must not matter.
        assert_eq!(events, events_from_states(&rules, &[shard_b, shard_a]));
    }

    #[test]
    fn ndjson_lines_are_exact_and_escaped()  {
        let rules = rules();
        let e = DetectionEvent { line: AnonId(7), rule: 0, evidence: 2, hour: HourBin(30) };
        assert_eq!(
            ndjson_line(&rules, &e, Some(1)),
            "{\"day\":1,\"line\":7,\"class\":\"Alexa Enabled\",\"evidence\":2,\"hour\":30}"
        );
        let quoted = DetectionEvent { line: AnonId(8), rule: 1, evidence: 1, hour: HourBin(0) };
        assert_eq!(
            ndjson_line(&rules, &quoted, None),
            "{\"line\":8,\"class\":\"Fire \\\"TV\\\"\",\"evidence\":1,\"hour\":0}"
        );
    }
}
