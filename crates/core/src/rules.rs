//! §4.3 — from IoT services to device detection rules.
//!
//! A rule exists per detection class (Figure 10's rows). Its domain list
//! is derived from the ground truth by the *most-specific-common-ancestor*
//! assignment: a domain contacted by Echo Dot **and** Fire TV devices
//! belongs to the `Amazon Product` rule; one contacted by every
//! Alexa-speaking device (the AVS endpoint) belongs to the `Alexa
//! Enabled` platform rule; Fire TV's private domains stay with `Fire TV`.
//! That is precisely how §4.3.2 breaks the Amazon hierarchy into
//! 1 / 33 / 34 domains.
//!
//! Only **Primary, dedicated** domains become rule evidence (§4.3.2:
//! "we require that a subscriber contacts at least one IP/port
//! combination associated with a Primary domain"); shared and support
//! domains never do. A class whose rule ends up with zero monitorable
//! domains is reported undetectable — this is where §4.2.3's exclusions
//! (Google Home, Apple TV, Lefun, …) fall out of the pipeline rather
//! than being assumed.

use crate::dedicated::DedicationVerdict;
use crate::domains::DomainClass;
use crate::observations::DomainObservations;
use haystack_dns::DomainName;
use haystack_testbed::catalog::{Catalog, DetectionLevel};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// One monitorable domain inside a rule.
#[derive(Debug, Clone)]
pub struct RuleDomain {
    /// The domain.
    pub name: DomainName,
    /// Server ports the devices use toward it.
    pub ports: BTreeSet<u16>,
    /// Whole-window union of its dedicated service IPs (daily hitlists
    /// re-derive the per-day subset from passive DNS).
    pub ips: BTreeSet<Ipv4Addr>,
    /// §7.1: domain only speaks when the device is actively used.
    pub usage_indicator: bool,
}

/// A detection rule for one class.
#[derive(Debug, Clone)]
pub struct DetectionRule {
    /// Class name (Figure 10 row).
    pub class: &'static str,
    /// Granularity.
    pub level: DetectionLevel,
    /// Hierarchy parent class, if any.
    pub parent: Option<&'static str>,
    /// Monitorable domains.
    pub domains: Vec<RuleDomain>,
}

impl DetectionRule {
    /// §4.3.2's evidence requirement: `max(1, ⌊D·N⌋)` distinct domains.
    pub fn required(&self, threshold: f64) -> usize {
        let n = self.domains.len();
        ((threshold * n as f64).floor() as usize).max(1)
    }
}

/// Why a class ended up without a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Undetectable {
    /// All primary domains rely on shared infrastructure (§4.2.3).
    SharedInfrastructure,
    /// Not enough usable information (no DNSDB record, no Censys match,
    /// or the ground truth never saw a primary domain).
    InsufficientInfo,
}

/// The full rule set plus the §4.2.3 casualty list.
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    /// Generated rules, indexed by position (the detector's rule ids).
    pub rules: Vec<DetectionRule>,
    /// Classes for which no rule could be generated.
    pub undetectable: Vec<(&'static str, Undetectable)>,
}

impl RuleSet {
    /// Index of a class's rule.
    pub fn rule_index(&self, class: &str) -> Option<usize> {
        self.rules.iter().position(|r| r.class == class)
    }

    /// The rule for a class.
    pub fn rule(&self, class: &str) -> Option<&DetectionRule> {
        self.rules.iter().find(|r| r.class == class)
    }

    /// Rules by level, for the §4.3.2 counts (platforms / manufacturers /
    /// products).
    pub fn count_by_level(&self, level: DetectionLevel) -> usize {
        self.rules.iter().filter(|r| r.level == level).count()
    }
}

/// The most specific class (by ancestry depth) that is an ancestor of —
/// or equal to — every contacting class. `None` if the classes span
/// unrelated families. (Also used by the §7.4 DNS-assisted variant,
/// which assigns domains to classes the same way but skips the
/// dedicated-infrastructure filter.)
pub fn common_ancestor(catalog: &Catalog, classes: &BTreeSet<&'static str>) -> Option<&'static str> {
    let mut iter = classes.iter();
    let first = iter.next()?;
    // Ancestor chain of the first class, most specific first.
    let mut chain: Vec<&'static str> = catalog.ancestry(first).iter().map(|c| c.name).collect();
    for c in iter {
        let ancestors: BTreeSet<&'static str> =
            catalog.ancestry(c).iter().map(|k| k.name).collect();
        chain.retain(|a| ancestors.contains(a));
        if chain.is_empty() {
            return None;
        }
    }
    chain.first().copied()
}

/// Inputs to rule generation, as produced by the earlier pipeline stages.
pub struct RuleInputs<'a> {
    /// The analyst's device knowledge (classes, levels, hierarchy).
    pub catalog: &'a Catalog,
    /// Ground-truth domain usage.
    pub observations: &'a DomainObservations,
    /// §4.1 classification per observed domain.
    pub classification: &'a HashMap<DomainName, DomainClass>,
    /// §4.2 verdict per IoT-specific domain (Censys recoveries already
    /// folded in as `Dedicated`).
    pub dedication: &'a HashMap<DomainName, DedicationVerdict>,
}

/// Minimum fraction of a class's observed primary domains that must be
/// monitorable for a rule to be emitted. The paper dropped LG TV after
/// being "left with only one out of 4 domains" while keeping genuinely
/// single-domain services; a one-third floor reproduces both decisions.
pub const MIN_USABLE_FRACTION: f64 = 0.30;

#[derive(Default)]
struct ClassTally {
    domains: Vec<RuleDomain>,
    primary_observed: usize,
    shared: usize,
}

/// Generate the rule set.
pub fn generate(inputs: &RuleInputs<'_>) -> RuleSet {
    let mut per_class: BTreeMap<&'static str, ClassTally> = BTreeMap::new();

    for (name, usage) in inputs.observations.domains() {
        if inputs.classification.get(name) != Some(&DomainClass::Primary) {
            continue;
        }
        let Some(owner) = common_ancestor(inputs.catalog, &usage.classes) else {
            continue; // spans unrelated families: not attributable
        };
        let tally = per_class.entry(owner).or_default();
        tally.primary_observed += 1;
        match inputs.dedication.get(name) {
            Some(DedicationVerdict::Dedicated(ips)) => tally.domains.push(RuleDomain {
                name: name.clone(),
                ports: usage.ports.clone(),
                ips: ips.clone(),
                usage_indicator: usage.is_usage_indicator(),
            }),
            Some(DedicationVerdict::Shared) => tally.shared += 1,
            _ => {} // NoRecord / never analyzed
        }
    }

    let mut rules = Vec::new();
    let mut undetectable = Vec::new();
    for class in &inputs.catalog.classes {
        let tally = per_class.remove(class.name).unwrap_or_default();
        let usable = tally.domains.len();
        let enough = usable > 0
            && usable as f64 >= MIN_USABLE_FRACTION * tally.primary_observed as f64;
        if enough {
            let mut domains = tally.domains;
            domains.sort_by(|a, b| a.name.cmp(&b.name));
            rules.push(DetectionRule {
                class: class.name,
                level: class.level,
                parent: class.parent,
                domains,
            });
        } else {
            // §4.2.3: services whose backends are overwhelmingly shared
            // vs. services we simply lack usable information for.
            let reason = if usable == 0
                && tally.primary_observed > 0
                && tally.shared as f64 >= (2.0 / 3.0) * tally.primary_observed as f64
            {
                Undetectable::SharedInfrastructure
            } else {
                Undetectable::InsufficientInfo
            };
            undetectable.push((class.name, reason));
        }
    }
    RuleSet { rules, undetectable }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_testbed::catalog::data::standard_catalog;

    #[test]
    fn common_ancestor_walks_hierarchies() {
        let c = standard_catalog();
        let set = |v: &[&'static str]| v.iter().copied().collect::<BTreeSet<_>>();
        assert_eq!(
            common_ancestor(&c, &set(&["Amazon Product", "Fire TV"])),
            Some("Amazon Product")
        );
        assert_eq!(
            common_ancestor(&c, &set(&["Alexa Enabled", "Amazon Product", "Fire TV"])),
            Some("Alexa Enabled")
        );
        assert_eq!(common_ancestor(&c, &set(&["Fire TV"])), Some("Fire TV"));
        assert_eq!(common_ancestor(&c, &set(&["Fire TV", "Yi Camera"])), None);
        assert_eq!(
            common_ancestor(&c, &set(&["Samsung TV", "Samsung IoT"])),
            Some("Samsung IoT")
        );
    }

    #[test]
    fn required_matches_paper_formula() {
        let rule = DetectionRule {
            class: "X",
            level: DetectionLevel::Manufacturer,
            parent: None,
            domains: (0..10)
                .map(|i| RuleDomain {
                    name: DomainName::parse(&format!("d{i}.x.com")).unwrap(),
                    ports: [443].into_iter().collect(),
                    ips: Default::default(),
                    usage_indicator: false,
                })
                .collect(),
        };
        assert_eq!(rule.required(0.4), 4);
        assert_eq!(rule.required(0.05), 1, "max(1, ·) floor");
        assert_eq!(rule.required(1.0), 10);
        let single = DetectionRule { domains: rule.domains[..1].to_vec(), ..rule.clone() };
        assert_eq!(single.required(0.1), 1);
        assert_eq!(single.required(1.0), 1);
    }
}
