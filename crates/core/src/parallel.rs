//! Sharded, multi-core detection on a persistent, *supervised* worker
//! pool.
//!
//! Per-line evidence is embarrassingly parallel: no record of line A ever
//! touches line B's state. [`DetectorPool`] exploits that — each worker
//! thread owns an independent [`Detector`] for the lines hashing to its
//! shard, and lives for the pool's whole lifetime. Records flow to
//! workers through bounded channels in recycled chunk-sized buffers, so
//! a steady-state hour costs **zero** allocations on the feed path and
//! peak resident memory is set by channel capacity, never by hour size.
//! This is the "minutes for millions of devices" configuration (§1); the
//! `parallel_detector` and `streaming_throughput` benches quantify it.
//!
//! Semantics are *identical* to a single [`Detector`] fed the same
//! records — the equivalence and determinism tests at the bottom of this
//! module pin it. Each line's records traverse exactly one FIFO channel
//! in feed order, and the detector's evidence fold is commutative across
//! lines, so any worker count produces the same detections.
//!
//! **Crash safety** (DESIGN.md §12): worker loops run under
//! `catch_unwind`. A shard that panics surfaces as a typed [`PoolError`]
//! carrying the shard id and the captured panic payload — never a
//! process abort. With [`DetectorPool::enable_supervision`] the pool
//! goes further: each shard keeps a last-checkpoint
//! [`DetectorState`] plus a bounded replay buffer of the records fed
//! since, and a dead shard is respawned, restored, and replayed
//! transparently. Replay is exact, not merely idempotent — the
//! checkpoint covers everything before the watermark and the buffer
//! everything after — so a recovered run's detections are byte-identical
//! to an uninterrupted one (`supervised_recovery_*` tests).
//!
//! [`ShardedDetector`] remains as the legacy batch façade: one call
//! observes a batch and blocks until it is fully absorbed.

use crate::checkpoint::{DetectorDelta, DetectorSnapshot, DetectorState};
use crate::detector::{DetectionQuery, Detector, DetectorConfig};
use crate::hitlist::HitList;
use crate::rules::RuleSet;
use crate::telemetry::{self, Counter, Gauge, Histogram, HotStats, HotStatsCounters, Scope};
use haystack_net::{AnonId, HourBin};
use haystack_wild::{RecordChunk, RecordStream, WildRecord};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError,
    TrySendError,
};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Records per worker-bound buffer (the pool's internal chunk size).
pub const POOL_BATCH_RECORDS: usize = 1_024;

/// Bounded command-channel depth per worker, in batches. This is the
/// backpressure knob: a feeder outrunning the workers blocks after
/// `workers × POOL_CHANNEL_BATCHES` in-flight buffers.
pub const POOL_CHANNEL_BATCHES: usize = 4;

/// Default per-shard replay-buffer bound, in records: once a shard's
/// buffer reaches this, the pool checkpoints the shard and drains it.
pub const DEFAULT_REPLAY_LIMIT: usize = 262_144;

/// A detector shard died. Carries the shard id and the panic payload
/// captured by the worker's `catch_unwind`, when one was recovered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolError {
    /// Which shard died.
    pub shard: usize,
    /// The panic payload (if the worker panicked with a string and the
    /// note survived), e.g. the message passed to
    /// [`DetectorPool::inject_panic`].
    pub panic: Option<String>,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.panic {
            Some(msg) => write!(f, "detector shard {} died: {msg}", self.shard),
            None => write!(f, "detector shard {} died", self.shard),
        }
    }
}

impl std::error::Error for PoolError {}

/// One shard's answer to a liveness probe ([`DetectorPool::shard_health`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardHealth {
    /// The shard answered a barrier within the probe timeout.
    Responsive,
    /// The shard's thread is alive (channel connected) but did not
    /// answer in time — wedged or hopelessly behind. Escalate with
    /// [`DetectorPool::force_respawn`].
    Stalled,
    /// The shard's thread has exited; its channel is disconnected. The
    /// next pool operation heals it via the normal respawn path.
    Dead,
}

impl ShardHealth {
    /// Stable lowercase label for telemetry and status endpoints.
    pub fn label(&self) -> &'static str {
        match self {
            ShardHealth::Responsive => "responsive",
            ShardHealth::Stalled => "stalled",
            ShardHealth::Dead => "dead",
        }
    }
}

/// Default bound on records queued for a degraded shard (crash-loop
/// breaker open) before further records are shed with exact accounting.
pub const DEFAULT_DEGRADED_QUEUE_LIMIT: usize = 65_536;

/// Exponential-backoff and circuit-breaker policy for shard respawns,
/// shared by the in-process [`DetectorPool`] supervisor and the
/// process-isolated [`crate::procpool::ProcPool`].
///
/// A shard that dies deterministically (a poison record, a corrupt
/// state) would otherwise respawn in a tight loop, burning a core and
/// flooding the log. Instead, deaths closer together than
/// `fast_window` build a *streak*: each respawn in a streak waits
/// `base · 2^(streak−1)` (capped at `cap`), and the `trip_after`-th
/// fast death opens the breaker — the shard is marked degraded and no
/// longer respawned until an operator resets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespawnPolicy {
    /// Backoff before the first respawn in a streak.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
    /// Deaths farther apart than this reset the streak: a shard that
    /// ran usefully between deaths is not crash-looping.
    pub fast_window: Duration,
    /// Consecutive fast deaths that open the breaker.
    pub trip_after: u32,
}

impl Default for RespawnPolicy {
    fn default() -> Self {
        RespawnPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            fast_window: Duration::from_secs(1),
            trip_after: 5,
        }
    }
}

impl RespawnPolicy {
    /// The backoff delay before the `streak`-th consecutive fast
    /// respawn (1-based): `base · 2^(streak−1)`, capped at `cap`.
    pub fn delay(&self, streak: u32) -> Duration {
        let shift = streak.saturating_sub(1).min(16);
        self.base.saturating_mul(1u32 << shift).min(self.cap)
    }
}

/// What a supervisor should do about a shard death, per
/// [`BackoffState::on_death`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RespawnDecision {
    /// Respawn after sleeping this backoff delay.
    Backoff(Duration),
    /// The breaker tripped: stop respawning, mark the shard degraded.
    Trip,
}

/// Per-shard crash-loop tracking (see [`RespawnPolicy`]).
#[derive(Debug, Clone, Default)]
pub struct BackoffState {
    streak: u32,
    last_death: Option<Instant>,
    tripped: bool,
}

impl BackoffState {
    /// Record a death at `now` and decide: back off, or trip.
    pub fn on_death(&mut self, policy: &RespawnPolicy, now: Instant) -> RespawnDecision {
        if let Some(last) = self.last_death {
            if now.duration_since(last) > policy.fast_window {
                self.streak = 0;
            }
        }
        self.last_death = Some(now);
        self.streak += 1;
        if self.streak >= policy.trip_after {
            self.tripped = true;
            return RespawnDecision::Trip;
        }
        RespawnDecision::Backoff(policy.delay(self.streak))
    }

    /// Whether the breaker is open (the shard is degraded).
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Current consecutive-fast-death streak.
    pub fn streak(&self) -> u32 {
        self.streak
    }

    /// Close the breaker and forget the streak (operator reset).
    pub fn reset(&mut self) {
        *self = BackoffState::default();
    }

    /// Supervision status at `now`: degraded while tripped, respawning
    /// while a death streak is still inside the fast window, ok
    /// otherwise.
    pub fn status_at(&self, policy: &RespawnPolicy, now: Instant) -> ShardStatus {
        if self.tripped {
            return ShardStatus::Degraded;
        }
        match self.last_death {
            Some(t) if now.duration_since(t) <= policy.fast_window => ShardStatus::Respawning,
            _ => ShardStatus::Ok,
        }
    }
}

/// A shard's supervision status, surfaced by `/readyz`, `/stats`, and
/// [`ShardBackend::shard_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardStatus {
    /// Healthy: no recent deaths.
    Ok,
    /// Died recently and was respawned; its crash-loop streak is live.
    Respawning,
    /// The crash-loop circuit breaker is open: the shard is no longer
    /// respawned; its records queue up to a bound, then shed.
    Degraded,
}

impl ShardStatus {
    /// Stable lowercase label for the query plane and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            ShardStatus::Ok => "ok",
            ShardStatus::Respawning => "respawning",
            ShardStatus::Degraded => "degraded",
        }
    }
}

/// One shard's status row: supervision status plus the degraded-queue
/// accounting (`queued`/`shed` are nonzero only after its breaker
/// tripped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatusReport {
    /// Supervision status.
    pub status: ShardStatus,
    /// Records queued for a degraded shard, awaiting an operator reset.
    pub queued: u64,
    /// Records shed after the degraded queue filled.
    pub shed: u64,
}

/// Route an anonymized line id to a shard.
///
/// Sequential or low-entropy ids stripe pathologically under a raw
/// `id % n` for some worker counts, so the id is first run through the
/// splitmix64 finalizer — every input bit diffuses into the shard
/// choice. The `shards_stay_balanced` test pins the distribution.
pub(crate) fn shard_of(line: AnonId, n: usize) -> usize {
    let mut z = line.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % n as u64) as usize
}

/// Per-shard telemetry handles, shipped to the worker thread when the
/// pool is instrumented.
#[derive(Debug, Clone)]
struct ShardTelemetry {
    /// Batches sent but not yet processed by this shard (shared with the
    /// feeder, which increments on send).
    queue_depth: Gauge,
    /// The shard detector's hot-path tallies, flushed per batch.
    hot: HotStatsCounters,
    /// Per-batch observe time, microseconds.
    batch_span_us: Histogram,
}

/// Commands a worker thread understands. Batches and queries share one
/// FIFO channel, so a query observes every batch sent before it.
enum Cmd {
    /// Observe a buffer of records. Batches travel as `Arc`s so the
    /// supervisor can retain one for replay with a refcount bump instead
    /// of copying records; when the worker holds the last reference
    /// (unsupervised, or post-checkpoint), the buffer is recovered,
    /// cleared, and recycled back to the feeder.
    Batch(Arc<Vec<WildRecord>>),
    /// Install telemetry handles on this shard.
    Telemetry(ShardTelemetry),
    /// Swap the daily hitlist, keeping accumulated evidence.
    SetHitlist(HitList),
    /// Swap the rule set itself (live reload): rebuild the shard's
    /// detector against the new rules and hitlist, restoring the
    /// already-migrated evidence state shipped with the command.
    SetRules(Arc<RuleSet>, HitList, DetectorState),
    /// Clear accumulated evidence.
    Reset,
    /// Reply when every prior command is processed.
    Barrier(Sender<()>),
    /// Export this shard's evidence state (processed in FIFO order, so
    /// the snapshot covers every batch sent before it).
    Snapshot(Sender<DetectorState>),
    /// Export a dirty-only snapshot of the evidence mutated since the
    /// shard's last delta/full checkpoint (full when no clean base
    /// exists). Unlike `Snapshot`, this clears the shard's dirty set.
    SnapshotDelta(Sender<DetectorSnapshot>),
    /// Replace this shard's evidence state with a checkpoint.
    Restore(DetectorState),
    /// Deterministic crash injection: panic when this command is
    /// processed (i.e. after every batch sent before it).
    PanicNow(String),
    /// Deterministic stall injection: sleep when this command is
    /// processed. Unlike a panic the thread stays alive, so the channel
    /// never disconnects — exactly the failure a liveness probe (not a
    /// join) has to catch.
    StallFor(Duration),
    /// All detected lines for a class on this shard.
    DetectedLines(String, Sender<Vec<AnonId>>),
    /// Whether the class is detected for a line owned by this shard.
    IsDetected(AnonId, String, Sender<bool>),
    /// Graded confidence for (line, class) on the owning shard.
    Confidence(AnonId, String, Sender<f64>),
    /// First hour the gated detection held, on the owning shard.
    FirstDetection(AnonId, String, Sender<Option<HourBin>>),
    /// (line, rule) states held by this shard.
    StateSize(Sender<usize>),
}

struct Worker {
    tx: SyncSender<Cmd>,
    /// Cleared buffers coming back from the worker.
    recycle: Receiver<Vec<WildRecord>>,
    /// The panic payload, written by the worker thread when its loop
    /// unwinds; read by the feeder after joining a dead shard.
    panic_note: Arc<Mutex<Option<String>>>,
    handle: Option<JoinHandle<()>>,
}

/// Why one [`run_shard`] generation returned.
enum LoopExit {
    /// Command channel closed: the pool is shutting down.
    Done,
    /// A [`Cmd::SetRules`] arrived: the caller rebuilds the detector
    /// against the new rule set and re-enters the loop.
    Swap(Arc<RuleSet>, HitList, DetectorState),
}

/// The worker loop body; runs under `catch_unwind` so a panic is
/// captured as a note instead of aborting the process. The loop is
/// generationed around rule swaps: [`Detector`] borrows its rule set,
/// so each rule-set generation gets its own inner run, and a
/// [`Cmd::SetRules`] unwinds to this frame where the `Arc` can be
/// rebound before the next generation starts.
fn worker_loop(
    rules: Arc<RuleSet>,
    hitlist: HitList,
    config: DetectorConfig,
    rx: &Receiver<Cmd>,
    recycle_tx: &Sender<Vec<WildRecord>>,
) {
    let mut tel: Option<ShardTelemetry> = None;
    let mut cur = (rules, hitlist, None);
    loop {
        let (rules, hitlist, restore) = cur;
        match run_shard(&rules, hitlist, config, restore, rx, recycle_tx, &mut tel) {
            LoopExit::Done => return,
            LoopExit::Swap(r, h, s) => cur = (r, h, Some(s)),
        }
    }
}

/// One rule-set generation of a shard worker: build the detector,
/// restore migrated state if a swap shipped one, then serve commands
/// until shutdown or the next swap.
#[allow(clippy::too_many_arguments)]
fn run_shard(
    rules: &RuleSet,
    hitlist: HitList,
    config: DetectorConfig,
    restore: Option<DetectorState>,
    rx: &Receiver<Cmd>,
    recycle_tx: &Sender<Vec<WildRecord>>,
    tel: &mut Option<ShardTelemetry>,
) -> LoopExit {
    let mut det = Detector::new(rules, hitlist, config);
    if let Some(state) = restore {
        det.restore_state(&state).expect("migrated state matches the new rule set");
    }
    // A fresh detector's tallies start at zero; the previous
    // generation's were flushed before the swap returned.
    let mut flushed = HotStats::default();
    // Fold the detector's tallies accrued since the last flush into the
    // shard's atomic counters — one set of adds per batch, not per
    // record.
    let flush_stats =
        |det: &Detector<'_>, tel: &Option<ShardTelemetry>, flushed: &mut HotStats| {
            if let Some(t) = tel {
                let now = det.hot_stats();
                t.hot.flush(now.since(flushed));
                *flushed = now;
            }
        };
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Batch(buf) => {
                let span = tel.as_ref().map(|t| t.batch_span_us.start_span());
                det.observe_chunk(&buf);
                drop(span);
                if let Some(t) = &tel {
                    t.queue_depth.dec();
                }
                flush_stats(&det, tel, &mut flushed);
                // Recycle only when this was the last reference — a
                // replay-retained batch stays with the supervisor.
                if let Ok(mut v) = Arc::try_unwrap(buf) {
                    v.clear();
                    // Feeder may be gone during teardown.
                    let _ = recycle_tx.send(v);
                }
            }
            Cmd::Telemetry(t) => {
                *tel = Some(t);
                flush_stats(&det, tel, &mut flushed);
            }
            Cmd::SetHitlist(hl) => det.set_hitlist(hl),
            Cmd::SetRules(r, h, s) => {
                flush_stats(&det, tel, &mut flushed);
                return LoopExit::Swap(r, h, s);
            }
            Cmd::Reset => det.reset(),
            Cmd::Barrier(reply) => {
                // Counters are exact at every barrier: `finish()` syncs
                // them for snapshots.
                flush_stats(&det, tel, &mut flushed);
                let _ = reply.send(());
            }
            Cmd::Snapshot(reply) => {
                flush_stats(&det, tel, &mut flushed);
                let _ = reply.send(det.export_state());
            }
            Cmd::SnapshotDelta(reply) => {
                flush_stats(&det, tel, &mut flushed);
                let _ = reply.send(det.take_snapshot_delta());
            }
            Cmd::Restore(state) => {
                det.restore_state(&state).expect("checkpoint matches this rule set");
            }
            Cmd::PanicNow(msg) => panic!("{msg}"),
            Cmd::StallFor(d) => std::thread::sleep(d),
            Cmd::DetectedLines(class, reply) => {
                let _ = reply.send(det.detected_lines(&class));
            }
            Cmd::IsDetected(line, class, reply) => {
                let _ = reply.send(det.is_detected(line, &class));
            }
            Cmd::Confidence(line, class, reply) => {
                let _ = reply.send(det.confidence(line, &class));
            }
            Cmd::FirstDetection(line, class, reply) => {
                let _ = reply.send(det.first_detection(line, &class));
            }
            Cmd::StateSize(reply) => {
                let _ = reply.send(det.state_size());
            }
        }
    }
    LoopExit::Done
}

/// Render a panic payload as a message, when it was a string.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Spawn one shard worker thread.
fn spawn_worker(
    index: usize,
    rules: Arc<RuleSet>,
    hitlist: HitList,
    config: DetectorConfig,
    channel_batches: usize,
) -> Worker {
    let (tx, rx) = sync_channel::<Cmd>(channel_batches.max(1));
    let (recycle_tx, recycle) = channel::<Vec<WildRecord>>();
    let panic_note = Arc::new(Mutex::new(None));
    let note = Arc::clone(&panic_note);
    let handle = std::thread::Builder::new()
        .name(format!("detector-shard-{index}"))
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(|| {
                worker_loop(rules, hitlist, config, &rx, &recycle_tx);
            }));
            if let Err(payload) = result {
                if let Ok(mut n) = note.lock() {
                    *n = Some(panic_message(payload));
                }
            }
        })
        .expect("spawn detector shard");
    Worker { tx, recycle, panic_note, handle: Some(handle) }
}

/// Supervision state: per-shard checkpoints, replay buffers, and the
/// recovery telemetry published under the global `checkpoint` scope.
struct Supervisor {
    /// Last *folded* evidence state, per shard: the base that
    /// `pending` deltas have not yet been applied to.
    shard_state: Vec<DetectorState>,
    /// Delta frames accepted by [`DetectorPool::checkpoint_all_delta`]
    /// but not yet folded into `shard_state`. Applying a delta is
    /// thousands of map upserts; deferring it keeps the hour-boundary
    /// consistency point at clone cost. Folding happens only when the
    /// base is actually read (dead-shard recovery, full-anchor export),
    /// and every full snapshot — explicit or replay-bound automatic —
    /// subsumes and clears the queue, so it stays bounded.
    pending: Vec<Vec<DetectorDelta>>,
    /// Batches *shipped* to each shard since its last checkpoint,
    /// retained as `Arc` refcount clones at ship time — no record is
    /// ever copied for replay coverage. Staged-but-unshipped records
    /// are still in the feeder's own buffers and need none.
    replay: Vec<Vec<Arc<Vec<WildRecord>>>>,
    /// Records covered by `replay`, per shard (cached sum of batch
    /// lengths, so the bound check is O(1) per feed call).
    replay_records: Vec<usize>,
    /// Per-shard replay bound; reaching it triggers an auto-checkpoint.
    replay_limit: usize,
    /// Shards respawned after a crash.
    restarts: Counter,
    /// Records replayed into respawned shards (this is how far the
    /// per-shard `records_observed` counters can run ahead of
    /// `records_in` after recoveries).
    replayed_records: Counter,
    /// Per-shard checkpoints taken (explicit and automatic).
    shard_checkpoints: Counter,
    /// Backoff sleeps taken before respawns (the respawn-storm brake).
    respawn_backoff: Counter,
    /// Crash-loop circuit-breaker trips (shards marked degraded).
    breaker_trips: Counter,
    /// Records queued for degraded shards.
    degraded_queued: Counter,
    /// Records shed after a degraded shard's queue filled.
    degraded_shed: Counter,
}

impl fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Supervisor")
            .field("replay_limit", &self.replay_limit)
            .field("buffered", &self.replay_records.iter().sum::<usize>())
            .finish_non_exhaustive()
    }
}

impl Supervisor {
    fn new(shards: usize, nrules: usize, replay_limit: usize) -> Supervisor {
        let scope = Scope::named("checkpoint");
        Supervisor {
            shard_state: (0..shards).map(|_| empty_state(nrules)).collect(),
            pending: (0..shards).map(|_| Vec::new()).collect(),
            replay: (0..shards).map(|_| Vec::new()).collect(),
            replay_records: vec![0; shards],
            replay_limit: replay_limit.max(1),
            restarts: scope.counter("shard_restarts"),
            replayed_records: scope.counter("replayed_records"),
            shard_checkpoints: scope.counter("shard_checkpoints"),
            respawn_backoff: scope.counter("respawn_backoff"),
            breaker_trips: scope.counter("breaker_trips"),
            degraded_queued: scope.counter("degraded_queued_records"),
            degraded_shed: scope.counter("degraded_shed_records"),
        }
    }

    /// Apply the shard's queued delta frames to its base state, in
    /// arrival order (later absolute values win).
    fn fold_pending(&mut self, shard: usize) {
        for delta in self.pending[shard].drain(..) {
            delta
                .apply(&mut self.shard_state[shard])
                .expect("pending delta matches its base rule count");
        }
    }
}

fn empty_state(nrules: usize) -> DetectorState {
    DetectorState { rules: vec![Vec::new(); nrules] }
}

/// Drain a shard's replay retention into the feeder's spare list. By
/// the time a replay buffer drains (a checkpoint snapshot replied, so
/// the worker has long since processed every retained batch), the
/// supervisor holds the last reference — recover the allocation for
/// reuse instead of dropping it. The spare list needs no cap: it only
/// ever holds buffers the replay retention held a moment earlier, so
/// the pool's peak resident memory is unchanged.
fn reclaim_replay(replay: &mut Vec<Arc<Vec<WildRecord>>>, spare: &mut Vec<Vec<WildRecord>>) {
    for batch in replay.drain(..) {
        if let Ok(mut v) = Arc::try_unwrap(batch) {
            v.clear();
            spare.push(v);
        }
    }
}

/// A persistent pool of shard-owning detector workers.
///
/// Feed it records with [`DetectorPool::observe_records`] (or whole
/// streams with [`DetectorPool::observe_stream`]); call
/// [`DetectorPool::finish`] to barrier, then query. Queries flush the
/// staging buffers themselves, so forgetting an explicit flush can never
/// lose records.
///
/// Every method that talks to a worker returns `Err(`[`PoolError`]`)`
/// when the shard died (instead of aborting the process). With
/// [`DetectorPool::enable_supervision`], a dead shard is restored from
/// its last checkpoint and its replay buffer transparently, and the
/// operation is retried once before an error is surfaced.
#[derive(Debug)]
pub struct DetectorPool {
    /// Construction parameters, retained so a dead shard can be
    /// respawned identically.
    rules: Arc<RuleSet>,
    hitlist: HitList,
    config: DetectorConfig,
    channel_batches: usize,
    workers: Vec<Worker>,
    /// Per-shard partial buffers, reused across calls (the allocation
    /// churn fix: nothing here is rebuilt per batch).
    staging: Vec<Vec<WildRecord>>,
    /// Buffers reclaimed from drained replay retention (supervised
    /// pools only — the worker can't recycle a batch the supervisor
    /// still holds, so the feeder recovers it at checkpoint time).
    spare: Vec<Vec<WildRecord>>,
    batch_records: usize,
    /// Chunk buffers ever allocated — the pool's peak resident buffer
    /// count, since buffers recycle instead of dropping.
    buffers_created: usize,
    /// Feeder-side telemetry, present only after
    /// [`DetectorPool::attach_telemetry`] on an enabled registry.
    telemetry: Option<FeederTelemetry>,
    /// The telemetry scope, kept so a respawned shard's handles can be
    /// rebuilt against the same registry entries.
    scope: Option<Scope>,
    supervisor: Option<Supervisor>,
    /// Respawn backoff / circuit-breaker policy (supervised pools).
    policy: RespawnPolicy,
    /// Per-shard crash-loop tracking.
    backoff: Vec<BackoffState>,
    /// Records accepted for a degraded shard (breaker open), held until
    /// an operator [`DetectorPool::reset_breaker`] replays them.
    degraded_queue: Vec<Vec<WildRecord>>,
    /// Records shed per shard after its degraded queue filled.
    shed_records: Vec<u64>,
    /// Bound on each shard's degraded queue, in records.
    queue_limit: usize,
}

/// Feeder-side telemetry handles for an instrumented pool.
#[derive(Debug)]
struct FeederTelemetry {
    /// Records accepted by `observe_records`.
    records_in: Counter,
    /// Full or partial buffers shipped to workers.
    batches_shipped: Counter,
    /// Ships that found the shard's channel full and had to block — the
    /// backpressure signal.
    backpressure_stalls: Counter,
    /// Fresh buffer allocations (nothing came back on the recycle lane).
    buffers_created: Counter,
    /// Ships served by a recycled buffer.
    buffers_recycled: Counter,
    /// Staged records discarded by `reset` (they belong to the window
    /// being cleared). Keeps the conservation invariant exact:
    /// `records_in == Σ shard records_observed + records_discarded`.
    records_discarded: Counter,
    /// Per-shard in-flight batch gauges (shared with the workers, which
    /// decrement after processing).
    queue_depth: Vec<Gauge>,
}

impl fmt::Debug for Worker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker").finish_non_exhaustive()
    }
}

impl DetectorPool {
    /// Spawn `workers` shard threads sharing one rule set and hitlist.
    pub fn new(rules: &RuleSet, hitlist: &HitList, config: DetectorConfig, workers: usize) -> Self {
        Self::with_tuning(rules, hitlist, config, workers, POOL_BATCH_RECORDS, POOL_CHANNEL_BATCHES)
    }

    /// [`DetectorPool::new`] with explicit buffer size and channel depth
    /// (benches sweep these).
    pub fn with_tuning(
        rules: &RuleSet,
        hitlist: &HitList,
        config: DetectorConfig,
        workers: usize,
        batch_records: usize,
        channel_batches: usize,
    ) -> Self {
        assert!(workers >= 1, "need at least one shard");
        let batch_records = batch_records.max(1);
        let rules = Arc::new(rules.clone());
        let workers = (0..workers)
            .map(|i| {
                spawn_worker(i, Arc::clone(&rules), hitlist.clone(), config, channel_batches)
            })
            .collect::<Vec<_>>();
        let n = workers.len();
        DetectorPool {
            rules,
            hitlist: hitlist.clone(),
            config,
            channel_batches,
            workers,
            staging: (0..n).map(|_| Vec::with_capacity(batch_records)).collect(),
            spare: Vec::new(),
            batch_records,
            buffers_created: n,
            telemetry: None,
            scope: None,
            supervisor: None,
            policy: RespawnPolicy::default(),
            backoff: vec![BackoffState::default(); n],
            degraded_queue: (0..n).map(|_| Vec::new()).collect(),
            shed_records: vec![0; n],
            queue_limit: DEFAULT_DEGRADED_QUEUE_LIMIT,
        }
    }

    /// Replace the respawn backoff / circuit-breaker policy (tests and
    /// tuning; the default is [`RespawnPolicy::default`]).
    pub fn set_respawn_policy(&mut self, policy: RespawnPolicy) {
        self.policy = policy;
    }

    /// Per-shard supervision status plus degraded-queue accounting.
    pub fn shard_status(&self) -> Vec<ShardStatusReport> {
        let now = Instant::now();
        (0..self.workers.len())
            .map(|s| ShardStatusReport {
                status: self.backoff[s].status_at(&self.policy, now),
                queued: self.degraded_queue[s].len() as u64,
                shed: self.shed_records[s],
            })
            .collect()
    }

    /// Turn on supervised recovery: checkpoint every shard now, then
    /// keep a bounded replay buffer (at most `replay_limit` records per
    /// shard — reaching the bound auto-checkpoints the shard). From this
    /// point a shard panic is healed transparently: the shard is
    /// respawned, restored from its last checkpoint, and replayed, and
    /// the interrupted operation retried.
    pub fn enable_supervision(&mut self, replay_limit: usize) -> Result<(), PoolError> {
        let sup =
            Supervisor::new(self.workers.len(), self.rules.rules.len(), replay_limit);
        self.supervisor = Some(sup);
        // Capture whatever evidence the shards already hold, so a crash
        // right after enabling loses nothing.
        self.checkpoint_all()
    }

    /// Whether supervised recovery is enabled.
    pub fn supervised(&self) -> bool {
        self.supervisor.is_some()
    }

    /// Records currently held in replay buffers across all shards.
    pub fn replay_buffered(&self) -> usize {
        self.supervisor.as_ref().map_or(0, |s| s.replay_records.iter().sum())
    }

    /// Instrument the pool under `scope`: feeder counters (`records_in`,
    /// `batches_shipped`, `backpressure_stalls`, buffer churn) plus
    /// per-shard sub-scopes (`shard0.queue_depth`,
    /// `shard0.records_observed`, `shard0.batch_span_us`, …). A no-op
    /// while telemetry is disabled, leaving the feed path byte-for-byte
    /// as before.
    pub fn attach_telemetry(&mut self, scope: &Scope) -> Result<(), PoolError> {
        if !telemetry::enabled() {
            return Ok(());
        }
        let feeder = FeederTelemetry {
            records_in: scope.counter("records_in"),
            batches_shipped: scope.counter("batches_shipped"),
            backpressure_stalls: scope.counter("backpressure_stalls"),
            buffers_created: scope.counter("buffers_created"),
            buffers_recycled: scope.counter("buffers_recycled"),
            records_discarded: scope.counter("records_discarded"),
            queue_depth: (0..self.workers.len())
                .map(|i| scope.sub(&format!("shard{i}")).gauge("queue_depth"))
                .collect(),
        };
        // The per-worker startup buffers predate instrumentation.
        feeder.buffers_created.add(self.buffers_created as u64);
        scope.gauge("workers").set(self.workers.len() as u64);
        self.telemetry = Some(feeder);
        self.scope = Some(scope.clone());
        for shard in 0..self.workers.len() {
            let t = self.shard_telemetry(shard);
            self.with_shard(shard, |w| w.tx.send(Cmd::Telemetry(t.clone())).ok())?;
        }
        Ok(())
    }

    /// Build shard `i`'s telemetry handles against the pool's scope.
    /// Handles re-acquire existing registry entries, so a respawned
    /// shard continues the same counters.
    fn shard_telemetry(&self, shard: usize) -> ShardTelemetry {
        let scope = self.scope.as_ref().expect("scope set when telemetry attached");
        let feeder = self.telemetry.as_ref().expect("telemetry attached");
        let sub = scope.sub(&format!("shard{shard}"));
        ShardTelemetry {
            queue_depth: feeder.queue_depth[shard].clone(),
            hot: HotStatsCounters::new(&sub),
            batch_span_us: sub.histogram("batch_span_us"),
        }
    }

    /// Number of shard workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Chunk buffers ever allocated by the pool — its peak resident
    /// buffer count (buffers recycle through the workers, never drop).
    pub fn buffers_created(&self) -> usize {
        self.buffers_created
    }

    /// Join a dead shard's thread and build its typed error.
    fn shard_error(&mut self, shard: usize) -> PoolError {
        let w = &mut self.workers[shard];
        if let Some(handle) = w.handle.take() {
            let _ = handle.join();
        }
        let panic = w.panic_note.lock().map(|mut n| n.take()).unwrap_or(None);
        PoolError { shard, panic }
    }

    /// A shard's channel disconnected mid-operation. Unsupervised, this
    /// surfaces the typed error. Supervised, the shard is respawned,
    /// restored from its last checkpoint, and replayed — after which the
    /// caller retries the interrupted operation.
    fn handle_dead_shard(&mut self, shard: usize) -> Result<(), PoolError> {
        let err = self.shard_error(shard);
        if self.supervisor.is_none() {
            return Err(err);
        }
        self.respawn_and_replay(shard)
    }

    /// Replace `shard`'s worker with a fresh one restored from its last
    /// checkpoint and replayed. The old `Worker` (and its command
    /// channel) is dropped, not joined — callers decide whether joining
    /// is safe ([`DetectorPool::handle_dead_shard`] joins first because
    /// the thread provably exited; [`DetectorPool::force_respawn`] must
    /// not, because a stalled thread would block the join forever).
    fn respawn_and_replay(&mut self, shard: usize) -> Result<(), PoolError> {
        // Respawn-storm brake: a deterministically-dying shard backs
        // off exponentially and eventually trips the circuit breaker
        // instead of respawning in a tight loop.
        if self.backoff[shard].tripped() {
            return Err(PoolError {
                shard,
                panic: Some("crash-loop circuit breaker open".to_string()),
            });
        }
        match self.backoff[shard].on_death(&self.policy, Instant::now()) {
            RespawnDecision::Trip => {
                let sup = self.supervisor.as_ref().expect("supervised");
                sup.breaker_trips.inc();
                return Err(PoolError {
                    shard,
                    panic: Some(format!(
                        "crash-loop circuit breaker open after {} fast deaths",
                        self.policy.trip_after
                    )),
                });
            }
            RespawnDecision::Backoff(delay) => {
                let sup = self.supervisor.as_ref().expect("supervised");
                sup.respawn_backoff.inc();
                std::thread::sleep(delay);
            }
        }
        self.workers[shard] = spawn_worker(
            shard,
            Arc::clone(&self.rules),
            self.hitlist.clone(),
            self.config,
            self.channel_batches,
        );
        // Batches lost in the dead worker's channel were inc'd but never
        // dec'd; the respawned shard starts with an empty queue.
        if self.telemetry.is_some() {
            let t = self.shard_telemetry(shard);
            t.queue_depth.set(0);
            let _ = self.workers[shard].tx.send(Cmd::Telemetry(t));
        }
        let sup = self.supervisor.as_mut().expect("supervised");
        sup.restarts.inc();
        sup.fold_pending(shard);
        let state = sup.shard_state[shard].clone();
        // Staging is left alone: those records were never shipped, are
        // not in the replay buffer, and will ship to the respawned
        // worker in their normal turn.
        let replay = sup.replay[shard].clone();
        let replayed = sup.replay_records[shard] as u64;
        let w = &self.workers[shard];
        if w.tx.send(Cmd::Restore(state)).is_err() {
            return Err(self.shard_error(shard));
        }
        // Re-ship the retained batches as-is: each is already shard-
        // partitioned and batch-sized, so no re-chunking (and no copy —
        // `Cmd::Batch` carries a refcount clone).
        for batch in replay {
            if let Some(t) = &self.telemetry {
                t.queue_depth[shard].inc();
            }
            if self.workers[shard].tx.send(Cmd::Batch(batch)).is_err() {
                return Err(self.shard_error(shard));
            }
        }
        let sup = self.supervisor.as_mut().expect("supervised");
        sup.replayed_records.add(replayed);
        // The replay buffer stays: these records are still
        // since-checkpoint, and a second crash needs them again.
        Ok(())
    }

    /// Run `op` against a shard, healing (under supervision) and
    /// retrying once if the shard died mid-operation.
    fn with_shard<T>(
        &mut self,
        shard: usize,
        op: impl Fn(&Worker) -> Option<T>,
    ) -> Result<T, PoolError> {
        for _ in 0..2 {
            if let Some(v) = op(&self.workers[shard]) {
                return Ok(v);
            }
            self.handle_dead_shard(shard)?;
        }
        Err(PoolError { shard, panic: Some("shard died again during recovery".to_string()) })
    }

    /// Ship `shard`'s staging buffer to its worker (blocking if the
    /// channel is full — this is the backpressure point). Returns `true`
    /// on success, `false` when the shard is dead.
    fn try_ship(&mut self, shard: usize) -> bool {
        if self.staging[shard].is_empty() {
            return true;
        }
        let empty = match self.workers[shard].recycle.try_recv() {
            Ok(buf) => {
                if let Some(t) = &self.telemetry {
                    t.buffers_recycled.inc();
                }
                buf
            }
            Err(TryRecvError::Empty) => match self.spare.pop() {
                Some(buf) => {
                    if let Some(t) = &self.telemetry {
                        t.buffers_recycled.inc();
                    }
                    buf
                }
                None => {
                    self.buffers_created += 1;
                    if let Some(t) = &self.telemetry {
                        t.buffers_created.inc();
                    }
                    Vec::with_capacity(self.batch_records)
                }
            },
            Err(TryRecvError::Disconnected) => return false,
        };
        let full = Arc::new(std::mem::replace(&mut self.staging[shard], empty));
        // Retain the batch for replay *before* any send attempt: a
        // batch lost in a dead worker's channel (or dropped by a failed
        // send) is then always recoverable. This is a refcount bump,
        // not a copy — the records themselves are never duplicated.
        if let Some(sup) = &mut self.supervisor {
            sup.replay_records[shard] += full.len();
            sup.replay[shard].push(Arc::clone(&full));
        }
        let Some(t) = &self.telemetry else {
            return self.workers[shard].tx.send(Cmd::Batch(full)).is_ok();
        };
        // Inc the queue gauge *before* the send: the worker decs after
        // processing, and `Gauge::dec` saturates at zero — a dec racing
        // ahead of a post-send inc would strand the gauge at +1. A
        // failed send leaves a stale inc, but the shard is dead then and
        // recovery resets the gauge on respawn.
        t.queue_depth[shard].inc();
        // Distinguish a clean send from one that had to block: the
        // stall counter is the backpressure signal operators watch.
        match self.workers[shard].tx.try_send(Cmd::Batch(full)) {
            Ok(()) => {}
            Err(TrySendError::Full(cmd)) => {
                t.backpressure_stalls.inc();
                if self.workers[shard].tx.send(cmd).is_err() {
                    return false;
                }
            }
            Err(TrySendError::Disconnected(_)) => return false,
        }
        t.batches_shipped.inc();
        true
    }

    /// Move `shard`'s staged records to its degraded queue (bounded;
    /// overflow is shed with exact accounting). Only reached once the
    /// shard's crash-loop breaker is open.
    fn queue_degraded(&mut self, shard: usize) {
        if self.staging[shard].is_empty() {
            return;
        }
        let room = self.queue_limit.saturating_sub(self.degraded_queue[shard].len());
        let take = self.staging[shard].len().min(room);
        let staged = std::mem::take(&mut self.staging[shard]);
        let shed = (staged.len() - take) as u64;
        self.degraded_queue[shard].extend(staged.into_iter().take(take));
        self.shed_records[shard] += shed;
        if let Some(sup) = &self.supervisor {
            sup.degraded_queued.add(take as u64);
            sup.degraded_shed.add(shed);
        }
    }

    /// Ship with supervised retry. A failed ship may drop the staged
    /// buffer, but under supervision those records live in the replay
    /// buffer, which recovery re-feeds. Once the shard's crash-loop
    /// breaker is open, staged records divert to the bounded degraded
    /// queue instead — the rest of the pool keeps running.
    fn ship(&mut self, shard: usize) -> Result<(), PoolError> {
        if self.backoff[shard].tripped() {
            self.queue_degraded(shard);
            return Ok(());
        }
        for _ in 0..2 {
            if self.try_ship(shard) {
                return Ok(());
            }
            if let Err(e) = self.handle_dead_shard(shard) {
                // The heal tripped the breaker: records staged for this
                // shard divert to the degraded queue from here on. The
                // feed keeps flowing for the healthy shards.
                if self.backoff[shard].tripped() {
                    self.queue_degraded(shard);
                    return Ok(());
                }
                return Err(e);
            }
        }
        Err(PoolError { shard, panic: Some("shard died again during recovery".to_string()) })
    }

    /// Observe records: partitioned to shards, shipped as buffers fill.
    pub fn observe_records(&mut self, records: &[WildRecord]) -> Result<(), PoolError> {
        if let Some(t) = &self.telemetry {
            t.records_in.add(records.len() as u64);
        }
        let n = self.workers.len();
        for r in records {
            let shard = shard_of(r.line, n);
            self.staging[shard].push(*r);
            // A degraded shard's records divert to its bounded queue
            // eagerly (not at the batch threshold), so `/readyz` and
            // `/stats` see the queue depth grow as records arrive.
            if self.staging[shard].len() >= self.batch_records
                || self.backoff[shard].tripped()
            {
                self.ship(shard)?;
            }
        }
        // Bound the replay buffers: a shard at the limit is checkpointed
        // (which drains its buffer) before the next call.
        if let Some(sup) = &self.supervisor {
            let limit = sup.replay_limit;
            let over: Vec<usize> =
                (0..n).filter(|&s| sup.replay_records[s] >= limit).collect();
            for shard in over {
                self.checkpoint_shard(shard)?;
            }
        }
        Ok(())
    }

    /// Drain a whole [`RecordStream`] through the pool, reusing one
    /// chunk buffer. Returns `(records, sampled_packets, degradation)`
    /// funnel totals folded over every chunk.
    pub fn observe_stream(
        &mut self,
        stream: &mut dyn RecordStream,
        chunk: &mut RecordChunk,
    ) -> Result<(u64, u64, haystack_wild::FeedDegradation), PoolError> {
        let mut records = 0u64;
        let mut packets = 0u64;
        let mut degradation = haystack_wild::FeedDegradation::default();
        while stream.next_chunk(chunk) {
            records += chunk.records.len() as u64;
            packets += chunk.sampled_packets;
            degradation.absorb(chunk.degradation);
            self.observe_records(&chunk.records)?;
        }
        Ok((records, packets, degradation))
    }

    /// Push every partial staging buffer to its worker.
    pub fn flush(&mut self) -> Result<(), PoolError> {
        for shard in 0..self.workers.len() {
            self.ship(shard)?;
        }
        Ok(())
    }

    /// Flush, then block until every worker has processed everything
    /// sent so far. Per-shard barriers, so a dead shard is identified
    /// (and healed, under supervision) individually.
    pub fn finish(&mut self) -> Result<(), PoolError> {
        self.flush()?;
        for shard in 0..self.workers.len() {
            self.with_shard(shard, |w| {
                let (tx, rx) = channel();
                w.tx.send(Cmd::Barrier(tx)).ok()?;
                rx.recv().ok()
            })?;
        }
        Ok(())
    }

    /// Checkpoint one shard: flush its staging, snapshot its evidence
    /// state (FIFO — the snapshot covers everything fed so far), and
    /// drain its replay buffer. Requires supervision.
    pub fn checkpoint_shard(&mut self, shard: usize) -> Result<(), PoolError> {
        assert!(self.supervisor.is_some(), "enable_supervision first");
        self.ship(shard)?;
        let state = self.with_shard(shard, |w| {
            let (tx, rx) = channel();
            w.tx.send(Cmd::Snapshot(tx)).ok()?;
            rx.recv().ok()
        })?;
        let sup = self.supervisor.as_mut().expect("supervised");
        sup.shard_state[shard] = state;
        sup.pending[shard].clear(); // full state subsumes queued deltas
        reclaim_replay(&mut sup.replay[shard], &mut self.spare);
        sup.replay_records[shard] = 0;
        sup.shard_checkpoints.inc();
        Ok(())
    }

    /// Checkpoint every shard (e.g. on an hour boundary). Requires
    /// supervision. Snapshot commands are broadcast before any reply is
    /// awaited, so the shards export their states concurrently — the
    /// boundary costs one shard's export, not the sum of all of them.
    pub fn checkpoint_all(&mut self) -> Result<(), PoolError> {
        assert!(self.supervisor.is_some(), "enable_supervision first");
        self.flush()?;
        let mut pending: Vec<Option<Receiver<DetectorState>>> = Vec::new();
        for w in &self.workers {
            let (tx, rx) = channel();
            pending.push(w.tx.send(Cmd::Snapshot(tx)).ok().map(|()| rx));
        }
        for (shard, slot) in pending.into_iter().enumerate() {
            match slot.and_then(|rx| rx.recv().ok()) {
                Some(state) => {
                    let sup = self.supervisor.as_mut().expect("supervised");
                    sup.shard_state[shard] = state;
                    sup.pending[shard].clear(); // subsumed by the full
                    reclaim_replay(&mut sup.replay[shard], &mut self.spare);
                    sup.replay_records[shard] = 0;
                    sup.shard_checkpoints.inc();
                }
                // Dead shard: heal it, then take its snapshot on the
                // (recovered) slow path.
                None => {
                    self.handle_dead_shard(shard)?;
                    self.checkpoint_shard(shard)?;
                }
            }
        }
        Ok(())
    }

    /// Checkpoint every shard incrementally: each shard exports a
    /// dirty-only [`DetectorSnapshot`] (full when it has no clean base —
    /// fresh worker, post-restore, post-reset), the supervisor merges it
    /// into its per-shard base state, and the per-shard frames are
    /// returned for persistence. Requires supervision. A shard found
    /// dead is healed first and contributes a full frame — its recovered
    /// state has no delta base on disk.
    pub fn checkpoint_all_delta(&mut self) -> Result<Vec<DetectorSnapshot>, PoolError> {
        assert!(self.supervisor.is_some(), "enable_supervision first");
        self.flush()?;
        let mut pending: Vec<Option<Receiver<DetectorSnapshot>>> = Vec::new();
        for w in &self.workers {
            let (tx, rx) = channel();
            pending.push(w.tx.send(Cmd::SnapshotDelta(tx)).ok().map(|()| rx));
        }
        let mut frames = Vec::with_capacity(self.workers.len());
        for (shard, slot) in pending.into_iter().enumerate() {
            match slot.and_then(|rx| rx.recv().ok()) {
                Some(snap) => {
                    let sup = self.supervisor.as_mut().expect("supervised");
                    match &snap {
                        DetectorSnapshot::Full(state) => {
                            sup.shard_state[shard] = state.clone();
                            sup.pending[shard].clear();
                        }
                        // Deferred: the frame is persisted by the caller
                        // at this same moment, so queuing it (a memcpy)
                        // instead of applying it (thousands of upserts)
                        // loses nothing — the fold happens off the
                        // boundary path, when the base is next read.
                        DetectorSnapshot::Delta(delta) => {
                            sup.pending[shard].push(delta.clone())
                        }
                    }
                    reclaim_replay(&mut sup.replay[shard], &mut self.spare);
                    sup.replay_records[shard] = 0;
                    sup.shard_checkpoints.inc();
                    frames.push(snap);
                }
                // Dead shard: heal it, take a full snapshot on the
                // recovered slow path, and persist that full frame —
                // the worker's dirty set died with it.
                None => {
                    self.handle_dead_shard(shard)?;
                    self.checkpoint_shard(shard)?;
                    let sup = self.supervisor.as_ref().expect("supervised");
                    frames.push(DetectorSnapshot::Full(sup.shard_state[shard].clone()));
                }
            }
        }
        Ok(frames)
    }

    /// The supervisor's merged per-shard base states — what the delta
    /// frames of [`DetectorPool::checkpoint_all_delta`] have been folded
    /// into. Requires supervision.
    pub fn supervised_shard_states(&mut self) -> Vec<DetectorState> {
        assert!(self.supervisor.is_some(), "enable_supervision first");
        let sup = self.supervisor.as_mut().expect("supervised");
        for shard in 0..sup.shard_state.len() {
            sup.fold_pending(shard);
        }
        sup.shard_state.clone()
    }

    /// Export every shard's evidence state, flushing first so the
    /// states cover everything fed. Under supervision this doubles as a
    /// checkpoint (replay buffers drain). The returned vector is
    /// indexed by shard and must be restored into a pool with the same
    /// worker count ([`DetectorPool::restore_shard_states`]).
    pub fn shard_states(&mut self) -> Result<Vec<DetectorState>, PoolError> {
        if self.supervisor.is_some() {
            self.checkpoint_all()?;
            return Ok(self.supervisor.as_ref().expect("supervised").shard_state.clone());
        }
        self.flush()?;
        let mut states = Vec::with_capacity(self.workers.len());
        for shard in 0..self.workers.len() {
            states.push(self.with_shard(shard, |w| {
                let (tx, rx) = channel();
                w.tx.send(Cmd::Snapshot(tx)).ok()?;
                rx.recv().ok()
            })?);
        }
        Ok(states)
    }

    /// Restore per-shard evidence states exported by
    /// [`DetectorPool::shard_states`] from a pool with the same worker
    /// count and rule set. Under supervision the states become the
    /// shards' checkpoints and the replay buffers drain.
    pub fn restore_shard_states(&mut self, states: &[DetectorState]) -> Result<(), PoolError> {
        assert_eq!(
            states.len(),
            self.workers.len(),
            "shard states must match the worker count"
        );
        for s in &mut self.staging {
            s.clear();
        }
        if let Some(sup) = &mut self.supervisor {
            sup.shard_state = states.to_vec();
            for q in &mut sup.pending {
                q.clear(); // stale deltas would corrupt the restored base
            }
            for r in &mut sup.replay {
                reclaim_replay(r, &mut self.spare);
            }
            sup.replay_records.fill(0);
        }
        for (shard, state) in states.iter().enumerate() {
            let state = state.clone();
            self.with_shard(shard, move |w| w.tx.send(Cmd::Restore(state.clone())).ok())?;
        }
        Ok(())
    }

    /// Deterministic crash injection: make `shard` panic with `msg` once
    /// every batch sent before this call is processed. The next
    /// operation touching the shard observes the death (and heals it,
    /// under supervision).
    pub fn inject_panic(&mut self, shard: usize, msg: &str) -> Result<(), PoolError> {
        let msg = msg.to_string();
        self.with_shard(shard, move |w| w.tx.send(Cmd::PanicNow(msg.clone())).ok())
    }

    /// Deterministic stall injection: make `shard` sleep for `dur` once
    /// every batch sent before this call is processed. The thread stays
    /// alive — this is the wedged-not-dead failure
    /// [`DetectorPool::shard_health`] exists to catch.
    pub fn inject_stall(&mut self, shard: usize, dur: Duration) -> Result<(), PoolError> {
        self.with_shard(shard, move |w| w.tx.send(Cmd::StallFor(dur)).ok())
    }

    /// Probe every shard's liveness: each gets a barrier and `timeout`
    /// to answer it (enqueue time counts — a shard too wedged to drain
    /// its channel is as stalled as one that never replies). Purely
    /// observational: no healing, no flushing, no blocking beyond the
    /// timeout per shard.
    pub fn shard_health(&self, timeout: Duration) -> Vec<ShardHealth> {
        self.workers
            .iter()
            .map(|w| {
                let deadline = Instant::now() + timeout;
                let (tx, rx) = channel();
                let mut cmd = Cmd::Barrier(tx);
                loop {
                    match w.tx.try_send(cmd) {
                        Ok(()) => break,
                        Err(TrySendError::Full(c)) => {
                            if Instant::now() >= deadline {
                                return ShardHealth::Stalled;
                            }
                            cmd = c;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(TrySendError::Disconnected(_)) => return ShardHealth::Dead,
                    }
                }
                match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                    Ok(()) => ShardHealth::Responsive,
                    Err(RecvTimeoutError::Timeout) => ShardHealth::Stalled,
                    Err(RecvTimeoutError::Disconnected) => ShardHealth::Dead,
                }
            })
            .collect()
    }

    /// Watchdog escalation for a shard that is alive but unresponsive:
    /// abandon its thread (detach — joining a wedged thread would hang
    /// the supervisor with it) and bring up a replacement restored from
    /// the last checkpoint plus replay. Recovery is exact for the same
    /// reason crash recovery is: the checkpoint covers everything before
    /// the watermark, the replay buffer everything after, and the
    /// abandoned worker's un-checkpointed state is discarded with it.
    /// Requires supervision.
    pub fn force_respawn(&mut self, shard: usize) -> Result<(), PoolError> {
        assert!(self.supervisor.is_some(), "enable_supervision first");
        // Detach: the old thread keeps draining its channel at its own
        // pace until the dropped sender disconnects it, then exits. Its
        // recycle lane is already orphaned, so nothing it touches flows
        // back into the pool.
        drop(self.workers[shard].handle.take());
        self.respawn_and_replay(shard)
    }

    /// Operator reset for a degraded shard: close its crash-loop
    /// breaker, respawn it from its last checkpoint plus replay, then
    /// re-feed the records queued while the breaker was open (sheds are
    /// gone — the accounting in [`DetectorPool::shard_status`] is the
    /// record of that loss). Requires supervision.
    pub fn reset_breaker(&mut self, shard: usize) -> Result<(), PoolError> {
        assert!(self.supervisor.is_some(), "enable_supervision first");
        self.backoff[shard].reset();
        drop(self.workers[shard].handle.take());
        self.respawn_and_replay(shard)?;
        // The respawn above counted as a death; an operator reset
        // declares the shard healthy, so clear that bookkeeping too.
        self.backoff[shard].reset();
        let queued = std::mem::take(&mut self.degraded_queue[shard]);
        for r in queued {
            self.staging[shard].push(r);
            if self.staging[shard].len() >= self.batch_records {
                self.ship(shard)?;
            }
        }
        Ok(())
    }

    /// Swap the daily hitlist on every shard. Staged records are flushed
    /// first, so they are observed under the hitlist that was current
    /// when they were fed. Under supervision every shard is checkpointed
    /// first, so a replay never crosses a hitlist swap.
    pub fn set_hitlist(&mut self, hitlist: &HitList) -> Result<(), PoolError> {
        if self.supervisor.is_some() {
            self.checkpoint_all()?;
        } else {
            self.flush()?;
        }
        self.hitlist = hitlist.clone();
        for shard in 0..self.workers.len() {
            let hl = hitlist.clone();
            self.with_shard(shard, move |w| w.tx.send(Cmd::SetHitlist(hl.clone())).ok())?;
        }
        Ok(())
    }

    /// Swap the rule set itself on every shard without restarting the
    /// pool — the live-reload primitive behind `POST /admin/reload-rules`
    /// (DESIGN.md §14).
    ///
    /// Checkpoint-first, like [`DetectorPool::set_hitlist`]: every
    /// shard's evidence is exported (covering every record fed so far),
    /// migrated to the new rule set by class/domain name
    /// ([`crate::pack::migrate_detector_state`]), and shipped back with
    /// the new rules in one [`Cmd::SetRules`] — so unchanged rules lose
    /// no evidence, removed rules vanish, added rules start empty, and
    /// a supervised replay never crosses the swap.
    pub fn set_rules(&mut self, rules: &RuleSet, hitlist: &HitList) -> Result<(), PoolError> {
        let new_rules = Arc::new(rules.clone());
        // Under supervision this is a checkpoint_all: replay buffers
        // drain, so a post-swap respawn restores migrated state only.
        let old_states = self.shard_states()?;
        let migrated: Vec<DetectorState> = old_states
            .iter()
            .map(|s| {
                crate::pack::migrate_detector_state(
                    &self.rules,
                    &new_rules,
                    self.config.threshold,
                    s,
                )
            })
            .collect();
        if let Some(sup) = &mut self.supervisor {
            sup.shard_state = migrated.clone();
            for q in &mut sup.pending {
                q.clear(); // pre-swap deltas reference the old rule set
            }
        }
        self.rules = Arc::clone(&new_rules);
        self.hitlist = hitlist.clone();
        for (shard, state) in migrated.into_iter().enumerate() {
            let r = Arc::clone(&new_rules);
            let hl = hitlist.clone();
            self.with_shard(shard, move |w| {
                w.tx.send(Cmd::SetRules(Arc::clone(&r), hl.clone(), state.clone())).ok()
            })?;
        }
        Ok(())
    }

    /// Clear accumulated evidence (new aggregation window). Records still
    /// staged are discarded — they belong to the window being cleared.
    pub fn reset(&mut self) -> Result<(), PoolError> {
        if let Some(t) = &self.telemetry {
            t.records_discarded.add(self.staging.iter().map(Vec::len).sum::<usize>() as u64);
        }
        for s in &mut self.staging {
            s.clear();
        }
        let nrules = self.rules.rules.len();
        if let Some(sup) = &mut self.supervisor {
            for r in &mut sup.replay {
                reclaim_replay(r, &mut self.spare);
            }
            sup.replay_records.fill(0);
            for s in &mut sup.shard_state {
                *s = empty_state(nrules);
            }
            for q in &mut sup.pending {
                q.clear(); // the window they belong to is being cleared
            }
        }
        for shard in 0..self.workers.len() {
            self.with_shard(shard, |w| w.tx.send(Cmd::Reset).ok())?;
        }
        Ok(())
    }

    /// All lines for which `class` is detected, merged across shards.
    pub fn detected_lines(&mut self, class: &str) -> Result<Vec<AnonId>, PoolError> {
        self.flush()?;
        let mut out = Vec::new();
        for shard in 0..self.workers.len() {
            let lines = self.with_shard(shard, |w| {
                let (tx, rx) = channel();
                w.tx.send(Cmd::DetectedLines(class.to_string(), tx)).ok()?;
                rx.recv().ok()
            })?;
            out.extend(lines);
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Whether `class` is detected for `line` (asks the owning shard).
    pub fn is_detected(&mut self, line: AnonId, class: &str) -> Result<bool, PoolError> {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard)?;
        self.with_shard(shard, |w| {
            let (tx, rx) = channel();
            w.tx.send(Cmd::IsDetected(line, class.to_string(), tx)).ok()?;
            rx.recv().ok()
        })
    }

    /// Graded detection confidence for `(line, class)` in `[0, 1]`.
    pub fn confidence(&mut self, line: AnonId, class: &str) -> Result<f64, PoolError> {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard)?;
        self.with_shard(shard, |w| {
            let (tx, rx) = channel();
            w.tx.send(Cmd::Confidence(line, class.to_string(), tx)).ok()?;
            rx.recv().ok()
        })
    }

    /// First hour the full (hierarchy-gated) detection held for
    /// `(line, class)`.
    pub fn first_detection(
        &mut self,
        line: AnonId,
        class: &str,
    ) -> Result<Option<HourBin>, PoolError> {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard)?;
        self.with_shard(shard, |w| {
            let (tx, rx) = channel();
            w.tx.send(Cmd::FirstDetection(line, class.to_string(), tx)).ok()?;
            rx.recv().ok()
        })
    }

    /// Total per-(line, rule) states held across shards.
    pub fn state_size(&mut self) -> Result<usize, PoolError> {
        self.flush()?;
        let mut total = 0usize;
        for shard in 0..self.workers.len() {
            total += self.with_shard(shard, |w| {
                let (tx, rx) = channel();
                w.tx.send(Cmd::StateSize(tx)).ok()?;
                rx.recv().ok()
            })?;
        }
        Ok(total)
    }
}

/// The common surface of the in-process [`DetectorPool`] and the
/// process-isolated [`crate::procpool::ProcPool`]: everything the
/// detect/soak/serve paths need, object-safe so the backend is chosen
/// at runtime by `--isolate thread|process`.
///
/// Both implementations share the sharding function, the supervision
/// contract (checkpoint + bounded replay, byte-identical recovery), and
/// the crash-loop circuit breaker ([`RespawnPolicy`]) — the trait is
/// what lets the CLI treat a worker *process* and a worker *thread* as
/// the same thing.
pub trait ShardBackend: Send + fmt::Debug {
    /// Number of shard workers.
    fn workers(&self) -> usize;
    /// Turn on supervised recovery: checkpoint every shard now, then
    /// keep a bounded replay buffer (at most `replay_limit` records per
    /// shard).
    fn enable_supervision(&mut self, replay_limit: usize) -> Result<(), PoolError>;
    /// Whether supervised recovery is enabled.
    fn supervised(&self) -> bool;
    /// Instrument the backend under `scope` (no-op while telemetry is
    /// disabled).
    fn attach_telemetry(&mut self, scope: &Scope) -> Result<(), PoolError>;
    /// Replace the respawn backoff / circuit-breaker policy.
    fn set_respawn_policy(&mut self, policy: RespawnPolicy);
    /// Observe records, partitioned to shards by line id.
    fn observe_records(&mut self, records: &[WildRecord]) -> Result<(), PoolError>;
    /// Push every partial staging buffer to its worker.
    fn flush(&mut self) -> Result<(), PoolError>;
    /// Flush, then block until every worker processed everything sent.
    fn finish(&mut self) -> Result<(), PoolError>;
    /// Checkpoint every shard (full states). Requires supervision.
    fn checkpoint_all(&mut self) -> Result<(), PoolError>;
    /// Checkpoint every shard incrementally, returning the per-shard
    /// dirty-only frames for persistence. Requires supervision.
    fn checkpoint_all_delta(&mut self) -> Result<Vec<DetectorSnapshot>, PoolError>;
    /// The supervisor's merged per-shard base states. Requires
    /// supervision.
    fn supervised_shard_states(&mut self) -> Vec<DetectorState>;
    /// Export every shard's evidence state (a checkpoint, under
    /// supervision).
    fn shard_states(&mut self) -> Result<Vec<DetectorState>, PoolError>;
    /// Restore per-shard evidence states from a same-shape export.
    fn restore_shard_states(&mut self, states: &[DetectorState]) -> Result<(), PoolError>;
    /// Swap the daily hitlist on every shard.
    fn set_hitlist(&mut self, hitlist: &HitList) -> Result<(), PoolError>;
    /// Swap the rule set live, migrating evidence by class name.
    fn set_rules(&mut self, rules: &RuleSet, hitlist: &HitList) -> Result<(), PoolError>;
    /// Clear accumulated evidence (new aggregation window).
    fn reset(&mut self) -> Result<(), PoolError>;
    /// All lines for which `class` is detected, merged and sorted.
    fn detected_lines(&mut self, class: &str) -> Result<Vec<AnonId>, PoolError>;
    /// Whether `class` is detected for `line`.
    fn is_detected(&mut self, line: AnonId, class: &str) -> Result<bool, PoolError>;
    /// Graded detection confidence for `(line, class)` in `[0, 1]`.
    fn confidence(&mut self, line: AnonId, class: &str) -> Result<f64, PoolError>;
    /// First hour the gated detection held for `(line, class)`.
    fn first_detection(&mut self, line: AnonId, class: &str)
        -> Result<Option<HourBin>, PoolError>;
    /// Total per-(line, rule) states held across shards.
    fn state_size(&mut self) -> Result<usize, PoolError>;
    /// Probe every shard's liveness within `timeout` (observational).
    fn shard_health(&self, timeout: Duration) -> Vec<ShardHealth>;
    /// Per-shard supervision status plus degraded-queue accounting.
    fn shard_status(&self) -> Vec<ShardStatusReport>;
    /// Watchdog escalation: abandon a wedged shard and bring up a
    /// replacement from checkpoint + replay. Requires supervision.
    fn force_respawn(&mut self, shard: usize) -> Result<(), PoolError>;
    /// Operator reset for a degraded shard: close its breaker, respawn,
    /// re-feed its queued records. Requires supervision.
    fn reset_breaker(&mut self, shard: usize) -> Result<(), PoolError>;
    /// Chaos: make `shard` die once everything sent before is processed.
    fn inject_panic(&mut self, shard: usize, msg: &str) -> Result<(), PoolError>;
    /// Chaos: make `shard` stall for `dur` (alive but unresponsive).
    fn inject_stall(&mut self, shard: usize, dur: Duration) -> Result<(), PoolError>;
    /// Chaos: kill `shard`'s worker ungracefully *right now* (SIGKILL
    /// for a process backend, a panic for the thread backend). The next
    /// operation touching the shard heals it.
    fn kill_shard(&mut self, shard: usize) -> Result<(), PoolError>;

    /// Drain a whole [`RecordStream`] through the backend, reusing one
    /// chunk buffer. Returns `(records, sampled_packets, degradation)`
    /// funnel totals folded over every chunk.
    fn observe_stream(
        &mut self,
        stream: &mut dyn RecordStream,
        chunk: &mut RecordChunk,
    ) -> Result<(u64, u64, haystack_wild::FeedDegradation), PoolError> {
        let mut records = 0u64;
        let mut packets = 0u64;
        let mut degradation = haystack_wild::FeedDegradation::default();
        while stream.next_chunk(chunk) {
            records += chunk.records.len() as u64;
            packets += chunk.sampled_packets;
            degradation.absorb(chunk.degradation);
            self.observe_records(&chunk.records)?;
        }
        Ok((records, packets, degradation))
    }
}

impl ShardBackend for DetectorPool {
    fn workers(&self) -> usize {
        DetectorPool::workers(self)
    }
    fn enable_supervision(&mut self, replay_limit: usize) -> Result<(), PoolError> {
        DetectorPool::enable_supervision(self, replay_limit)
    }
    fn supervised(&self) -> bool {
        DetectorPool::supervised(self)
    }
    fn attach_telemetry(&mut self, scope: &Scope) -> Result<(), PoolError> {
        DetectorPool::attach_telemetry(self, scope)
    }
    fn set_respawn_policy(&mut self, policy: RespawnPolicy) {
        DetectorPool::set_respawn_policy(self, policy)
    }
    fn observe_records(&mut self, records: &[WildRecord]) -> Result<(), PoolError> {
        DetectorPool::observe_records(self, records)
    }
    fn flush(&mut self) -> Result<(), PoolError> {
        DetectorPool::flush(self)
    }
    fn finish(&mut self) -> Result<(), PoolError> {
        DetectorPool::finish(self)
    }
    fn checkpoint_all(&mut self) -> Result<(), PoolError> {
        DetectorPool::checkpoint_all(self)
    }
    fn checkpoint_all_delta(&mut self) -> Result<Vec<DetectorSnapshot>, PoolError> {
        DetectorPool::checkpoint_all_delta(self)
    }
    fn supervised_shard_states(&mut self) -> Vec<DetectorState> {
        DetectorPool::supervised_shard_states(self)
    }
    fn shard_states(&mut self) -> Result<Vec<DetectorState>, PoolError> {
        DetectorPool::shard_states(self)
    }
    fn restore_shard_states(&mut self, states: &[DetectorState]) -> Result<(), PoolError> {
        DetectorPool::restore_shard_states(self, states)
    }
    fn set_hitlist(&mut self, hitlist: &HitList) -> Result<(), PoolError> {
        DetectorPool::set_hitlist(self, hitlist)
    }
    fn set_rules(&mut self, rules: &RuleSet, hitlist: &HitList) -> Result<(), PoolError> {
        DetectorPool::set_rules(self, rules, hitlist)
    }
    fn reset(&mut self) -> Result<(), PoolError> {
        DetectorPool::reset(self)
    }
    fn detected_lines(&mut self, class: &str) -> Result<Vec<AnonId>, PoolError> {
        DetectorPool::detected_lines(self, class)
    }
    fn is_detected(&mut self, line: AnonId, class: &str) -> Result<bool, PoolError> {
        DetectorPool::is_detected(self, line, class)
    }
    fn confidence(&mut self, line: AnonId, class: &str) -> Result<f64, PoolError> {
        DetectorPool::confidence(self, line, class)
    }
    fn first_detection(
        &mut self,
        line: AnonId,
        class: &str,
    ) -> Result<Option<HourBin>, PoolError> {
        DetectorPool::first_detection(self, line, class)
    }
    fn state_size(&mut self) -> Result<usize, PoolError> {
        DetectorPool::state_size(self)
    }
    fn shard_health(&self, timeout: Duration) -> Vec<ShardHealth> {
        DetectorPool::shard_health(self, timeout)
    }
    fn shard_status(&self) -> Vec<ShardStatusReport> {
        DetectorPool::shard_status(self)
    }
    fn force_respawn(&mut self, shard: usize) -> Result<(), PoolError> {
        DetectorPool::force_respawn(self, shard)
    }
    fn reset_breaker(&mut self, shard: usize) -> Result<(), PoolError> {
        DetectorPool::reset_breaker(self, shard)
    }
    fn inject_panic(&mut self, shard: usize, msg: &str) -> Result<(), PoolError> {
        DetectorPool::inject_panic(self, shard, msg)
    }
    fn inject_stall(&mut self, shard: usize, dur: Duration) -> Result<(), PoolError> {
        DetectorPool::inject_stall(self, shard, dur)
    }
    fn kill_shard(&mut self, shard: usize) -> Result<(), PoolError> {
        // The closest thread-backend equivalent of SIGKILL: the worker
        // dies once everything already queued is processed.
        DetectorPool::inject_panic(self, shard, "chaos: shard killed")
    }
}

impl DetectionQuery for DetectorPool {
    fn query_detected_lines(&mut self, class: &str) -> Vec<AnonId> {
        self.detected_lines(class).unwrap_or_else(|e| panic!("{e}"))
    }
}

impl Drop for DetectorPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Closing the command channel ends the worker loop.
            let (tx, _) = sync_channel(1);
            drop(std::mem::replace(&mut w.tx, tx));
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The legacy batch façade over [`DetectorPool`]: `observe_batch` blocks
/// until the batch is fully absorbed, preserving the old call-and-query
/// contract. New code should drive the pool (or a [`RecordStream`])
/// directly.
#[derive(Debug)]
pub struct ShardedDetector {
    pool: DetectorPool,
}

impl ShardedDetector {
    /// Create `workers` shards sharing one rule set and hitlist.
    pub fn new(rules: &RuleSet, hitlist: &HitList, config: DetectorConfig, workers: usize) -> Self {
        ShardedDetector { pool: DetectorPool::new(rules, hitlist, config, workers) }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The underlying pool (for streaming feeds and tuning knobs).
    pub fn pool_mut(&mut self) -> &mut DetectorPool {
        &mut self.pool
    }

    /// Swap the daily hitlist on every shard.
    pub fn set_hitlist(&mut self, hitlist: &HitList) -> Result<(), PoolError> {
        self.pool.set_hitlist(hitlist)
    }

    /// Process one batch of records across all shards, blocking until
    /// every record is absorbed.
    pub fn observe_batch(&mut self, records: &[WildRecord]) -> Result<(), PoolError> {
        self.pool.observe_records(records)?;
        self.pool.finish()
    }

    /// Whether `class` is detected for `line` (dispatches to the shard
    /// owning the line).
    pub fn is_detected(&mut self, line: AnonId, class: &str) -> Result<bool, PoolError> {
        self.pool.is_detected(line, class)
    }

    /// All lines for which `class` is detected, merged across shards.
    pub fn detected_lines(&mut self, class: &str) -> Result<Vec<AnonId>, PoolError> {
        self.pool.detected_lines(class)
    }

    /// Total per-(line, rule) states held across shards.
    pub fn state_size(&mut self) -> Result<usize, PoolError> {
        self.pool.state_size()
    }

    /// Reset every shard (new aggregation window).
    pub fn reset(&mut self) -> Result<(), PoolError> {
        self.pool.reset()
    }
}

impl DetectionQuery for ShardedDetector {
    fn query_detected_lines(&mut self, class: &str) -> Vec<AnonId> {
        self.detected_lines(class).unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleDomain, RuleSetBuilder};
    use haystack_dns::DomainName;
    use haystack_net::ports::Proto;
    use haystack_net::{HourBin, Prefix4};
    use haystack_testbed::catalog::DetectionLevel;
    use haystack_wild::VecStream;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::net::Ipv4Addr;

    fn ruleset(n: usize) -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.rule(
            "X",
            DetectionLevel::Manufacturer,
            None,
            (0..n)
                .map(|i| RuleDomain {
                    name: DomainName::parse(&format!("d{i}.x.com")).unwrap(),
                    ports: [443u16].into_iter().collect(),
                    ips: [Ipv4Addr::new(198, 18, 8, i as u8 + 1)].into_iter().collect(),
                    usage_indicator: false,
                })
                .collect(),
        );
        b.build()
    }

    fn random_records(count: usize, seed: u64) -> Vec<WildRecord> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let src = Ipv4Addr::new(100, 64, rng.gen(), rng.gen());
                WildRecord {
                    line: AnonId(rng.gen_range(0..5_000)),
                    line_slash24: Prefix4::slash24_of(src),
                    src_ip: src,
                    dst: Ipv4Addr::new(198, 18, 8, rng.gen_range(1..10)),
                    dport: 443,
                    proto: Proto::Tcp,
                    packets: 1,
                    bytes: 100,
                    established: true,
                    hour: HourBin(rng.gen_range(0..24)),
                }
            })
            .collect()
    }

    #[test]
    fn sharded_equals_sequential() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(20_000, 3);

        let mut seq = Detector::new(&rules, hl.clone(), config);
        for r in &records {
            seq.observe_wild(r);
        }
        for workers in [1usize, 2, 4, 7] {
            let mut par = ShardedDetector::new(&rules, &hl, config, workers);
            par.observe_batch(&records).unwrap();
            assert_eq!(
                par.detected_lines("X").unwrap(),
                seq.detected_lines("X"),
                "{workers} workers diverge from sequential"
            );
            assert_eq!(par.state_size().unwrap(), seq.state_size());
        }
    }

    /// A domain for the swap-target rule "Y", on an IP range rule "X"
    /// never touches.
    fn y_domain() -> RuleDomain {
        RuleDomain {
            name: DomainName::parse("y.y.com").unwrap(),
            ports: [443u16].into_iter().collect(),
            ips: [Ipv4Addr::new(198, 18, 9, 1)].into_iter().collect(),
            usage_indicator: false,
        }
    }

    fn x_domains(n: usize) -> Vec<RuleDomain> {
        (0..n)
            .map(|i| RuleDomain {
                name: DomainName::parse(&format!("d{i}.x.com")).unwrap(),
                ports: [443u16].into_iter().collect(),
                ips: [Ipv4Addr::new(198, 18, 8, i as u8 + 1)].into_iter().collect(),
                usage_indicator: false,
            })
            .collect()
    }

    #[test]
    fn set_rules_swaps_live_without_evidence_loss() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(20_000, 5);
        let mut pool = DetectorPool::new(&rules, &hl, config, 4);
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
        pool.observe_records(&records).unwrap();
        pool.finish().unwrap();
        let before = pool.detected_lines("X").unwrap();
        assert!(!before.is_empty());

        // Swap to a set where "X" is unchanged and "Y" appears.
        let mut b = RuleSetBuilder::new();
        b.rule("X", DetectionLevel::Manufacturer, None, x_domains(6));
        b.rule("Y", DetectionLevel::Manufacturer, None, vec![y_domain()]);
        let with_y = b.build();
        pool.set_rules(&with_y, &HitList::whole_window(&with_y)).unwrap();
        assert_eq!(
            pool.detected_lines("X").unwrap(),
            before,
            "unchanged rule keeps its evidence across the swap"
        );
        assert!(pool.detected_lines("Y").unwrap().is_empty(), "added rule starts empty");

        // The added rule is live immediately under the new hitlist.
        let src = Ipv4Addr::new(100, 64, 9, 9);
        let rec = WildRecord {
            line: AnonId(42),
            line_slash24: Prefix4::slash24_of(src),
            src_ip: src,
            dst: Ipv4Addr::new(198, 18, 9, 1),
            dport: 443,
            proto: Proto::Tcp,
            packets: 1,
            bytes: 100,
            established: true,
            hour: HourBin(0),
        };
        pool.observe_records(&[rec]).unwrap();
        pool.finish().unwrap();
        assert!(pool.is_detected(AnonId(42), "Y").unwrap());

        // A crash after the swap recovers under the *new* rules: the
        // migrated checkpoint plus the replayed post-swap record.
        pool.inject_panic(1, "post-swap crash").unwrap();
        assert_eq!(pool.detected_lines("X").unwrap(), before);
        assert!(pool.is_detected(AnonId(42), "Y").unwrap());

        // Swap again, removing "X": its detections disappear, "Y"
        // survives by name.
        let mut b = RuleSetBuilder::new();
        b.rule("Y", DetectionLevel::Manufacturer, None, vec![y_domain()]);
        let only_y = b.build();
        pool.set_rules(&only_y, &HitList::whole_window(&only_y)).unwrap();
        assert!(pool.detected_lines("X").unwrap().is_empty(), "removed rule disappears");
        assert!(pool.is_detected(AnonId(42), "Y").unwrap(), "surviving rule keeps evidence");
    }

    #[test]
    fn delta_checkpoints_merge_into_the_full_shard_states() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(24_000, 17);
        let (first, rest) = records.split_at(8_000);

        let mut pool = DetectorPool::new(&rules, &hl, config, 4);
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
        pool.observe_records(first).unwrap();
        // Fresh workers have no clean base: round one is all-full.
        let frames = pool.checkpoint_all_delta().unwrap();
        assert!(frames.iter().all(DetectorSnapshot::is_full), "first round must be full");

        pool.observe_records(rest).unwrap();
        let frames = pool.checkpoint_all_delta().unwrap();
        assert!(
            frames.iter().all(|f| !f.is_full()),
            "second round must be dirty-only deltas"
        );

        // The merged bases equal an uninterrupted pool's full states.
        let merged = pool.supervised_shard_states();
        let mut oracle = DetectorPool::new(&rules, &hl, config, 4);
        oracle.observe_records(&records).unwrap();
        assert_eq!(merged, oracle.shard_states().unwrap());

        // A crashed shard heals and contributes a full frame again.
        pool.inject_panic(2, "mid-soak crash").unwrap();
        pool.observe_records(first).unwrap();
        let frames = pool.checkpoint_all_delta().unwrap();
        assert!(frames[2].is_full(), "healed shard restarts its chain with a full frame");
        assert_eq!(
            pool.detected_lines("X").unwrap(),
            {
                oracle.observe_records(first).unwrap();
                oracle.detected_lines("X").unwrap()
            },
            "crash + delta checkpoints lose no evidence"
        );
    }

    #[test]
    fn same_feed_same_detections_for_1_2_8_workers() {
        // Determinism pin: the same record stream produces identical
        // detection sets (and state counts) for any worker count.
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(30_000, 11);
        let mut results = Vec::new();
        for workers in [1usize, 2, 8] {
            let mut pool = DetectorPool::new(&rules, &hl, config, workers);
            let mut chunk = RecordChunk::default();
            let mut stream = VecStream::new(records.clone(), 333);
            pool.observe_stream(&mut stream, &mut chunk).unwrap();
            pool.finish().unwrap();
            results.push((pool.detected_lines("X").unwrap(), pool.state_size().unwrap()));
        }
        assert_eq!(results[0], results[1], "2 workers diverge from 1");
        assert_eq!(results[0], results[2], "8 workers diverge from 1");
        assert!(!results[0].0.is_empty(), "test must detect something");
    }

    #[test]
    fn streamed_chunks_equal_one_batch() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(10_000, 5);

        let mut batched = ShardedDetector::new(&rules, &hl, config, 3);
        batched.observe_batch(&records).unwrap();

        let mut streamed = DetectorPool::new(&rules, &hl, config, 3);
        for piece in records.chunks(17) {
            streamed.observe_records(piece).unwrap();
        }
        streamed.finish().unwrap();
        assert_eq!(
            streamed.detected_lines("X").unwrap(),
            batched.detected_lines("X").unwrap()
        );
    }

    #[test]
    fn queries_flush_staged_records() {
        // A query with records still staged must observe them.
        let rules = ruleset(1);
        let hl = HitList::whole_window(&rules);
        let mut pool = DetectorPool::new(&rules, &hl, DetectorConfig::default(), 2);
        let records = random_records(10, 8);
        pool.observe_records(&records).unwrap(); // far below POOL_BATCH_RECORDS
        assert!(pool.state_size().unwrap() > 0, "staged records visible to queries");
        for line in pool.detected_lines("X").unwrap() {
            assert!(pool.is_detected(line, "X").unwrap());
        }
    }

    #[test]
    fn buffer_count_is_bounded_by_channel_capacity_not_feed_size() {
        let rules = ruleset(1);
        let hl = HitList::whole_window(&rules);
        // Tiny buffers force constant shipping: 100k records → ~1000
        // buffer sends per shard, but the resident set stays bounded.
        let workers = 4;
        let channel_batches = 4;
        let mut pool = DetectorPool::with_tuning(
            &rules,
            &hl,
            DetectorConfig::default(),
            workers,
            100,
            channel_batches,
        );
        pool.observe_records(&random_records(100_000, 2)).unwrap();
        pool.finish().unwrap();
        // Per shard: 1 staging + channel_batches in flight + 1 being
        // processed + 1 in the recycle queue.
        let bound = workers * (channel_batches + 3);
        assert!(
            pool.buffers_created() <= bound,
            "{} buffers for a 100k feed (bound {bound})",
            pool.buffers_created()
        );
    }

    #[test]
    fn shards_stay_balanced_for_sequential_ids() {
        // Raw `id % n` would put every id on shard id%n deterministically
        // fine — but sequential ids with stride equal to the worker count
        // stripe onto one shard. The mixed hash must spread any arithmetic
        // progression evenly.
        for workers in [2usize, 3, 4, 7, 8] {
            for stride in [1u64, 2, 4, 7, 8, 16] {
                let mut counts = vec![0usize; workers];
                let total = 8_000usize;
                for i in 0..total {
                    counts[shard_of(AnonId(i as u64 * stride), workers)] += 1;
                }
                let expect = total / workers;
                for (s, &c) in counts.iter().enumerate() {
                    assert!(
                        c > expect / 2 && c < expect * 2,
                        "workers {workers} stride {stride}: shard {s} holds {c}/{total}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_line_dispatch_is_consistent() {
        let rules = ruleset(2);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig::default();
        let mut par = ShardedDetector::new(&rules, &hl, config, 4);
        let records = random_records(5_000, 9);
        par.observe_batch(&records).unwrap();
        for line in par.detected_lines("X").unwrap() {
            assert!(par.is_detected(line, "X").unwrap());
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn pool_telemetry_counts_are_conserved() {
        telemetry::set_enabled(true);
        let rules = ruleset(4);
        let hl = HitList::whole_window(&rules);
        let scope = Scope::named("t_pool_unit");
        let mut pool = DetectorPool::with_tuning(
            &rules,
            &hl,
            DetectorConfig::default(),
            3,
            64,
            2,
        );
        pool.attach_telemetry(&scope).unwrap();
        let records = random_records(10_000, 21);
        pool.observe_records(&records).unwrap();
        pool.finish().unwrap();
        let snap = telemetry::global().snapshot().filtered("t_pool_unit");
        assert_eq!(snap.counter("t_pool_unit.records_in"), Some(10_000));
        let observed: u64 = (0..3)
            .map(|i| snap.counter(&format!("t_pool_unit.shard{i}.records_observed")).unwrap())
            .sum();
        assert_eq!(observed, 10_000, "every fed record observed by some shard");
        assert!(snap.counter("t_pool_unit.batches_shipped").unwrap() > 0);
        let created = snap.counter("t_pool_unit.buffers_created").unwrap();
        let recycled = snap.counter("t_pool_unit.buffers_recycled").unwrap();
        assert!(created >= 3, "startup buffers counted");
        assert!(recycled > 0, "tiny buffers at 10k records must recycle");
        for i in 0..3 {
            assert_eq!(
                telemetry::global().snapshot().gauge(&format!("t_pool_unit.shard{i}.queue_depth")),
                Some(0),
                "queues drained after finish"
            );
        }
        // Stats flow through reset's discard counter too.
        pool.observe_records(&records[..10]).unwrap();
        pool.reset().unwrap();
        let snap = telemetry::global().snapshot();
        assert_eq!(snap.counter("t_pool_unit.records_discarded"), Some(10));
    }

    #[test]
    fn reset_clears_all_shards() {
        let rules = ruleset(2);
        let hl = HitList::whole_window(&rules);
        let mut par = ShardedDetector::new(&rules, &hl, DetectorConfig::default(), 3);
        par.observe_batch(&random_records(2_000, 1)).unwrap();
        assert!(par.state_size().unwrap() > 0);
        par.reset().unwrap();
        assert_eq!(par.state_size().unwrap(), 0);
        assert!(par.detected_lines("X").unwrap().is_empty());
    }

    // ------------------------------------------------------------------
    // Crash safety
    // ------------------------------------------------------------------

    #[test]
    fn unsupervised_shard_death_is_a_typed_error_not_an_abort() {
        let rules = ruleset(2);
        let hl = HitList::whole_window(&rules);
        let mut pool = DetectorPool::new(&rules, &hl, DetectorConfig::default(), 3);
        pool.observe_records(&random_records(1_000, 4)).unwrap();
        pool.inject_panic(1, "injected crash").unwrap();
        let err = pool.finish().expect_err("dead shard must surface as Err");
        assert_eq!(err.shard, 1);
        assert_eq!(err.panic.as_deref(), Some("injected crash"));
        assert!(err.to_string().contains("shard 1"));
        assert!(err.to_string().contains("injected crash"));
        // The error is sticky for that shard, not fatal to the process.
        assert!(pool.finish().is_err());
    }

    #[test]
    fn supervised_recovery_is_byte_identical() {
        // Kill a shard mid-feed; the supervised pool must produce
        // exactly the detections of an uninterrupted run.
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(30_000, 17);

        let mut clean = DetectorPool::new(&rules, &hl, config, 4);
        clean.observe_records(&records).unwrap();
        clean.finish().unwrap();
        let want = (clean.detected_lines("X").unwrap(), clean.state_size().unwrap());

        for kill_at in [0usize, 10_000, 29_999] {
            let mut pool = DetectorPool::new(&rules, &hl, config, 4);
            pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
            pool.observe_records(&records[..kill_at]).unwrap();
            pool.inject_panic(2, "chaos kill").unwrap();
            pool.observe_records(&records[kill_at..]).unwrap();
            pool.finish().unwrap();
            let got = (pool.detected_lines("X").unwrap(), pool.state_size().unwrap());
            assert_eq!(got, want, "kill at {kill_at} diverges");
        }
    }

    #[test]
    fn supervised_recovery_with_mid_feed_checkpoints() {
        // Checkpoints between the kill points: replay starts from the
        // last checkpoint, not from zero, and stays byte-identical.
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(24_000, 23);

        let mut clean = DetectorPool::new(&rules, &hl, config, 3);
        clean.observe_records(&records).unwrap();
        clean.finish().unwrap();
        let want = clean.detected_lines("X").unwrap();

        let mut pool = DetectorPool::new(&rules, &hl, config, 3);
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
        for (i, piece) in records.chunks(4_000).enumerate() {
            pool.observe_records(piece).unwrap();
            if i % 2 == 0 {
                pool.checkpoint_all().unwrap();
            }
            if i == 3 {
                pool.inject_panic(0, "mid-feed kill").unwrap();
            }
        }
        pool.finish().unwrap();
        assert_eq!(pool.detected_lines("X").unwrap(), want);
    }

    #[test]
    fn replay_buffer_is_bounded_by_auto_checkpoints() {
        let rules = ruleset(4);
        let hl = HitList::whole_window(&rules);
        let mut pool = DetectorPool::new(&rules, &hl, DetectorConfig::default(), 2);
        let limit = 500usize;
        pool.enable_supervision(limit).unwrap();
        let records = random_records(20_000, 31);
        for piece in records.chunks(100) {
            pool.observe_records(piece).unwrap();
            // A shard's buffer can overshoot by at most one feed call
            // before the auto-checkpoint drains it.
            assert!(
                pool.replay_buffered() <= 2 * (limit + 100),
                "replay grew unbounded: {}",
                pool.replay_buffered()
            );
        }
        // Auto-checkpoints + kill still recover byte-identically.
        pool.inject_panic(1, "late kill").unwrap();
        pool.finish().unwrap();
        let mut clean = DetectorPool::new(&rules, &hl, DetectorConfig::default(), 2);
        clean.observe_records(&records).unwrap();
        clean.finish().unwrap();
        assert_eq!(
            pool.detected_lines("X").unwrap(),
            clean.detected_lines("X").unwrap()
        );
    }

    #[test]
    fn shard_states_round_trip_into_a_fresh_pool() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(12_000, 41);
        let split = 7_000;

        let mut whole = DetectorPool::new(&rules, &hl, config, 3);
        whole.observe_records(&records).unwrap();
        whole.finish().unwrap();
        let want = (whole.detected_lines("X").unwrap(), whole.state_size().unwrap());

        // First pool processes half, exports; a fresh pool restores and
        // finishes the rest — the CLI resume path in miniature.
        let mut first = DetectorPool::new(&rules, &hl, config, 3);
        first.observe_records(&records[..split]).unwrap();
        let states = first.shard_states().unwrap();
        drop(first);

        let mut second = DetectorPool::new(&rules, &hl, config, 3);
        second.restore_shard_states(&states).unwrap();
        second.observe_records(&records[split..]).unwrap();
        second.finish().unwrap();
        let got = (second.detected_lines("X").unwrap(), second.state_size().unwrap());
        assert_eq!(got, want);
    }

    #[test]
    fn supervised_set_hitlist_never_replays_across_a_swap() {
        // Kill a shard right after a hitlist swap: the replayed records
        // must be observed under the hitlist they were fed under.
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(10_000, 53);
        let split = 5_000;

        let run = |supervise: bool, kill: bool| {
            let mut pool = DetectorPool::new(&rules, &hl, config, 3);
            if supervise {
                pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
            }
            pool.observe_records(&records[..split]).unwrap();
            pool.set_hitlist(&hl).unwrap();
            if kill {
                pool.inject_panic(0, "post-swap kill").unwrap();
            }
            pool.observe_records(&records[split..]).unwrap();
            pool.finish().unwrap();
            pool.detected_lines("X").unwrap()
        };
        let want = run(false, false);
        assert_eq!(run(true, true), want);
    }

    #[test]
    fn shard_health_distinguishes_responsive_stalled_dead() {
        let rules = ruleset(2);
        let hl = HitList::whole_window(&rules);
        let mut pool = DetectorPool::new(&rules, &hl, DetectorConfig::default(), 3);
        pool.observe_records(&random_records(500, 71)).unwrap();
        assert_eq!(
            pool.shard_health(Duration::from_secs(5)),
            vec![ShardHealth::Responsive; 3],
            "healthy pool must probe responsive"
        );
        // Wedge shard 1: alive, channel connected, not answering. Kept
        // short — this shard is never respawned, so the pool's Drop
        // joins it and would wait out the whole stall.
        pool.inject_stall(1, Duration::from_secs(3)).unwrap();
        let health = pool.shard_health(Duration::from_millis(100));
        assert_eq!(health[0], ShardHealth::Responsive);
        assert_eq!(health[1], ShardHealth::Stalled);
        assert_eq!(health[2], ShardHealth::Responsive);
        assert_eq!(ShardHealth::Stalled.label(), "stalled");
        // Kill shard 2 and wait for the thread to actually exit.
        pool.inject_panic(2, "probe kill").unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let h = pool.shard_health(Duration::from_millis(50));
            if h[2] == ShardHealth::Dead {
                break;
            }
            assert!(Instant::now() < deadline, "shard 2 never probed dead: {h:?}");
        }
    }

    #[test]
    fn force_respawn_recovers_a_stalled_shard_byte_identically() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(20_000, 83);
        let split = 9_000;

        let mut clean = DetectorPool::new(&rules, &hl, config, 3);
        clean.observe_records(&records).unwrap();
        clean.finish().unwrap();
        let want = (clean.detected_lines("X").unwrap(), clean.state_size().unwrap());

        let mut pool = DetectorPool::new(&rules, &hl, config, 3);
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
        pool.observe_records(&records[..split]).unwrap();
        // Wedge a shard long enough that only a detaching respawn can
        // recover within the test's lifetime, then escalate exactly as
        // the daemon's watchdog would.
        pool.inject_stall(1, Duration::from_secs(600)).unwrap();
        assert_eq!(pool.shard_health(Duration::from_millis(100))[1], ShardHealth::Stalled);
        pool.force_respawn(1).unwrap();
        assert_eq!(
            pool.shard_health(Duration::from_secs(10))[1],
            ShardHealth::Responsive,
            "replacement shard must be live"
        );
        pool.observe_records(&records[split..]).unwrap();
        pool.finish().unwrap();
        let got = (pool.detected_lines("X").unwrap(), pool.state_size().unwrap());
        assert_eq!(got, want, "stalled-shard recovery diverges from clean run");
    }

    #[test]
    fn force_respawn_after_checkpoint_replays_only_the_tail() {
        let rules = ruleset(4);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(12_000, 97);

        let mut clean = DetectorPool::new(&rules, &hl, config, 2);
        clean.observe_records(&records).unwrap();
        clean.finish().unwrap();
        let want = clean.detected_lines("X").unwrap();

        let mut pool = DetectorPool::new(&rules, &hl, config, 2);
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
        pool.observe_records(&records[..6_000]).unwrap();
        pool.checkpoint_all().unwrap();
        pool.observe_records(&records[6_000..10_000]).unwrap();
        pool.inject_stall(0, Duration::from_secs(600)).unwrap();
        pool.force_respawn(0).unwrap();
        pool.observe_records(&records[10_000..]).unwrap();
        pool.finish().unwrap();
        assert_eq!(pool.detected_lines("X").unwrap(), want);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn recovery_telemetry_counts_restarts_and_replays() {
        telemetry::set_enabled(true);
        let rules = ruleset(4);
        let hl = HitList::whole_window(&rules);
        let before = telemetry::global().snapshot();
        let mut pool = DetectorPool::new(&rules, &hl, DetectorConfig::default(), 2);
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
        pool.observe_records(&random_records(2_000, 61)).unwrap();
        pool.inject_panic(0, "counted kill").unwrap();
        pool.finish().unwrap();
        let delta = telemetry::global().snapshot().delta_since(&before);
        assert!(delta.counter("checkpoint.shard_restarts").unwrap_or(0) >= 1);
        assert!(delta.counter("checkpoint.shard_checkpoints").unwrap_or(0) >= 2);
    }

    /// A fast policy for breaker tests: trips on the 3rd fast death,
    /// with negligible sleeps, and a window wide enough that test
    /// scheduling jitter can't reset the streak.
    fn fast_trip_policy() -> RespawnPolicy {
        RespawnPolicy {
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            fast_window: Duration::from_secs(600),
            trip_after: 3,
        }
    }

    #[test]
    fn crash_loop_trips_the_breaker_instead_of_respawning_unboundedly() {
        let rules = ruleset(4);
        let hl = HitList::whole_window(&rules);
        let mut pool = DetectorPool::new(&rules, &hl, DetectorConfig::default(), 2);
        pool.set_respawn_policy(fast_trip_policy());
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
        let records = random_records(4_000, 11);
        pool.observe_records(&records).unwrap();

        // Deterministic crash loop: every heal is followed by another
        // death. The 3rd fast death must open the breaker.
        let mut tripped = false;
        for _ in 0..10 {
            if pool.inject_panic(0, "poison record").is_err() {
                tripped = true;
                break;
            }
            if pool.finish().is_err() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "breaker never opened under a deterministic crash loop");
        let status = pool.shard_status();
        assert_eq!(status[0].status, ShardStatus::Degraded);
        assert_eq!(status[0].status.label(), "degraded");
        // Queries touching the degraded shard surface the breaker as a
        // typed error, not a hang or an abort.
        let err = pool.detected_lines("X").unwrap_err();
        assert!(
            err.panic.as_deref().unwrap_or("").contains("circuit breaker"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn degraded_shard_queues_then_sheds_with_exact_accounting() {
        let rules = ruleset(4);
        let hl = HitList::whole_window(&rules);
        let mut pool =
            DetectorPool::with_tuning(&rules, &hl, DetectorConfig::default(), 2, 64, 4);
        pool.set_respawn_policy(fast_trip_policy());
        pool.queue_limit = 200;
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();

        // Trip shard 0's breaker.
        for _ in 0..10 {
            if pool.inject_panic(0, "poison").is_err() || pool.finish().is_err() {
                break;
            }
        }
        assert_eq!(pool.shard_status()[0].status, ShardStatus::Degraded);

        // Feed records: shard 0's land in the bounded queue, then shed;
        // the other shard keeps absorbing normally.
        let records = random_records(20_000, 23);
        pool.observe_records(&records).unwrap();
        pool.flush().unwrap();
        let shard0: u64 =
            records.iter().filter(|r| shard_of(r.line, 2) == 0).count() as u64;
        let status = pool.shard_status();
        assert_eq!(status[0].queued, 200, "queue fills to its bound");
        assert_eq!(
            status[0].queued + status[0].shed,
            shard0,
            "every shard-0 record is either queued or shed — exact accounting"
        );
        assert_eq!(status[1].queued, 0);
        assert_eq!(status[1].shed, 0);
    }

    #[test]
    fn reset_breaker_recovers_the_shard_and_replays_its_queue() {
        let rules = ruleset(4);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(8_000, 41);

        let mut clean = DetectorPool::new(&rules, &hl, config, 2);
        clean.observe_records(&records).unwrap();
        clean.finish().unwrap();
        let want = (clean.detected_lines("X").unwrap(), clean.state_size().unwrap());

        let mut pool = DetectorPool::new(&rules, &hl, config, 2);
        pool.set_respawn_policy(fast_trip_policy());
        // Queue bound above the whole feed: nothing sheds, so recovery
        // can be byte-identical.
        pool.queue_limit = records.len();
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
        pool.observe_records(&records[..3_000]).unwrap();
        for _ in 0..10 {
            if pool.inject_panic(0, "poison").is_err() || pool.finish().is_err() {
                break;
            }
        }
        assert_eq!(pool.shard_status()[0].status, ShardStatus::Degraded);
        // Records fed while degraded queue for shard 0.
        pool.observe_records(&records[3_000..]).unwrap();
        // Operator reset: breaker closes, checkpoint + replay + queued
        // records land, detections equal the uninterrupted run.
        pool.reset_breaker(0).unwrap();
        pool.finish().unwrap();
        assert_eq!(pool.shard_status()[0].status, ShardStatus::Ok);
        assert_eq!(pool.shard_status()[0].queued, 0);
        let got = (pool.detected_lines("X").unwrap(), pool.state_size().unwrap());
        assert_eq!(got, want, "reset_breaker recovery diverges from clean run");
    }

    #[test]
    fn backoff_policy_delays_double_and_cap() {
        let p = RespawnPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            fast_window: Duration::from_secs(1),
            trip_after: 100,
        };
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(p.delay(7), Duration::from_millis(500), "capped");
        assert_eq!(p.delay(60), Duration::from_millis(500), "shift saturates");
    }

    #[test]
    fn slow_deaths_never_trip_the_breaker() {
        let p = RespawnPolicy {
            fast_window: Duration::from_millis(0),
            trip_after: 2,
            ..RespawnPolicy::default()
        };
        let mut b = BackoffState::default();
        let t0 = Instant::now();
        assert!(matches!(b.on_death(&p, t0), RespawnDecision::Backoff(_)));
        // Any later death is outside a zero-width fast window: streak
        // resets, so even trip_after=2 never opens the breaker.
        let t1 = t0 + Duration::from_millis(5);
        assert!(matches!(b.on_death(&p, t1), RespawnDecision::Backoff(_)));
        let t2 = t1 + Duration::from_millis(5);
        assert!(matches!(b.on_death(&p, t2), RespawnDecision::Backoff(_)));
        assert!(!b.tripped());
        assert_eq!(b.status_at(&p, t2 + Duration::from_millis(5)), ShardStatus::Ok);
    }
}
