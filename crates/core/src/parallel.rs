//! Sharded, multi-core detection.
//!
//! Per-line evidence is embarrassingly parallel: no record of line A ever
//! touches line B's state. The sharded detector exploits that — records
//! are partitioned by a hash of the (already anonymized) line id and each
//! shard runs an independent [`Detector`] on its own core. This is the
//! "minutes for millions of devices" configuration (§1); the
//! `parallel_detector` bench quantifies the speedup over one core.
//!
//! Semantics are *identical* to a single [`Detector`] fed the same
//! records: the equivalence test at the bottom of this module pins it.

use crate::detector::{Detector, DetectorConfig};
use crate::hitlist::HitList;
use crate::rules::RuleSet;
use haystack_net::AnonId;
use haystack_wild::WildRecord;

/// A detector sharded across worker threads.
#[derive(Debug)]
pub struct ShardedDetector<'r> {
    shards: Vec<Detector<'r>>,
}

fn shard_of(line: AnonId, n: usize) -> usize {
    // The anonymizer's output is already uniformly mixed; fold to a shard.
    (line.0 % n as u64) as usize
}

impl<'r> ShardedDetector<'r> {
    /// Create `workers` shards sharing one rule set and hitlist.
    pub fn new(rules: &'r RuleSet, hitlist: &HitList, config: DetectorConfig, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one shard");
        let shards = (0..workers)
            .map(|_| Detector::new(rules, hitlist.clone(), config))
            .collect();
        ShardedDetector { shards }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Swap the daily hitlist on every shard.
    pub fn set_hitlist(&mut self, hitlist: &HitList) {
        for s in &mut self.shards {
            s.set_hitlist(hitlist.clone());
        }
    }

    /// Process one batch of records across all shards in parallel.
    ///
    /// Records are partitioned by line hash; each shard's worker observes
    /// only its partition, so no locking is needed anywhere.
    pub fn observe_batch(&mut self, records: &[WildRecord]) {
        let n = self.shards.len();
        if n == 1 {
            for r in records {
                self.shards[0].observe_wild(r);
            }
            return;
        }
        // Partition indices per shard (cheap, cache-friendly single pass).
        let mut parts: Vec<Vec<&WildRecord>> =
            (0..n).map(|_| Vec::with_capacity(records.len() / n + 1)).collect();
        for r in records {
            parts[shard_of(r.line, n)].push(r);
        }
        crossbeam::thread::scope(|scope| {
            for (det, part) in self.shards.iter_mut().zip(parts) {
                scope.spawn(move |_| {
                    for r in part {
                        det.observe_wild(r);
                    }
                });
            }
        })
        .expect("detector worker panicked");
    }

    /// Whether `class` is detected for `line` (dispatches to the shard
    /// owning the line).
    pub fn is_detected(&self, line: AnonId, class: &str) -> bool {
        self.shards[shard_of(line, self.shards.len())].is_detected(line, class)
    }

    /// All lines for which `class` is detected, merged across shards.
    pub fn detected_lines(&self, class: &str) -> Vec<AnonId> {
        let mut out: Vec<AnonId> = self
            .shards
            .iter()
            .flat_map(|s| s.detected_lines(class))
            .collect();
        out.sort_unstable();
        out
    }

    /// Total per-(line, rule) states held across shards.
    pub fn state_size(&self) -> usize {
        self.shards.iter().map(Detector::state_size).sum()
    }

    /// Reset every shard (new aggregation window).
    pub fn reset(&mut self) {
        for s in &mut self.shards {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{DetectionRule, RuleDomain};
    use haystack_dns::DomainName;
    use haystack_net::ports::Proto;
    use haystack_net::{HourBin, Prefix4};
    use haystack_testbed::catalog::DetectionLevel;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::net::Ipv4Addr;

    fn ruleset(n: usize) -> RuleSet {
        RuleSet {
            rules: vec![DetectionRule {
                class: "X",
                level: DetectionLevel::Manufacturer,
                parent: None,
                domains: (0..n)
                    .map(|i| RuleDomain {
                        name: DomainName::parse(&format!("d{i}.x.com")).unwrap(),
                        ports: [443u16].into_iter().collect(),
                        ips: [Ipv4Addr::new(198, 18, 8, i as u8 + 1)].into_iter().collect(),
                        usage_indicator: false,
                    })
                    .collect(),
            }],
            undetectable: vec![],
        }
    }

    fn random_records(count: usize, seed: u64) -> Vec<WildRecord> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let src = Ipv4Addr::new(100, 64, rng.gen(), rng.gen());
                WildRecord {
                    line: AnonId(rng.gen_range(0..5_000)),
                    line_slash24: Prefix4::slash24_of(src),
                    src_ip: src,
                    dst: Ipv4Addr::new(198, 18, 8, rng.gen_range(1..10)),
                    dport: 443,
                    proto: Proto::Tcp,
                    packets: 1,
                    bytes: 100,
                    established: true,
                    hour: HourBin(rng.gen_range(0..24)),
                }
            })
            .collect()
    }

    #[test]
    fn sharded_equals_sequential() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(20_000, 3);

        let mut seq = Detector::new(&rules, hl.clone(), config);
        for r in &records {
            seq.observe_wild(r);
        }
        for workers in [1usize, 2, 4, 7] {
            let mut par = ShardedDetector::new(&rules, &hl, config, workers);
            par.observe_batch(&records);
            assert_eq!(
                par.detected_lines("X"),
                seq.detected_lines("X"),
                "{workers} workers diverge from sequential"
            );
            assert_eq!(par.state_size(), seq.state_size());
        }
    }

    #[test]
    fn per_line_dispatch_is_consistent() {
        let rules = ruleset(2);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig::default();
        let mut par = ShardedDetector::new(&rules, &hl, config, 4);
        let records = random_records(5_000, 9);
        par.observe_batch(&records);
        for line in par.detected_lines("X") {
            assert!(par.is_detected(line, "X"));
        }
    }

    #[test]
    fn reset_clears_all_shards() {
        let rules = ruleset(2);
        let hl = HitList::whole_window(&rules);
        let mut par = ShardedDetector::new(&rules, &hl, DetectorConfig::default(), 3);
        par.observe_batch(&random_records(2_000, 1));
        assert!(par.state_size() > 0);
        par.reset();
        assert_eq!(par.state_size(), 0);
        assert!(par.detected_lines("X").is_empty());
    }
}
