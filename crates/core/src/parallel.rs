//! Sharded, multi-core detection on a persistent worker pool.
//!
//! Per-line evidence is embarrassingly parallel: no record of line A ever
//! touches line B's state. [`DetectorPool`] exploits that — each worker
//! thread owns an independent [`Detector`] for the lines hashing to its
//! shard, and lives for the pool's whole lifetime. Records flow to
//! workers through bounded channels in recycled chunk-sized buffers, so
//! a steady-state hour costs **zero** allocations on the feed path and
//! peak resident memory is set by channel capacity, never by hour size.
//! This is the "minutes for millions of devices" configuration (§1); the
//! `parallel_detector` and `streaming_throughput` benches quantify it.
//!
//! Semantics are *identical* to a single [`Detector`] fed the same
//! records — the equivalence and determinism tests at the bottom of this
//! module pin it. Each line's records traverse exactly one FIFO channel
//! in feed order, and the detector's evidence fold is commutative across
//! lines, so any worker count produces the same detections.
//!
//! [`ShardedDetector`] remains as the legacy batch façade: one call
//! observes a batch and blocks until it is fully absorbed.

use crate::detector::{DetectionQuery, Detector, DetectorConfig};
use crate::hitlist::HitList;
use crate::rules::RuleSet;
use crate::telemetry::{self, Counter, Gauge, Histogram, HotStats, HotStatsCounters, Scope};
use haystack_net::{AnonId, HourBin};
use haystack_wild::{RecordChunk, RecordStream, WildRecord};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, Sender, SyncSender, TryRecvError, TrySendError,
};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Records per worker-bound buffer (the pool's internal chunk size).
pub const POOL_BATCH_RECORDS: usize = 1_024;

/// Bounded command-channel depth per worker, in batches. This is the
/// backpressure knob: a feeder outrunning the workers blocks after
/// `workers × POOL_CHANNEL_BATCHES` in-flight buffers.
pub const POOL_CHANNEL_BATCHES: usize = 4;

/// Route an anonymized line id to a shard.
///
/// Sequential or low-entropy ids stripe pathologically under a raw
/// `id % n` for some worker counts, so the id is first run through the
/// splitmix64 finalizer — every input bit diffuses into the shard
/// choice. The `shards_stay_balanced` test pins the distribution.
fn shard_of(line: AnonId, n: usize) -> usize {
    let mut z = line.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % n as u64) as usize
}

/// Per-shard telemetry handles, shipped to the worker thread when the
/// pool is instrumented.
#[derive(Debug, Clone)]
struct ShardTelemetry {
    /// Batches sent but not yet processed by this shard (shared with the
    /// feeder, which increments on send).
    queue_depth: Gauge,
    /// The shard detector's hot-path tallies, flushed per batch.
    hot: HotStatsCounters,
    /// Per-batch observe time, microseconds.
    batch_span_us: Histogram,
}

/// Commands a worker thread understands. Batches and queries share one
/// FIFO channel, so a query observes every batch sent before it.
enum Cmd {
    /// Observe a buffer of records; the cleared buffer is recycled back.
    Batch(Vec<WildRecord>),
    /// Install telemetry handles on this shard.
    Telemetry(ShardTelemetry),
    /// Swap the daily hitlist, keeping accumulated evidence.
    SetHitlist(HitList),
    /// Clear accumulated evidence.
    Reset,
    /// Reply when every prior command is processed.
    Barrier(Sender<()>),
    /// All detected lines for a class on this shard.
    DetectedLines(String, Sender<Vec<AnonId>>),
    /// Whether the class is detected for a line owned by this shard.
    IsDetected(AnonId, String, Sender<bool>),
    /// Graded confidence for (line, class) on the owning shard.
    Confidence(AnonId, String, Sender<f64>),
    /// First hour the gated detection held, on the owning shard.
    FirstDetection(AnonId, String, Sender<Option<HourBin>>),
    /// (line, rule) states held by this shard.
    StateSize(Sender<usize>),
}

struct Worker {
    tx: SyncSender<Cmd>,
    /// Cleared buffers coming back from the worker.
    recycle: Receiver<Vec<WildRecord>>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent pool of shard-owning detector workers.
///
/// Feed it records with [`DetectorPool::observe_records`] (or whole
/// streams with [`DetectorPool::observe_stream`]); call
/// [`DetectorPool::finish`] to barrier, then query. Queries flush the
/// staging buffers themselves, so forgetting an explicit flush can never
/// lose records.
#[derive(Debug)]
pub struct DetectorPool {
    workers: Vec<Worker>,
    /// Per-shard partial buffers, reused across calls (the allocation
    /// churn fix: nothing here is rebuilt per batch).
    staging: Vec<Vec<WildRecord>>,
    batch_records: usize,
    /// Chunk buffers ever allocated — the pool's peak resident buffer
    /// count, since buffers recycle instead of dropping.
    buffers_created: usize,
    /// Feeder-side telemetry, present only after
    /// [`DetectorPool::attach_telemetry`] on an enabled registry.
    telemetry: Option<FeederTelemetry>,
}

/// Feeder-side telemetry handles for an instrumented pool.
#[derive(Debug)]
struct FeederTelemetry {
    /// Records accepted by `observe_records`.
    records_in: Counter,
    /// Full or partial buffers shipped to workers.
    batches_shipped: Counter,
    /// Ships that found the shard's channel full and had to block — the
    /// backpressure signal.
    backpressure_stalls: Counter,
    /// Fresh buffer allocations (nothing came back on the recycle lane).
    buffers_created: Counter,
    /// Ships served by a recycled buffer.
    buffers_recycled: Counter,
    /// Staged records discarded by `reset` (they belong to the window
    /// being cleared). Keeps the conservation invariant exact:
    /// `records_in == Σ shard records_observed + records_discarded`.
    records_discarded: Counter,
    /// Per-shard in-flight batch gauges (shared with the workers, which
    /// decrement after processing).
    queue_depth: Vec<Gauge>,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").finish_non_exhaustive()
    }
}

impl DetectorPool {
    /// Spawn `workers` shard threads sharing one rule set and hitlist.
    pub fn new(rules: &RuleSet, hitlist: &HitList, config: DetectorConfig, workers: usize) -> Self {
        Self::with_tuning(rules, hitlist, config, workers, POOL_BATCH_RECORDS, POOL_CHANNEL_BATCHES)
    }

    /// [`DetectorPool::new`] with explicit buffer size and channel depth
    /// (benches sweep these).
    pub fn with_tuning(
        rules: &RuleSet,
        hitlist: &HitList,
        config: DetectorConfig,
        workers: usize,
        batch_records: usize,
        channel_batches: usize,
    ) -> Self {
        assert!(workers >= 1, "need at least one shard");
        let batch_records = batch_records.max(1);
        let rules = Arc::new(rules.clone());
        let workers = (0..workers)
            .map(|i| {
                let (tx, rx) = sync_channel::<Cmd>(channel_batches.max(1));
                let (recycle_tx, recycle) = channel::<Vec<WildRecord>>();
                let rules = Arc::clone(&rules);
                let hitlist = hitlist.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("detector-shard-{i}"))
                    .spawn(move || {
                        let mut det = Detector::new(&rules, hitlist, config);
                        let mut tel: Option<ShardTelemetry> = None;
                        let mut flushed = HotStats::default();
                        // Fold the detector's tallies accrued since the
                        // last flush into the shard's atomic counters —
                        // one set of adds per batch, not per record.
                        let flush_stats = |det: &Detector<'_>,
                                           tel: &Option<ShardTelemetry>,
                                           flushed: &mut HotStats| {
                            if let Some(t) = tel {
                                let now = det.hot_stats();
                                t.hot.flush(now.since(flushed));
                                *flushed = now;
                            }
                        };
                        while let Ok(cmd) = rx.recv() {
                            match cmd {
                                Cmd::Batch(mut buf) => {
                                    let span =
                                        tel.as_ref().map(|t| t.batch_span_us.start_span());
                                    det.observe_chunk(&buf);
                                    drop(span);
                                    if let Some(t) = &tel {
                                        t.queue_depth.dec();
                                    }
                                    flush_stats(&det, &tel, &mut flushed);
                                    buf.clear();
                                    // Feeder may be gone during teardown.
                                    let _ = recycle_tx.send(buf);
                                }
                                Cmd::Telemetry(t) => {
                                    tel = Some(t);
                                    flush_stats(&det, &tel, &mut flushed);
                                }
                                Cmd::SetHitlist(hl) => det.set_hitlist(hl),
                                Cmd::Reset => det.reset(),
                                Cmd::Barrier(reply) => {
                                    // Counters are exact at every barrier:
                                    // `finish()` syncs them for snapshots.
                                    flush_stats(&det, &tel, &mut flushed);
                                    let _ = reply.send(());
                                }
                                Cmd::DetectedLines(class, reply) => {
                                    let _ = reply.send(det.detected_lines(&class));
                                }
                                Cmd::IsDetected(line, class, reply) => {
                                    let _ = reply.send(det.is_detected(line, &class));
                                }
                                Cmd::Confidence(line, class, reply) => {
                                    let _ = reply.send(det.confidence(line, &class));
                                }
                                Cmd::FirstDetection(line, class, reply) => {
                                    let _ = reply.send(det.first_detection(line, &class));
                                }
                                Cmd::StateSize(reply) => {
                                    let _ = reply.send(det.state_size());
                                }
                            }
                        }
                    })
                    .expect("spawn detector shard");
                Worker { tx, recycle, handle: Some(handle) }
            })
            .collect::<Vec<_>>();
        let n = workers.len();
        DetectorPool {
            workers,
            staging: (0..n).map(|_| Vec::with_capacity(batch_records)).collect(),
            batch_records,
            buffers_created: n,
            telemetry: None,
        }
    }

    /// Instrument the pool under `scope`: feeder counters (`records_in`,
    /// `batches_shipped`, `backpressure_stalls`, buffer churn) plus
    /// per-shard sub-scopes (`shard0.queue_depth`,
    /// `shard0.records_observed`, `shard0.batch_span_us`, …). A no-op
    /// while telemetry is disabled, leaving the feed path byte-for-byte
    /// as before.
    pub fn attach_telemetry(&mut self, scope: &Scope) {
        if !telemetry::enabled() {
            return;
        }
        let feeder = FeederTelemetry {
            records_in: scope.counter("records_in"),
            batches_shipped: scope.counter("batches_shipped"),
            backpressure_stalls: scope.counter("backpressure_stalls"),
            buffers_created: scope.counter("buffers_created"),
            buffers_recycled: scope.counter("buffers_recycled"),
            records_discarded: scope.counter("records_discarded"),
            queue_depth: (0..self.workers.len())
                .map(|i| scope.sub(&format!("shard{i}")).gauge("queue_depth"))
                .collect(),
        };
        // The per-worker startup buffers predate instrumentation.
        feeder.buffers_created.add(self.buffers_created as u64);
        scope.gauge("workers").set(self.workers.len() as u64);
        for (i, w) in self.workers.iter().enumerate() {
            let sub = scope.sub(&format!("shard{i}"));
            let t = ShardTelemetry {
                queue_depth: feeder.queue_depth[i].clone(),
                hot: HotStatsCounters::new(&sub),
                batch_span_us: sub.histogram("batch_span_us"),
            };
            w.tx.send(Cmd::Telemetry(t)).expect("detector shard died");
        }
        self.telemetry = Some(feeder);
    }

    /// Number of shard workers.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Chunk buffers ever allocated by the pool — its peak resident
    /// buffer count (buffers recycle through the workers, never drop).
    pub fn buffers_created(&self) -> usize {
        self.buffers_created
    }

    /// A send buffer for `shard`: recycled if one came back, fresh
    /// otherwise.
    fn take_buffer(&mut self, shard: usize) -> Vec<WildRecord> {
        match self.workers[shard].recycle.try_recv() {
            Ok(buf) => {
                if let Some(t) = &self.telemetry {
                    t.buffers_recycled.inc();
                }
                buf
            }
            Err(TryRecvError::Empty) => {
                self.buffers_created += 1;
                if let Some(t) = &self.telemetry {
                    t.buffers_created.inc();
                }
                Vec::with_capacity(self.batch_records)
            }
            Err(TryRecvError::Disconnected) => panic!("detector shard {shard} died"),
        }
    }

    /// Ship `shard`'s staging buffer to its worker (blocking if the
    /// channel is full — this is the backpressure point).
    fn ship(&mut self, shard: usize) {
        if self.staging[shard].is_empty() {
            return;
        }
        let empty = self.take_buffer(shard);
        let full = std::mem::replace(&mut self.staging[shard], empty);
        let Some(t) = &self.telemetry else {
            self.workers[shard].tx.send(Cmd::Batch(full)).expect("detector shard died");
            return;
        };
        t.batches_shipped.inc();
        t.queue_depth[shard].inc();
        // Distinguish a clean send from one that had to block: the
        // stall counter is the backpressure signal operators watch.
        match self.workers[shard].tx.try_send(Cmd::Batch(full)) {
            Ok(()) => {}
            Err(TrySendError::Full(cmd)) => {
                t.backpressure_stalls.inc();
                self.workers[shard].tx.send(cmd).expect("detector shard died");
            }
            Err(TrySendError::Disconnected(_)) => panic!("detector shard {shard} died"),
        }
    }

    /// Observe records: partitioned to shards, shipped as buffers fill.
    pub fn observe_records(&mut self, records: &[WildRecord]) {
        if let Some(t) = &self.telemetry {
            t.records_in.add(records.len() as u64);
        }
        let n = self.workers.len();
        for r in records {
            let shard = shard_of(r.line, n);
            self.staging[shard].push(*r);
            if self.staging[shard].len() >= self.batch_records {
                self.ship(shard);
            }
        }
    }

    /// Drain a whole [`RecordStream`] through the pool, reusing one
    /// chunk buffer. Returns `(records, sampled_packets, degradation)`
    /// funnel totals folded over every chunk.
    pub fn observe_stream(
        &mut self,
        stream: &mut dyn RecordStream,
        chunk: &mut RecordChunk,
    ) -> (u64, u64, haystack_wild::FeedDegradation) {
        let mut records = 0u64;
        let mut packets = 0u64;
        let mut degradation = haystack_wild::FeedDegradation::default();
        while stream.next_chunk(chunk) {
            records += chunk.records.len() as u64;
            packets += chunk.sampled_packets;
            degradation.absorb(chunk.degradation);
            self.observe_records(&chunk.records);
        }
        (records, packets, degradation)
    }

    /// Push every partial staging buffer to its worker.
    pub fn flush(&mut self) {
        for shard in 0..self.workers.len() {
            self.ship(shard);
        }
    }

    /// Flush, then block until every worker has processed everything
    /// sent so far.
    pub fn finish(&mut self) {
        self.flush();
        let (tx, rx) = channel();
        for w in &self.workers {
            w.tx.send(Cmd::Barrier(tx.clone())).expect("detector shard died");
        }
        drop(tx);
        for _ in 0..self.workers.len() {
            rx.recv().expect("detector shard died");
        }
    }

    /// Swap the daily hitlist on every shard. Staged records are flushed
    /// first, so they are observed under the hitlist that was current
    /// when they were fed.
    pub fn set_hitlist(&mut self, hitlist: &HitList) {
        self.flush();
        for w in &self.workers {
            w.tx.send(Cmd::SetHitlist(hitlist.clone())).expect("detector shard died");
        }
    }

    /// Clear accumulated evidence (new aggregation window). Records still
    /// staged are discarded — they belong to the window being cleared.
    pub fn reset(&mut self) {
        if let Some(t) = &self.telemetry {
            t.records_discarded.add(self.staging.iter().map(Vec::len).sum::<usize>() as u64);
        }
        for s in &mut self.staging {
            s.clear();
        }
        for w in &self.workers {
            w.tx.send(Cmd::Reset).expect("detector shard died");
        }
    }

    /// All lines for which `class` is detected, merged across shards.
    pub fn detected_lines(&mut self, class: &str) -> Vec<AnonId> {
        self.flush();
        let (tx, rx) = channel();
        for w in &self.workers {
            w.tx.send(Cmd::DetectedLines(class.to_string(), tx.clone()))
                .expect("detector shard died");
        }
        drop(tx);
        let mut out: Vec<AnonId> = rx.iter().flatten().collect();
        out.sort_unstable();
        out
    }

    /// Whether `class` is detected for `line` (asks the owning shard).
    pub fn is_detected(&mut self, line: AnonId, class: &str) -> bool {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard);
        let (tx, rx) = channel();
        self.workers[shard]
            .tx
            .send(Cmd::IsDetected(line, class.to_string(), tx))
            .expect("detector shard died");
        rx.recv().expect("detector shard died")
    }

    /// Graded detection confidence for `(line, class)` in `[0, 1]`.
    pub fn confidence(&mut self, line: AnonId, class: &str) -> f64 {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard);
        let (tx, rx) = channel();
        self.workers[shard]
            .tx
            .send(Cmd::Confidence(line, class.to_string(), tx))
            .expect("detector shard died");
        rx.recv().expect("detector shard died")
    }

    /// First hour the full (hierarchy-gated) detection held for
    /// `(line, class)`.
    pub fn first_detection(&mut self, line: AnonId, class: &str) -> Option<HourBin> {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard);
        let (tx, rx) = channel();
        self.workers[shard]
            .tx
            .send(Cmd::FirstDetection(line, class.to_string(), tx))
            .expect("detector shard died");
        rx.recv().expect("detector shard died")
    }

    /// Total per-(line, rule) states held across shards.
    pub fn state_size(&mut self) -> usize {
        self.flush();
        let (tx, rx) = channel();
        for w in &self.workers {
            w.tx.send(Cmd::StateSize(tx.clone())).expect("detector shard died");
        }
        drop(tx);
        rx.iter().sum()
    }
}

impl DetectionQuery for DetectorPool {
    fn query_detected_lines(&mut self, class: &str) -> Vec<AnonId> {
        self.detected_lines(class)
    }
}

impl Drop for DetectorPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Closing the command channel ends the worker loop.
            let (tx, _) = sync_channel(1);
            drop(std::mem::replace(&mut w.tx, tx));
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

/// The legacy batch façade over [`DetectorPool`]: `observe_batch` blocks
/// until the batch is fully absorbed, preserving the old call-and-query
/// contract. New code should drive the pool (or a [`RecordStream`])
/// directly.
#[derive(Debug)]
pub struct ShardedDetector {
    pool: DetectorPool,
}

impl ShardedDetector {
    /// Create `workers` shards sharing one rule set and hitlist.
    pub fn new(rules: &RuleSet, hitlist: &HitList, config: DetectorConfig, workers: usize) -> Self {
        ShardedDetector { pool: DetectorPool::new(rules, hitlist, config, workers) }
    }

    /// Number of shards.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// The underlying pool (for streaming feeds and tuning knobs).
    pub fn pool_mut(&mut self) -> &mut DetectorPool {
        &mut self.pool
    }

    /// Swap the daily hitlist on every shard.
    pub fn set_hitlist(&mut self, hitlist: &HitList) {
        self.pool.set_hitlist(hitlist);
    }

    /// Process one batch of records across all shards, blocking until
    /// every record is absorbed.
    pub fn observe_batch(&mut self, records: &[WildRecord]) {
        self.pool.observe_records(records);
        self.pool.finish();
    }

    /// Whether `class` is detected for `line` (dispatches to the shard
    /// owning the line).
    pub fn is_detected(&mut self, line: AnonId, class: &str) -> bool {
        self.pool.is_detected(line, class)
    }

    /// All lines for which `class` is detected, merged across shards.
    pub fn detected_lines(&mut self, class: &str) -> Vec<AnonId> {
        self.pool.detected_lines(class)
    }

    /// Total per-(line, rule) states held across shards.
    pub fn state_size(&mut self) -> usize {
        self.pool.state_size()
    }

    /// Reset every shard (new aggregation window).
    pub fn reset(&mut self) {
        self.pool.reset();
    }
}

impl DetectionQuery for ShardedDetector {
    fn query_detected_lines(&mut self, class: &str) -> Vec<AnonId> {
        self.detected_lines(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{DetectionRule, RuleDomain};
    use haystack_dns::DomainName;
    use haystack_net::ports::Proto;
    use haystack_net::{HourBin, Prefix4};
    use haystack_testbed::catalog::DetectionLevel;
    use haystack_wild::VecStream;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::net::Ipv4Addr;

    fn ruleset(n: usize) -> RuleSet {
        RuleSet {
            rules: vec![DetectionRule {
                class: "X",
                level: DetectionLevel::Manufacturer,
                parent: None,
                domains: (0..n)
                    .map(|i| RuleDomain {
                        name: DomainName::parse(&format!("d{i}.x.com")).unwrap(),
                        ports: [443u16].into_iter().collect(),
                        ips: [Ipv4Addr::new(198, 18, 8, i as u8 + 1)].into_iter().collect(),
                        usage_indicator: false,
                    })
                    .collect(),
            }],
            undetectable: vec![],
        }
    }

    fn random_records(count: usize, seed: u64) -> Vec<WildRecord> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let src = Ipv4Addr::new(100, 64, rng.gen(), rng.gen());
                WildRecord {
                    line: AnonId(rng.gen_range(0..5_000)),
                    line_slash24: Prefix4::slash24_of(src),
                    src_ip: src,
                    dst: Ipv4Addr::new(198, 18, 8, rng.gen_range(1..10)),
                    dport: 443,
                    proto: Proto::Tcp,
                    packets: 1,
                    bytes: 100,
                    established: true,
                    hour: HourBin(rng.gen_range(0..24)),
                }
            })
            .collect()
    }

    #[test]
    fn sharded_equals_sequential() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(20_000, 3);

        let mut seq = Detector::new(&rules, hl.clone(), config);
        for r in &records {
            seq.observe_wild(r);
        }
        for workers in [1usize, 2, 4, 7] {
            let mut par = ShardedDetector::new(&rules, &hl, config, workers);
            par.observe_batch(&records);
            assert_eq!(
                par.detected_lines("X"),
                seq.detected_lines("X"),
                "{workers} workers diverge from sequential"
            );
            assert_eq!(par.state_size(), seq.state_size());
        }
    }

    #[test]
    fn same_feed_same_detections_for_1_2_8_workers() {
        // Determinism pin: the same record stream produces identical
        // detection sets (and state counts) for any worker count.
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(30_000, 11);
        let mut results = Vec::new();
        for workers in [1usize, 2, 8] {
            let mut pool = DetectorPool::new(&rules, &hl, config, workers);
            let mut chunk = RecordChunk::default();
            let mut stream = VecStream::new(records.clone(), 333);
            pool.observe_stream(&mut stream, &mut chunk);
            pool.finish();
            results.push((pool.detected_lines("X"), pool.state_size()));
        }
        assert_eq!(results[0], results[1], "2 workers diverge from 1");
        assert_eq!(results[0], results[2], "8 workers diverge from 1");
        assert!(!results[0].0.is_empty(), "test must detect something");
    }

    #[test]
    fn streamed_chunks_equal_one_batch() {
        let rules = ruleset(6);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let records = random_records(10_000, 5);

        let mut batched = ShardedDetector::new(&rules, &hl, config, 3);
        batched.observe_batch(&records);

        let mut streamed = DetectorPool::new(&rules, &hl, config, 3);
        for piece in records.chunks(17) {
            streamed.observe_records(piece);
        }
        streamed.finish();
        assert_eq!(streamed.detected_lines("X"), batched.detected_lines("X"));
    }

    #[test]
    fn queries_flush_staged_records() {
        // A query with records still staged must observe them.
        let rules = ruleset(1);
        let hl = HitList::whole_window(&rules);
        let mut pool = DetectorPool::new(&rules, &hl, DetectorConfig::default(), 2);
        let records = random_records(10, 8);
        pool.observe_records(&records); // far below POOL_BATCH_RECORDS
        assert!(pool.state_size() > 0, "staged records visible to queries");
        for line in pool.detected_lines("X") {
            assert!(pool.is_detected(line, "X"));
        }
    }

    #[test]
    fn buffer_count_is_bounded_by_channel_capacity_not_feed_size() {
        let rules = ruleset(1);
        let hl = HitList::whole_window(&rules);
        // Tiny buffers force constant shipping: 100k records → ~1000
        // buffer sends per shard, but the resident set stays bounded.
        let workers = 4;
        let channel_batches = 4;
        let mut pool = DetectorPool::with_tuning(
            &rules,
            &hl,
            DetectorConfig::default(),
            workers,
            100,
            channel_batches,
        );
        pool.observe_records(&random_records(100_000, 2));
        pool.finish();
        // Per shard: 1 staging + channel_batches in flight + 1 being
        // processed + 1 in the recycle queue.
        let bound = workers * (channel_batches + 3);
        assert!(
            pool.buffers_created() <= bound,
            "{} buffers for a 100k feed (bound {bound})",
            pool.buffers_created()
        );
    }

    #[test]
    fn shards_stay_balanced_for_sequential_ids() {
        // Raw `id % n` would put every id on shard id%n deterministically
        // fine — but sequential ids with stride equal to the worker count
        // stripe onto one shard. The mixed hash must spread any arithmetic
        // progression evenly.
        for workers in [2usize, 3, 4, 7, 8] {
            for stride in [1u64, 2, 4, 7, 8, 16] {
                let mut counts = vec![0usize; workers];
                let total = 8_000usize;
                for i in 0..total {
                    counts[shard_of(AnonId(i as u64 * stride), workers)] += 1;
                }
                let expect = total / workers;
                for (s, &c) in counts.iter().enumerate() {
                    assert!(
                        c > expect / 2 && c < expect * 2,
                        "workers {workers} stride {stride}: shard {s} holds {c}/{total}"
                    );
                }
            }
        }
    }

    #[test]
    fn per_line_dispatch_is_consistent() {
        let rules = ruleset(2);
        let hl = HitList::whole_window(&rules);
        let config = DetectorConfig::default();
        let mut par = ShardedDetector::new(&rules, &hl, config, 4);
        let records = random_records(5_000, 9);
        par.observe_batch(&records);
        for line in par.detected_lines("X") {
            assert!(par.is_detected(line, "X"));
        }
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn pool_telemetry_counts_are_conserved() {
        telemetry::set_enabled(true);
        let rules = ruleset(4);
        let hl = HitList::whole_window(&rules);
        let scope = Scope::named("t_pool_unit");
        let mut pool = DetectorPool::with_tuning(
            &rules,
            &hl,
            DetectorConfig::default(),
            3,
            64,
            2,
        );
        pool.attach_telemetry(&scope);
        let records = random_records(10_000, 21);
        pool.observe_records(&records);
        pool.finish();
        let snap = telemetry::global().snapshot().filtered("t_pool_unit");
        assert_eq!(snap.counter("t_pool_unit.records_in"), Some(10_000));
        let observed: u64 = (0..3)
            .map(|i| snap.counter(&format!("t_pool_unit.shard{i}.records_observed")).unwrap())
            .sum();
        assert_eq!(observed, 10_000, "every fed record observed by some shard");
        assert!(snap.counter("t_pool_unit.batches_shipped").unwrap() > 0);
        let created = snap.counter("t_pool_unit.buffers_created").unwrap();
        let recycled = snap.counter("t_pool_unit.buffers_recycled").unwrap();
        assert!(created >= 3, "startup buffers counted");
        assert!(recycled > 0, "tiny buffers at 10k records must recycle");
        for i in 0..3 {
            assert_eq!(
                telemetry::global().snapshot().gauge(&format!("t_pool_unit.shard{i}.queue_depth")),
                Some(0),
                "queues drained after finish"
            );
        }
        // Stats flow through reset's discard counter too.
        pool.observe_records(&records[..10]);
        pool.reset();
        let snap = telemetry::global().snapshot();
        assert_eq!(snap.counter("t_pool_unit.records_discarded"), Some(10));
    }

    #[test]
    fn reset_clears_all_shards() {
        let rules = ruleset(2);
        let hl = HitList::whole_window(&rules);
        let mut par = ShardedDetector::new(&rules, &hl, DetectorConfig::default(), 3);
        par.observe_batch(&random_records(2_000, 1));
        assert!(par.state_size() > 0);
        par.reset();
        assert_eq!(par.state_size(), 0);
        assert!(par.detected_lines("X").is_empty());
    }
}
