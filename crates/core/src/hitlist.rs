//! The daily hitlist: (service IP, port) → rule evidence index.
//!
//! Figure 7's output is a *daily* "Hitlist of IoT-Domains, IPs & Port
//! Numbers + Detection Rules": the IP side is re-derived every day from
//! passive DNS so DNS churn cannot strand the detector on stale
//! addresses. The hitlist is the only thing the per-record hot path
//! touches — one hash lookup per flow.

use crate::rules::RuleSet;
use haystack_dns::DnsDb;
use haystack_net::{DayBin, StudyWindow};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A compiled daily index.
///
/// ```
/// use haystack_core::hitlist::HitList;
/// use haystack_core::rules::{DetectionRule, RuleDomain, RuleSet};
/// use haystack_dns::DomainName;
/// use haystack_testbed::catalog::DetectionLevel;
///
/// let rules = RuleSet {
///     rules: vec![DetectionRule {
///         class: "Cam",
///         level: DetectionLevel::Manufacturer,
///         parent: None,
///         domains: vec![RuleDomain {
///             name: DomainName::parse("api.cam.com").unwrap(),
///             ports: [443u16].into_iter().collect(),
///             ips: ["198.18.0.7".parse().unwrap()].into_iter().collect(),
///             usage_indicator: false,
///         }],
///     }],
///     undetectable: vec![],
/// };
/// let hl = HitList::whole_window(&rules);
/// assert_eq!(hl.lookup("198.18.0.7".parse().unwrap(), 443), &[(0, 0)]);
/// assert!(hl.lookup("198.18.0.7".parse().unwrap(), 80).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct HitList {
    /// The day this hitlist is valid for.
    pub day: Option<DayBin>,
    index: HashMap<(Ipv4Addr, u16), Vec<(u16, u16)>>,
}

impl HitList {
    /// Build the hitlist for `day` from the rule set and passive DNS.
    /// Domains whose IPs came from the Censys expansion (static over the
    /// window) fall back to the rule's whole-window union when passive
    /// DNS has nothing for that day.
    pub fn for_day(rules: &RuleSet, dnsdb: &DnsDb, day: DayBin) -> HitList {
        let day_window = StudyWindow::days(day.0, day.0 + 1);
        let mut index: HashMap<(Ipv4Addr, u16), Vec<(u16, u16)>> = HashMap::new();
        for (ri, rule) in rules.rules.iter().enumerate() {
            for (di, dom) in rule.domains.iter().enumerate() {
                let daily = dnsdb.ips_of(&dom.name, &day_window);
                let ips: Box<dyn Iterator<Item = Ipv4Addr>> = if daily.is_empty() {
                    Box::new(dom.ips.iter().copied())
                } else {
                    Box::new(daily.into_iter())
                };
                for ip in ips {
                    for &port in &dom.ports {
                        index
                            .entry((ip, port))
                            .or_default()
                            .push((ri as u16, di as u16));
                    }
                }
            }
        }
        HitList { day: Some(day), index }
    }

    /// Build a whole-window hitlist from the rules' IP unions (used by
    /// the §5 crosscheck, which spans days).
    pub fn whole_window(rules: &RuleSet) -> HitList {
        let mut index: HashMap<(Ipv4Addr, u16), Vec<(u16, u16)>> = HashMap::new();
        for (ri, rule) in rules.rules.iter().enumerate() {
            for (di, dom) in rule.domains.iter().enumerate() {
                for &ip in &dom.ips {
                    for &port in &dom.ports {
                        index
                            .entry((ip, port))
                            .or_default()
                            .push((ri as u16, di as u16));
                    }
                }
            }
        }
        HitList { day: None, index }
    }

    /// The rule evidence entries matching a flow's (dst, port), if any.
    pub fn lookup(&self, dst: Ipv4Addr, port: u16) -> &[(u16, u16)] {
        self.index.get(&(dst, port)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of indexed (ip, port) combinations.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{DetectionRule, RuleDomain};
    use haystack_dns::DomainName;
    use haystack_testbed::catalog::DetectionLevel;
    use std::collections::BTreeSet;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 3, last)
    }

    fn ruleset() -> RuleSet {
        let dom = |name: &str, ips: &[u8], ports: &[u16]| RuleDomain {
            name: DomainName::parse(name).unwrap(),
            ports: ports.iter().copied().collect(),
            ips: ips.iter().map(|i| ip(*i)).collect(),
            usage_indicator: false,
        };
        RuleSet {
            rules: vec![
                DetectionRule {
                    class: "A",
                    level: DetectionLevel::Manufacturer,
                    parent: None,
                    domains: vec![dom("d0.a.com", &[1, 2], &[443]), dom("d1.a.com", &[3], &[8883])],
                },
                DetectionRule {
                    class: "B",
                    level: DetectionLevel::Product,
                    parent: None,
                    domains: vec![dom("d0.b.com", &[2], &[443])],
                },
            ],
            undetectable: vec![],
        }
    }

    #[test]
    fn whole_window_indexes_all_combos() {
        let hl = HitList::whole_window(&ruleset());
        assert_eq!(hl.lookup(ip(1), 443), &[(0, 0)]);
        assert_eq!(hl.lookup(ip(3), 8883), &[(0, 1)]);
        // ip(2):443 serves both rule A (domain 0) and rule B.
        let both: BTreeSet<_> = hl.lookup(ip(2), 443).iter().copied().collect();
        assert_eq!(both, [(0u16, 0u16), (1, 0)].into_iter().collect());
        // Wrong port → no match.
        assert!(hl.lookup(ip(1), 80).is_empty());
        assert!(hl.lookup(ip(9), 443).is_empty());
    }

    #[test]
    fn daily_hitlist_prefers_passive_dns_and_falls_back() {
        use haystack_dns::zone::RotationPolicy;
        use haystack_dns::{Resolver, ZoneDb};
        use haystack_net::SimTime;

        // Passive DNS knows d0.a.com maps to ip(7) on day 0 only.
        let mut z = ZoneDb::new();
        z.insert_pool(
            DomainName::parse("d0.a.com").unwrap(),
            vec![ip(7)],
            RotationPolicy::STABLE,
        );
        let r = Resolver::new(&z);
        let mut db = DnsDb::new();
        let res = r.resolve(&DomainName::parse("d0.a.com").unwrap(), SimTime(100)).unwrap();
        db.record_resolution(&res, SimTime(100));

        let rules = ruleset();
        let day0 = HitList::for_day(&rules, &db, DayBin(0));
        // Day 0: passive DNS wins for d0.a.com (ip 7, not the union 1,2).
        assert_eq!(day0.lookup(ip(7), 443), &[(0, 0)]);
        assert!(day0.lookup(ip(1), 443).is_empty());
        // d1.a.com has no passive-DNS rows → whole-window fallback.
        assert_eq!(day0.lookup(ip(3), 8883), &[(0, 1)]);

        // Day 1: nothing recorded → fallback everywhere.
        let day1 = HitList::for_day(&rules, &db, DayBin(1));
        assert_eq!(day1.lookup(ip(1), 443), &[(0, 0)]);
        assert!(day1.lookup(ip(7), 443).is_empty());
    }
}
