//! The daily hitlist: (service IP, port) → rule evidence index.
//!
//! Figure 7's output is a *daily* "Hitlist of IoT-Domains, IPs & Port
//! Numbers + Detection Rules": the IP side is re-derived every day from
//! passive DNS so DNS churn cannot strand the detector on stale
//! addresses. The hitlist is the only thing the per-record hot path
//! touches — one lookup per flow — so it is *compiled*: the
//! [`MapHitList`] builder collects entries in an ordinary `HashMap`, and
//! [`MapHitList::compile`] packs them into an open-addressing table
//! ([`HitList`]) whose probe is a single masked [`mix64`] of the packed
//! `(ip, port)` key. The common 1–2-entry case is stored *inline in the
//! slot* (no `Vec` pointer chase); shared-IP collisions spill into one
//! contiguous arena. `MapHitList` stays around as the equivalence oracle
//! — `tests/prop_hotpath.rs` pins `lookup` to it entry-for-entry.
//!
//! In the wild workload the overwhelming majority of records match **no**
//! rule, so the compiled table also carries a *fingerprint front gate*: a
//! power-of-two `u8` array where each inserted key sets one bit chosen by
//! the same [`mix64`] hash that indexes the probe table. A lookup tests
//! that single byte first — a non-matching record touches **one cache
//! line** and exits, instead of walking a linear-probe chain (≈ 2.5 slot
//! loads expected for an unsuccessful search at 50 % load). The gate is
//! one-sided: every inserted key sets its bit, so there are no false
//! negatives, and a false positive (≈ 3 %, see [`HitList::prefilter_pass`])
//! merely falls through to the full probe, which still answers exactly
//! like the oracle.

use crate::fasthash::mix64;
use crate::rules::RuleSet;
use haystack_dns::DnsDb;
use haystack_net::{DayBin, StudyWindow};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Pack a lookup key into one word: IP in the high 32 bits, port in the
/// low 16. The top 16 bits stay zero, so [`EMPTY_KEY`] can never be a
/// real key. The IP contributes its four octets in *native* byte order —
/// the key is an opaque in-memory encoding, and native order lets both
/// the scalar path and the batched gate loop use the raw 4-byte load
/// of an `Ipv4Addr` directly (no per-record byte swap).
#[inline]
fn pack(ip: Ipv4Addr, port: u16) -> u64 {
    (u64::from(u32::from_ne_bytes(ip.octets())) << 16) | u64::from(port)
}

/// Fingerprint-array byte index for a hashed key: bits 3.. of the hash,
/// masked to the (power-of-two) array length. Bits 0–2 pick the tag bit
/// within the byte ([`fp_tag`]), so index and tag use disjoint hash bits.
#[inline]
fn fp_index(h: u64, fp_len: usize) -> usize {
    ((h >> 3) as usize) & (fp_len - 1)
}

/// Fingerprint tag bit for a hashed key: one of the byte's 8 bits,
/// chosen by the low 3 hash bits.
#[inline]
fn fp_tag(h: u64) -> u8 {
    1u8 << (h & 7)
}

/// Branchless form of the gate test over a borrowed (non-empty,
/// power-of-two-length) fingerprint array: 1 if the bit is set, else 0.
/// The detector's fused gate pass uses this so the survivor emit can be
/// an unconditional store + conditional length bump — no branch to
/// mispredict, so the loop schedules as a straight line.
#[inline]
pub(crate) fn fp_bit(fp: &[u8], h: u64) -> u8 {
    (fp[fp_index(h, fp.len())] >> (h & 7)) & 1
}

/// Sentinel for an unoccupied probe slot (real keys are < 2⁴⁸).
const EMPTY_KEY: u64 = u64::MAX;

/// A builder-side entry list: one `(ip, port)` key and its
/// `(rule, domain)` evidence entries.
type KeyedEntries = ((Ipv4Addr, u16), Vec<(u16, u16)>);

/// Entries per slot stored inline before spilling to the arena.
const INLINE: usize = 2;

/// One compiled table slot: the evidence entries for a single key.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    /// Number of `(rule, domain)` entries under this key.
    count: u16,
    /// The entries themselves when `count <= INLINE`.
    inline: [(u16, u16); INLINE],
    /// Arena offset of the entries when `count > INLINE`.
    spill: u32,
}

/// The naive `HashMap`-backed hitlist: the builder for the compiled
/// [`HitList`] and the reference oracle the equivalence tests probe
/// against. Not used on the per-record hot path.
#[derive(Debug, Clone, Default)]
pub struct MapHitList {
    /// The day this hitlist is valid for.
    pub day: Option<DayBin>,
    index: HashMap<(Ipv4Addr, u16), Vec<(u16, u16)>>,
}

impl MapHitList {
    /// Build the hitlist for `day` from the rule set and passive DNS.
    /// Domains whose IPs came from the Censys expansion (static over the
    /// window) fall back to the rule's whole-window union when passive
    /// DNS has nothing for that day.
    pub fn for_day(rules: &RuleSet, dnsdb: &DnsDb, day: DayBin) -> MapHitList {
        let day_window = StudyWindow::days(day.0, day.0 + 1);
        let mut index: HashMap<(Ipv4Addr, u16), Vec<(u16, u16)>> = HashMap::new();
        for (ri, rule) in rules.rules.iter().enumerate() {
            for (di, dom) in rule.domains.iter().enumerate() {
                let mut add = |ip: Ipv4Addr| {
                    for &port in &dom.ports {
                        index.entry((ip, port)).or_default().push((ri as u16, di as u16));
                    }
                };
                let daily = dnsdb.ips_of(&dom.name, &day_window);
                if daily.is_empty() {
                    for &ip in &dom.ips {
                        add(ip);
                    }
                } else {
                    for ip in daily {
                        add(ip);
                    }
                }
            }
        }
        MapHitList { day: Some(day), index }
    }

    /// Build a whole-window hitlist from the rules' IP unions (used by
    /// the §5 crosscheck, which spans days).
    pub fn whole_window(rules: &RuleSet) -> MapHitList {
        let mut index: HashMap<(Ipv4Addr, u16), Vec<(u16, u16)>> = HashMap::new();
        for (ri, rule) in rules.rules.iter().enumerate() {
            for (di, dom) in rule.domains.iter().enumerate() {
                for &ip in &dom.ips {
                    for &port in &dom.ports {
                        index.entry((ip, port)).or_default().push((ri as u16, di as u16));
                    }
                }
            }
        }
        MapHitList { day: None, index }
    }

    /// The rule evidence entries matching a flow's (dst, port), if any.
    pub fn lookup(&self, dst: Ipv4Addr, port: u16) -> &[(u16, u16)] {
        self.index.get(&(dst, port)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of indexed (ip, port) combinations.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Compile into the open-addressing [`HitList`] the detector probes.
    pub fn compile(self) -> HitList {
        let n = self.index.len();
        if n == 0 {
            return HitList { day: self.day, ..HitList::default() };
        }
        // ≤ 50 % load keeps linear-probe chains short.
        let cap = (n * 2).next_power_of_two().max(8);
        let mask = cap - 1;
        let mut keys = vec![EMPTY_KEY; cap];
        let mut slots = vec![Slot::default(); cap];
        let mut spill: Vec<(u16, u16)> = Vec::new();
        // Fingerprint gate: 2 bytes (16 bits) per table slot, so ≥ 32
        // one-bit fingerprints per occupied key at ≤ 50 % load — a ≈ 3 %
        // false-positive ceiling. Bit-OR insertion is commutative, so the
        // gate layout is deterministic like the rest of the table.
        let fp_len = (cap * 2).max(64);
        let mut fp = vec![0u8; fp_len];
        // Sort by packed key so the compiled layout is independent of
        // HashMap iteration order (probe displacement, spill offsets).
        let mut items: Vec<KeyedEntries> = self.index.into_iter().collect();
        items.sort_unstable_by_key(|&((ip, port), _)| pack(ip, port));
        for ((ip, port), entries) in items {
            let key = pack(ip, port);
            let h = mix64(key);
            fp[fp_index(h, fp_len)] |= fp_tag(h);
            let mut i = (h as usize) & mask;
            while keys[i] != EMPTY_KEY {
                i = (i + 1) & mask;
            }
            keys[i] = key;
            let mut slot = Slot { count: entries.len() as u16, ..Slot::default() };
            if entries.len() <= INLINE {
                slot.inline[..entries.len()].copy_from_slice(&entries);
            } else {
                slot.spill = spill.len() as u32;
                spill.extend_from_slice(&entries);
            }
            slots[i] = slot;
        }
        HitList {
            day: self.day,
            keys: keys.into_boxed_slice(),
            slots: slots.into_boxed_slice(),
            spill: spill.into_boxed_slice(),
            fp: fp.into_boxed_slice(),
            len: n,
        }
    }
}

/// A compiled daily index: one open-addressing probe per lookup.
///
/// ```
/// use haystack_core::hitlist::HitList;
/// use haystack_core::rules::{RuleDomain, RuleSetBuilder};
/// use haystack_dns::DomainName;
/// use haystack_testbed::catalog::DetectionLevel;
///
/// let mut b = RuleSetBuilder::new();
/// b.rule(
///     "Cam",
///     DetectionLevel::Manufacturer,
///     None,
///     vec![RuleDomain {
///         name: DomainName::parse("api.cam.com").unwrap(),
///         ports: [443u16].into_iter().collect(),
///         ips: ["198.18.0.7".parse().unwrap()].into_iter().collect(),
///         usage_indicator: false,
///     }],
/// );
/// let rules = b.build();
/// let hl = HitList::whole_window(&rules);
/// assert_eq!(hl.lookup("198.18.0.7".parse().unwrap(), 443), &[(0, 0)]);
/// assert!(hl.lookup("198.18.0.7".parse().unwrap(), 80).is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct HitList {
    /// The day this hitlist is valid for.
    pub day: Option<DayBin>,
    /// Probe array: packed keys (or [`EMPTY_KEY`]), power-of-two sized.
    keys: Box<[u64]>,
    /// Entry storage parallel to `keys`.
    slots: Box<[Slot]>,
    /// Overflow arena for keys with more than [`INLINE`] entries.
    spill: Box<[(u16, u16)]>,
    /// Fingerprint front gate: power-of-two byte array, one bit set per
    /// inserted key ([`fp_index`]/[`fp_tag`] of its [`mix64`] hash).
    /// Empty iff the table is empty.
    fp: Box<[u8]>,
    /// Number of occupied keys.
    len: usize,
}

impl HitList {
    /// Build and compile the hitlist for `day` (see
    /// [`MapHitList::for_day`] for the derivation rules).
    pub fn for_day(rules: &RuleSet, dnsdb: &DnsDb, day: DayBin) -> HitList {
        MapHitList::for_day(rules, dnsdb, day).compile()
    }

    /// Build and compile a whole-window hitlist from the rules' IP
    /// unions (used by the §5 crosscheck, which spans days).
    pub fn whole_window(rules: &RuleSet) -> HitList {
        MapHitList::whole_window(rules).compile()
    }

    /// Pack a `(dst, port)` pair into the table's one-word key (IP in
    /// the high 32 bits, port in the low 16). Callers batching lookups
    /// pack and [`mix64`]-hash whole chunks up front, then drive
    /// [`HitList::prefilter_pass`] / [`HitList::lookup_hashed`].
    #[inline]
    pub fn pack_key(dst: Ipv4Addr, port: u16) -> u64 {
        pack(dst, port)
    }

    /// The fingerprint front gate: does the hashed key's fingerprint bit
    /// exist in the table? `h` must be `mix64(pack_key(dst, port))`.
    ///
    /// One byte load, one AND — a `false` answer proves the key is
    /// absent (no false negatives: compile sets every inserted key's
    /// bit). A `true` answer is probabilistic: with 16 gate bits per
    /// table slot and the table at ≤ 50 % load, a random absent key
    /// draws one of ≥ 32 bits per present key, so the false-positive
    /// rate is ≤ ~3 % — those fall through to the full probe and still
    /// resolve to "no entries".
    #[inline]
    pub fn prefilter_pass(&self, h: u64) -> bool {
        if self.fp.is_empty() {
            return false;
        }
        self.fp[fp_index(h, self.fp.len())] & fp_tag(h) != 0
    }

    /// The raw fingerprint bytes (empty iff the table is empty) — the
    /// detector's batched gate pass borrows these once per block and
    /// tests bits via [`fp_bit`] instead of paying the emptiness branch
    /// per record.
    #[inline]
    pub(crate) fn prefilter(&self) -> &[u8] {
        &self.fp
    }

    /// The full probe for a pre-packed, pre-hashed key: one masked probe
    /// (rarely more — the table is kept at ≤ 50 % load), and the 1–2
    /// entry common case is read straight out of the slot. Callers are
    /// expected to have consulted [`HitList::prefilter_pass`] first;
    /// skipping the gate is correct, just slower on misses.
    #[inline]
    pub fn lookup_hashed(&self, key: u64, h: u64) -> &[(u16, u16)] {
        if self.keys.is_empty() {
            return &[];
        }
        let mask = self.keys.len() - 1;
        let mut i = (h as usize) & mask;
        loop {
            let k = self.keys[i];
            if k == key {
                let slot = &self.slots[i];
                let count = slot.count as usize;
                return if count <= INLINE {
                    &slot.inline[..count]
                } else {
                    &self.spill[slot.spill as usize..slot.spill as usize + count]
                };
            }
            if k == EMPTY_KEY {
                return &[];
            }
            i = (i + 1) & mask;
        }
    }

    /// The rule evidence entries matching a flow's (dst, port), if any.
    ///
    /// This is the per-record hot path: one [`mix64`], one fingerprint
    /// byte test (which retires the no-match majority on a single cache
    /// line), and — for the gate's survivors — one masked table probe.
    #[inline]
    pub fn lookup(&self, dst: Ipv4Addr, port: u16) -> &[(u16, u16)] {
        let key = pack(dst, port);
        let h = mix64(key);
        if !self.prefilter_pass(h) {
            return &[];
        }
        self.lookup_hashed(key, h)
    }

    /// [`HitList::lookup`] without the fingerprint gate: the pre-gate
    /// (PR 3) probe path, kept as the differential comparator the
    /// miss-rate benches and the gate's equivalence tests measure
    /// against. Answers identically to `lookup` — the gate only short-
    /// circuits keys the probe would reject anyway.
    #[inline]
    pub fn lookup_ungated(&self, dst: Ipv4Addr, port: u16) -> &[(u16, u16)] {
        let key = pack(dst, port);
        self.lookup_hashed(key, mix64(key))
    }

    /// Size of the fingerprint gate array in bytes (0 for an empty
    /// table). Published as a telemetry gauge alongside the entry count.
    pub fn prefilter_len(&self) -> usize {
        self.fp.len()
    }

    /// Number of indexed (ip, port) combinations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleDomain, RuleSetBuilder};
    use haystack_dns::DomainName;
    use haystack_testbed::catalog::DetectionLevel;
    use std::collections::BTreeSet;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 3, last)
    }

    fn ruleset() -> RuleSet {
        let dom = |name: &str, ips: &[u8], ports: &[u16]| RuleDomain {
            name: DomainName::parse(name).unwrap(),
            ports: ports.iter().copied().collect(),
            ips: ips.iter().map(|i| ip(*i)).collect(),
            usage_indicator: false,
        };
        let mut b = RuleSetBuilder::new();
        b.rule(
            "A",
            DetectionLevel::Manufacturer,
            None,
            vec![dom("d0.a.com", &[1, 2], &[443]), dom("d1.a.com", &[3], &[8883])],
        );
        b.rule("B", DetectionLevel::Product, None, vec![dom("d0.b.com", &[2], &[443])]);
        b.build()
    }

    #[test]
    fn whole_window_indexes_all_combos() {
        let hl = HitList::whole_window(&ruleset());
        assert_eq!(hl.lookup(ip(1), 443), &[(0, 0)]);
        assert_eq!(hl.lookup(ip(3), 8883), &[(0, 1)]);
        // ip(2):443 serves both rule A (domain 0) and rule B.
        let both: BTreeSet<_> = hl.lookup(ip(2), 443).iter().copied().collect();
        assert_eq!(both, [(0u16, 0u16), (1, 0)].into_iter().collect());
        // Wrong port → no match.
        assert!(hl.lookup(ip(1), 80).is_empty());
        assert!(hl.lookup(ip(9), 443).is_empty());
    }

    #[test]
    fn compiled_agrees_with_map_oracle() {
        let rules = ruleset();
        let map = MapHitList::whole_window(&rules);
        let compiled = map.clone().compile();
        assert_eq!(map.len(), compiled.len());
        for o in 0u8..=255 {
            for port in [443u16, 80, 8883, 123] {
                assert_eq!(
                    compiled.lookup(ip(o), port),
                    map.lookup(ip(o), port),
                    "divergence at {o}:{port}"
                );
            }
        }
    }

    #[test]
    fn spill_arena_serves_wide_keys() {
        // One (ip, port) shared by many (rule, domain) pairs must spill
        // past the inline slots and still return every entry in order.
        let shared = ip(77);
        let mut b = RuleSetBuilder::new();
        for ri in 0..5 {
            b.rule(
                &format!("S{ri}"),
                DetectionLevel::Manufacturer,
                None,
                vec![RuleDomain {
                    name: DomainName::parse(&format!("d.s{ri}.com")).unwrap(),
                    ports: [443u16].into_iter().collect(),
                    ips: [shared].into_iter().collect(),
                    usage_indicator: false,
                }],
            );
        }
        let rules = b.build();
        let hl = HitList::whole_window(&rules);
        assert_eq!(hl.lookup(shared, 443), &[(0, 0), (1, 0), (2, 0), (3, 0), (4, 0)]);
        assert!(hl.lookup(shared, 80).is_empty());
    }

    #[test]
    fn empty_hitlist_rejects_everything() {
        let hl = HitList::default();
        assert!(hl.is_empty());
        assert_eq!(hl.len(), 0);
        assert_eq!(hl.prefilter_len(), 0);
        assert!(hl.lookup(ip(1), 443).is_empty());
        assert!(!hl.prefilter_pass(mix64(HitList::pack_key(ip(1), 443))));
        assert!(hl.lookup_hashed(HitList::pack_key(ip(1), 443), 0).is_empty());
    }

    #[test]
    fn prefilter_admits_every_indexed_key() {
        // No false negatives: every key the table holds passes the gate,
        // and the gated lookup answers exactly like the ungated probe —
        // for hits, misses, and the gate's own false positives alike.
        let rules = ruleset();
        let hl = HitList::whole_window(&rules);
        assert!(hl.prefilter_len().is_power_of_two());
        let mut hits = 0;
        for o in 0u8..=255 {
            for port in [443u16, 80, 8883, 123] {
                let entries = hl.lookup_ungated(ip(o), port);
                assert_eq!(hl.lookup(ip(o), port), entries, "gate changed {o}:{port}");
                if !entries.is_empty() {
                    hits += 1;
                    let h = mix64(HitList::pack_key(ip(o), port));
                    assert!(hl.prefilter_pass(h), "false negative at {o}:{port}");
                }
            }
        }
        assert!(hits > 0, "ruleset must index something");
    }

    #[test]
    fn daily_hitlist_prefers_passive_dns_and_falls_back() {
        use haystack_dns::zone::RotationPolicy;
        use haystack_dns::{Resolver, ZoneDb};
        use haystack_net::SimTime;

        // Passive DNS knows d0.a.com maps to ip(7) on day 0 only.
        let mut z = ZoneDb::new();
        z.insert_pool(
            DomainName::parse("d0.a.com").unwrap(),
            vec![ip(7)],
            RotationPolicy::STABLE,
        );
        let r = Resolver::new(&z);
        let mut db = DnsDb::new();
        let res = r.resolve(&DomainName::parse("d0.a.com").unwrap(), SimTime(100)).unwrap();
        db.record_resolution(&res, SimTime(100));

        let rules = ruleset();
        let day0 = HitList::for_day(&rules, &db, DayBin(0));
        // Day 0: passive DNS wins for d0.a.com (ip 7, not the union 1,2).
        assert_eq!(day0.lookup(ip(7), 443), &[(0, 0)]);
        assert!(day0.lookup(ip(1), 443).is_empty());
        // d1.a.com has no passive-DNS rows → whole-window fallback.
        assert_eq!(day0.lookup(ip(3), 8883), &[(0, 1)]);

        // Day 1: nothing recorded → fallback everywhere.
        let day1 = HitList::for_day(&rules, &db, DayBin(1));
        assert_eq!(day1.lookup(ip(1), 443), &[(0, 0)]);
        assert!(day1.lookup(ip(7), 443).is_empty());
    }
}
