//! §4.1 — classifying observed domains.
//!
//! > *"We classify each domain name from our idle and active experiments
//! > using pattern matching, manual inspection, and by visiting their
//! > websites and those of the device manufacturers."*
//!
//! The paper's manual steps are modelled by [`WebIntelligence`]: an
//! analyst-knowledge oracle answering "is this SLD a well-known generic
//! service?" — the one question a human answers by visiting the site.
//! Everything else is derived from traffic:
//!
//! * **Generic** — a known-generic SLD, a public-service port (NTP/DNS),
//!   or a domain contacted by devices of several unrelated families
//!   (`netflix.com`-style properties every TV touches).
//! * **Primary** — contacted by a single device family on the family's
//!   own SLD.
//! * **Support** — contacted by a single family but registered under a
//!   third party's SLD (the `samsung-*.whisk.com` example).

use crate::observations::DomainUsage;
use haystack_dns::DomainName;
use haystack_testbed::catalog::Catalog;
use std::collections::BTreeSet;

/// §4.1's three buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainClass {
    /// IoT-specific, registered to the manufacturer / service operator.
    Primary,
    /// IoT-specific, complementary third-party service.
    Support,
    /// Generic service; dropped from further consideration.
    Generic,
}

/// Analyst knowledge about well-known generic services (the "manual
/// inspection" of §4.1). Implementations answer for the *SLD*.
pub trait WebIntelligence {
    /// Whether the SLD belongs to a well-known generic service provider.
    fn is_known_generic(&self, sld: &DomainName) -> bool;
}

/// A static SLD list — what an analyst's notebook of "obviously not IoT"
/// sites looks like.
#[derive(Debug, Default, Clone)]
pub struct StaticWebIntelligence {
    known_generic: BTreeSet<DomainName>,
}

impl StaticWebIntelligence {
    /// Build from a list of generic SLDs.
    pub fn new(slds: impl IntoIterator<Item = DomainName>) -> Self {
        StaticWebIntelligence { known_generic: slds.into_iter().collect() }
    }

    /// The analyst list for the synthetic universe: the SLDs of the
    /// catalog's generic domains (public NTP pool, streaming, search, ads,
    /// OS updates, wikis). Note this does *not* leak per-domain hosting or
    /// class truth — only "this SLD is a famous generic site".
    pub fn for_catalog(catalog: &Catalog) -> Self {
        Self::new(catalog.generic_domains.iter().map(|d| d.name.sld()))
    }
}

impl WebIntelligence for StaticWebIntelligence {
    fn is_known_generic(&self, sld: &DomainName) -> bool {
        self.known_generic.contains(sld)
    }
}

/// How many *unrelated* device families contact a domain before it is
/// considered generic plumbing rather than a manufacturer backend.
pub const UNRELATED_FAMILY_LIMIT: usize = 3;

/// Group the classes contacting a domain into hierarchy families using
/// the analyst's device knowledge (§4.3 uses the same side information).
fn family_count(catalog: &Catalog, classes: &BTreeSet<&'static str>) -> usize {
    let mut roots: BTreeSet<&'static str> = BTreeSet::new();
    for c in classes {
        let ancestry = catalog.ancestry(c);
        let root = ancestry.last().map(|k| k.name).unwrap_or(c);
        roots.insert(root);
    }
    roots.len()
}

/// Classify one observed domain.
pub fn classify(
    catalog: &Catalog,
    intel: &impl WebIntelligence,
    name: &DomainName,
    usage: &DomainUsage,
    majority_sld: Option<&DomainName>,
) -> DomainClass {
    if intel.is_known_generic(&name.sld()) {
        return DomainClass::Generic;
    }
    if usage.ports.iter().all(|p| *p == 123 || *p == 53) {
        // Pure time/name service traffic.
        return DomainClass::Generic;
    }
    if family_count(catalog, &usage.classes) >= UNRELATED_FAMILY_LIMIT {
        return DomainClass::Generic;
    }
    match majority_sld {
        Some(sld) if name.sld() == *sld => DomainClass::Primary,
        Some(_) => DomainClass::Support,
        // No family majority computable (e.g. the family contacts only
        // this domain): default to Primary, as the paper does for
        // single-domain devices.
        None => DomainClass::Primary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_testbed::catalog::data::standard_catalog;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn usage(classes: &[&'static str], ports: &[u16]) -> DomainUsage {
        DomainUsage {
            classes: classes.iter().copied().collect(),
            ports: ports.iter().copied().collect(),
            packets: 1_000,
            packets_active: 600,
            packets_idle: 400,
            seed_ips: Default::default(),
            active_hours: 10,
        }
    }

    #[test]
    fn known_generic_sld_wins() {
        let c = standard_catalog();
        let intel = StaticWebIntelligence::for_catalog(&c);
        let cls = classify(
            &c,
            &intel,
            &d("cdn3.videostream.tv"),
            &usage(&["Fire TV"], &[443]),
            Some(&d("amazon-iot.com")),
        );
        assert_eq!(cls, DomainClass::Generic);
    }

    #[test]
    fn ntp_only_traffic_is_generic() {
        let c = standard_catalog();
        let intel = StaticWebIntelligence::new([]);
        let cls = classify(
            &c,
            &intel,
            &d("clock.unknown-pool.net"),
            &usage(&["Yi Camera"], &[123]),
            Some(&d("yi-iot.com")),
        );
        assert_eq!(cls, DomainClass::Generic);
    }

    #[test]
    fn many_unrelated_families_make_generic() {
        let c = standard_catalog();
        let intel = StaticWebIntelligence::new([]);
        let cls = classify(
            &c,
            &intel,
            &d("g7.unlisted-metrics.com"),
            &usage(&["Yi Camera", "Roku TV", "Philips Dev."], &[443]),
            None,
        );
        assert_eq!(cls, DomainClass::Generic);
    }

    #[test]
    fn hierarchy_family_counts_once() {
        let c = standard_catalog();
        let intel = StaticWebIntelligence::new([]);
        // Alexa Enabled + Amazon Product + Fire TV = one family.
        let cls = classify(
            &c,
            &intel,
            &d("d3.amazon-iot.com"),
            &usage(&["Alexa Enabled", "Amazon Product", "Fire TV"], &[443]),
            Some(&d("amazon-iot.com")),
        );
        assert_eq!(cls, DomainClass::Primary);
    }

    #[test]
    fn own_sld_is_primary_foreign_sld_is_support() {
        let c = standard_catalog();
        let intel = StaticWebIntelligence::new([]);
        let majority = d("samsung-iot.com");
        assert_eq!(
            classify(&c, &intel, &d("d2.samsung-iot.com"), &usage(&["Samsung IoT"], &[443]), Some(&majority)),
            DomainClass::Primary
        );
        assert_eq!(
            classify(&c, &intel, &d("samsung0.svc-partner0.com"), &usage(&["Samsung IoT"], &[443]), Some(&majority)),
            DomainClass::Support
        );
    }

    #[test]
    fn single_domain_device_defaults_primary() {
        let c = standard_catalog();
        let intel = StaticWebIntelligence::new([]);
        assert_eq!(
            classify(&c, &intel, &d("d0.anova-iot.com"), &usage(&["Anova Sousvide"], &[443]), None),
            DomainClass::Primary
        );
    }
}
