//! Ground-truth domain usage, aggregated from the Home-VP capture.
//!
//! The testbed knows which instance (and therefore which detection class)
//! produced each packet and which domain it was headed to — the
//! attribution that only exists at the Home-VP (§2). Everything §4
//! consumes about a domain is collapsed into one [`DomainUsage`] row.

use haystack_dns::DomainName;
use haystack_testbed::{ExperimentDriver, GroundTruthPacket};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Aggregated ground-truth knowledge about one observed domain.
#[derive(Debug, Clone, Default)]
pub struct DomainUsage {
    /// Detection classes whose devices contacted the domain.
    pub classes: BTreeSet<&'static str>,
    /// Server ports observed.
    pub ports: BTreeSet<u16>,
    /// Total ground-truth packets.
    pub packets: u64,
    /// Packets during the active-experiment window.
    pub packets_active: u64,
    /// Packets during the idle-experiment window.
    pub packets_idle: u64,
    /// Service IPs the testbed actually contacted (Censys seeds).
    pub seed_ips: BTreeSet<Ipv4Addr>,
    /// Distinct hours with traffic (persistence signal).
    pub active_hours: u32,
}

impl DomainUsage {
    /// Whether the device speaks HTTPS to this domain (the §4.2.2
    /// prerequisite).
    pub fn uses_https(&self) -> bool {
        self.ports.contains(&443) || self.ports.contains(&8443)
    }

    /// §7.1's first insight: the domain is an *active-use indicator* if it
    /// is essentially silent in idle mode but speaks when the device is
    /// used. (Rates are per-window totals; the active window is ~4 days
    /// and idle ~3, close enough for a 50× ratio test.)
    pub fn is_usage_indicator(&self) -> bool {
        self.packets_active > 200 && self.packets_idle * 50 < self.packets_active
    }
}

/// Per-domain usage over the whole ground-truth capture.
#[derive(Debug, Default)]
pub struct DomainObservations {
    map: BTreeMap<DomainName, DomainUsage>,
}

impl DomainObservations {
    /// Empty observations.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one captured hour into the observations.
    pub fn ingest_hour(&mut self, driver: &ExperimentDriver, packets: &[GroundTruthPacket]) {
        let table = driver.domain_table();
        let mut domains_seen_this_hour: BTreeSet<u32> = BTreeSet::new();
        let mut class_cache: HashMap<u32, &'static str> = HashMap::new();
        for g in packets {
            let spec = &table[g.domain_id as usize];
            let class = *class_cache.entry(g.instance).or_insert_with(|| {
                let inst = &driver.instances()[g.instance as usize];
                driver.catalog().products[inst.product].class
            });
            let usage = self.map.entry(spec.name.clone()).or_default();
            usage.classes.insert(class);
            usage.ports.insert(g.packet.dport);
            usage.packets += 1;
            if haystack_net::StudyWindow::ACTIVE_GT.contains(g.packet.ts) {
                usage.packets_active += 1;
            } else if haystack_net::StudyWindow::IDLE_GT.contains(g.packet.ts) {
                usage.packets_idle += 1;
            }
            usage.seed_ips.insert(g.packet.dst);
            domains_seen_this_hour.insert(g.domain_id);
        }
        for id in domains_seen_this_hour {
            let name = &table[id as usize].name;
            if let Some(u) = self.map.get_mut(name) {
                u.active_hours += 1;
            }
        }
    }

    /// Usage row for one domain.
    pub fn get(&self, d: &DomainName) -> Option<&DomainUsage> {
        self.map.get(d)
    }

    /// All observed domains (sorted).
    pub fn domains(&self) -> impl Iterator<Item = (&DomainName, &DomainUsage)> {
        self.map.iter()
    }

    /// Number of observed domains (the paper's "524 domains" input).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The modal SLD among domains contacted *exclusively* by classes of
    /// one hierarchy family — used to tell Primary from Support (§4.1):
    /// Support domains sit on a third party's SLD.
    pub fn majority_sld_for(&self, family: &BTreeSet<&'static str>) -> Option<DomainName> {
        let mut histogram: HashMap<DomainName, usize> = HashMap::new();
        for (name, usage) in &self.map {
            if !usage.classes.is_empty() && usage.classes.iter().all(|c| family.contains(c)) {
                *histogram.entry(name.sld()).or_default() += 1;
            }
        }
        histogram
            .into_iter()
            .max_by_key(|(sld, n)| (*n, std::cmp::Reverse(sld.as_str().to_string())))
            .map(|(sld, _)| sld)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_net::{DayBin, StudyWindow};
    use haystack_testbed::catalog::data::standard_catalog;
    use haystack_testbed::materialize::materialize;

    fn observations() -> (ExperimentDriver, DomainObservations) {
        let driver = ExperimentDriver::new(standard_catalog(), 42);
        let world = materialize(driver.catalog());
        let mut obs = DomainObservations::new();
        // A slice of the idle window is enough for structure tests.
        for h in DayBin(8).hours().take(6) {
            let pkts = driver.generate_hour(&world, h);
            obs.ingest_hour(&driver, &pkts);
        }
        (driver, obs)
    }

    #[test]
    fn observes_most_of_the_domain_universe() {
        let (_driver, obs) = observations();
        assert!(obs.len() > 200, "observed {} domains", obs.len());
    }

    #[test]
    fn avs_domain_is_contacted_by_the_whole_alexa_family() {
        let (_d, obs) = observations();
        let avs = DomainName::parse("avs-alexa.amazon-iot.com").unwrap();
        let u = obs.get(&avs).expect("AVS observed");
        assert!(u.classes.contains("Amazon Product"));
        assert!(u.classes.contains("Fire TV"));
        assert!(u.uses_https());
        assert!(!u.seed_ips.is_empty());
    }

    #[test]
    fn ntp_domain_is_contacted_by_many_classes() {
        let (_d, obs) = observations();
        let multi = obs
            .domains()
            .filter(|(n, u)| n.as_str().starts_with("ntp") && u.classes.len() >= 3)
            .count();
        assert!(multi >= 1, "NTP pool domains span classes");
    }

    #[test]
    fn majority_sld_identifies_manufacturer_domain() {
        let (_d, obs) = observations();
        let family: BTreeSet<&'static str> =
            ["Samsung IoT", "Samsung TV"].into_iter().collect();
        let sld = obs.majority_sld_for(&family).unwrap();
        assert_eq!(sld.as_str(), "samsung-iot.com");
    }

    #[test]
    fn active_hours_track_persistence() {
        let (_d, obs) = observations();
        let avs = DomainName::parse("avs-alexa.amazon-iot.com").unwrap();
        assert!(obs.get(&avs).unwrap().active_hours >= 5, "hot domain seen almost every hour");
        let _ = StudyWindow::IDLE_GT; // silence unused import in some cfgs
    }
}
