//! Interned class identities.
//!
//! Rule-layer code used to carry `&'static str` class names pointing
//! into the compiled-in catalog, which welded every rule set to the
//! binary. A [`ClassTable`] owns the names instead and hands out dense
//! [`ClassId`]s; everything downstream of rule generation (detector,
//! usage, staleness, reports, the serve query plane, signature packs)
//! speaks ids and resolves names only at presentation boundaries. A
//! rule set loaded from a signature pack at runtime is then a
//! first-class citizen — the compiled-in catalog is just the producer
//! of the default pack.

use crate::fasthash::FastMap;

/// A dense interned class identifier, valid only with the
/// [`ClassTable`] that minted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassId(pub u16);

impl ClassId {
    /// Wire sentinel for "no class" (e.g. an absent hierarchy parent).
    /// Never minted by [`ClassTable::intern`].
    pub const NONE_WIRE: u16 = u16::MAX;
}

/// An interning table of class names: dense ids out, owned names in.
///
/// Ids are assigned in first-intern order, so interning a catalog's
/// classes in catalog order yields stable, reproducible ids — the
/// property the byte-determinate pack format and event stream rely on.
#[derive(Debug, Clone, Default)]
pub struct ClassTable {
    names: Vec<String>,
    index: FastMap<String, ClassId>,
}

impl PartialEq for ClassTable {
    fn eq(&self, other: &Self) -> bool {
        // `index` is derived from `names`; comparing it would be
        // redundant (and hash-map order is irrelevant anyway).
        self.names == other.names
    }
}

impl Eq for ClassTable {}

impl ClassTable {
    /// An empty table.
    pub fn new() -> ClassTable {
        ClassTable::default()
    }

    /// Intern `name`, returning its id (existing or freshly minted).
    ///
    /// # Panics
    /// When the table is full (more than `u16::MAX - 1` classes — far
    /// beyond any real catalog).
    pub fn intern(&mut self, name: &str) -> ClassId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let raw = self.names.len();
        assert!(
            raw < usize::from(ClassId::NONE_WIRE),
            "class table full ({raw} classes)"
        );
        let id = ClassId(raw as u16);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// The id of an already-interned name.
    pub fn id(&self, name: &str) -> Option<ClassId> {
        self.index.get(name).copied()
    }

    /// The name behind `id`.
    ///
    /// # Panics
    /// When `id` was not minted by this table.
    pub fn name(&self, id: ClassId) -> &str {
        &self.names[usize::from(id.0)]
    }

    /// The name behind `id`, `None` for a foreign id.
    pub fn get(&self, id: ClassId) -> Option<&str> {
        self.names.get(usize::from(id.0)).map(String::as_str)
    }

    /// Number of interned classes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (ClassId(i as u16), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut t = ClassTable::new();
        let a = t.intern("Alexa Enabled");
        let b = t.intern("Fire TV");
        assert_eq!(a, ClassId(0));
        assert_eq!(b, ClassId(1));
        assert_eq!(t.intern("Alexa Enabled"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.name(a), "Alexa Enabled");
        assert_eq!(t.id("Fire TV"), Some(b));
        assert_eq!(t.id("unknown"), None);
        assert_eq!(t.get(ClassId(9)), None);
    }

    #[test]
    fn iteration_follows_intern_order() {
        let mut t = ClassTable::new();
        for name in ["c", "a", "b"] {
            t.intern(name);
        }
        let order: Vec<&str> = t.iter().map(|(_, n)| n).collect();
        assert_eq!(order, ["c", "a", "b"]);
    }

    #[test]
    fn equality_ignores_the_derived_index() {
        let mut x = ClassTable::new();
        x.intern("a");
        x.intern("b");
        let mut y = ClassTable::new();
        y.intern("a");
        y.intern("b");
        assert_eq!(x, y);
        y.intern("c");
        assert_ne!(x, y);
    }
}
