//! End-to-end orchestration of Figure 7's pipeline, plus the §4 funnel
//! statistics the paper reports (524 observed domains → 415 Primary / 19
//! Support → 217 dedicated / 202 shared / 15 no-record → 8 recovered via
//! Censys → rules for platforms, 20 manufacturers, 11 products).

use crate::dedicated::{censys_fallback, dnsdb_verdict, DedicationVerdict, InfraKnowledge};
use crate::domains::{classify, DomainClass, StaticWebIntelligence};
use crate::observations::DomainObservations;
use crate::rules::{self, RuleInputs, RuleSet};
use haystack_dns::{DnsDb, DomainName};
use haystack_net::{HourBin, StudyWindow};
use haystack_testbed::catalog::{Catalog, DetectionLevel};
use haystack_testbed::materialize::{materialize, MaterializedWorld, CLOUD_PROVIDER};
use haystack_testbed::ExperimentDriver;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// Pipeline tuning knobs (tests shrink the capture windows).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Seed for the experiment driver.
    pub seed: u64,
    /// How many hours of the active GT window to capture (≤ 96).
    pub active_hours: u32,
    /// How many hours of the idle GT window to capture (≤ 72).
    pub idle_hours: u32,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig { seed: 0xC0DE, active_hours: 96, idle_hours: 72 }
    }
}

impl PipelineConfig {
    /// A fast configuration for unit/integration tests.
    pub fn fast(seed: u64) -> Self {
        PipelineConfig { seed, active_hours: 6, idle_hours: 6 }
    }
}

/// The §4 funnel counts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Domains observed in the ground truth.
    pub observed_domains: usize,
    /// §4.1 Primary.
    pub primary: usize,
    /// §4.1 Support.
    pub support: usize,
    /// §4.1 Generic.
    pub generic: usize,
    /// §4.2.1 dedicated (before Censys).
    pub dedicated_dnsdb: usize,
    /// §4.2.1 shared.
    pub shared: usize,
    /// §4.2.1 no DNSDB record.
    pub no_record: usize,
    /// §4.2.2 recovered via Censys.
    pub censys_recovered: usize,
    /// Distinct classes with at least one Censys-recovered domain.
    pub censys_recovered_classes: usize,
    /// Rules by level.
    pub platform_rules: usize,
    /// Rules by level.
    pub manufacturer_rules: usize,
    /// Rules by level.
    pub product_rules: usize,
    /// Classes excluded by the pipeline.
    pub undetectable_classes: usize,
}

/// The assembled pipeline: world, ground truth, passive DNS, and every
/// intermediate product up to the rule set.
pub struct Pipeline {
    /// The analyst's device catalog.
    pub catalog: Catalog,
    /// The synthetic Internet.
    pub world: MaterializedWorld,
    /// The experiment driver (ground truth source).
    pub driver: ExperimentDriver,
    /// The passive-DNS database, fed over the full study window.
    pub dnsdb: DnsDb,
    /// Ground-truth domain usage.
    pub observations: DomainObservations,
    /// §4.1 verdicts.
    pub classification: HashMap<DomainName, DomainClass>,
    /// §4.2 verdicts (Censys recoveries folded in).
    pub dedication: HashMap<DomainName, DedicationVerdict>,
    /// §4.3 output, shared with the detector pool and the usage tracker
    /// (and hot-swappable in the daemon, hence the `Arc`).
    pub rules: Arc<RuleSet>,
    /// The funnel counts.
    pub stats: PipelineStats,
}

impl Pipeline {
    /// Run the full pipeline against the standard catalog.
    pub fn run(config: PipelineConfig) -> Pipeline {
        Self::run_with_catalog(config, haystack_testbed::catalog::data::standard_catalog())
    }

    /// Run the full pipeline against a custom catalog — how the
    /// countermeasure ablations re-run §2–§4 after a vendor "hides" a
    /// device (see `haystack_testbed::countermeasures`).
    pub fn run_with_catalog(config: PipelineConfig, catalog: Catalog) -> Pipeline {
        let driver = ExperimentDriver::new(catalog, config.seed);
        let catalog = driver.catalog().clone();
        let world = materialize(&catalog);

        // ---- Feed passive DNS over the full study window (global DNS
        // activity, §4.2.1), honouring the 15 coverage-gap domains.
        let mut dnsdb = DnsDb::new();
        for spec in catalog.iot_domains() {
            if spec.dnsdb_blind {
                dnsdb.add_blind_name(spec.name.clone());
            }
        }
        let resolver = world.resolver();
        let all_names: Vec<DomainName> = catalog
            .iot_domains()
            .iter()
            .map(|d| d.name.clone())
            .chain(catalog.generic_domains.iter().map(|d| d.name.clone()))
            .collect();
        for hour in StudyWindow::FULL.hour_bins() {
            let t = hour.start();
            for name in &all_names {
                if let Some(res) = resolver.resolve(name, t) {
                    dnsdb.record_resolution(&res, t);
                }
            }
        }

        // ---- Ground-truth capture (§2/§3 input).
        let mut observations = DomainObservations::new();
        let active_hours = StudyWindow::ACTIVE_GT
            .hour_bins()
            .take(config.active_hours as usize);
        let idle_hours = StudyWindow::IDLE_GT.hour_bins().take(config.idle_hours as usize);
        let gt_hours: Vec<HourBin> = active_hours.chain(idle_hours).collect();
        for hour in gt_hours {
            let pkts = driver.generate_hour(&world, hour);
            observations.ingest_hour(&driver, &pkts);
        }

        // ---- §4.1 classification.
        let intel = StaticWebIntelligence::for_catalog(&catalog);
        // Family map: root class → all classes under that root.
        let mut families: BTreeMap<&'static str, BTreeSet<&'static str>> = BTreeMap::new();
        for class in &catalog.classes {
            let root = catalog.ancestry(class.name).last().map(|c| c.name).unwrap_or(class.name);
            families.entry(root).or_default().insert(class.name);
        }
        let mut majority_cache: HashMap<&'static str, Option<DomainName>> = HashMap::new();
        let mut classification = HashMap::new();
        for (name, usage) in observations.domains() {
            let majority = usage.classes.iter().next().and_then(|first| {
                let root = catalog.ancestry(first).last().map(|c| c.name).unwrap_or(first);
                majority_cache
                    .entry(root)
                    .or_insert_with(|| {
                        families.get(root).and_then(|f| observations.majority_sld_for(f))
                    })
                    .clone()
            });
            let class = classify(&catalog, &intel, name, usage, majority.as_ref());
            classification.insert(name.clone(), class);
        }

        // ---- §4.2 dedication (DNSDB + Censys fallback).
        let infra = InfraKnowledge::new([DomainName::parse(&format!("{CLOUD_PROVIDER}.com"))
            .expect("valid cloud sld")]);
        let window = StudyWindow::FULL;
        let mut dedication = HashMap::new();
        let mut censys_recovered = 0usize;
        let mut censys_classes: BTreeSet<&'static str> = BTreeSet::new();
        for (name, usage) in observations.domains() {
            let cls = classification[name];
            if cls == DomainClass::Generic {
                continue;
            }
            let mut verdict = dnsdb_verdict(&dnsdb, &infra, name, &window);
            if verdict == DedicationVerdict::NoRecord {
                if let Some(ips) =
                    censys_fallback(&world.universe.scans, name, usage.uses_https(), &usage.seed_ips)
                {
                    censys_recovered += 1;
                    censys_classes.extend(usage.classes.iter().copied());
                    verdict = DedicationVerdict::Dedicated(ips);
                }
            }
            dedication.insert(name.clone(), verdict);
        }

        // ---- §4.3 rules.
        let inputs = RuleInputs {
            catalog: &catalog,
            observations: &observations,
            classification: &classification,
            dedication: &dedication,
        };
        let rules = rules::generate(&inputs);

        // ---- Funnel stats.
        let mut stats = PipelineStats {
            observed_domains: observations.len(),
            censys_recovered,
            censys_recovered_classes: censys_classes.len(),
            platform_rules: rules.count_by_level(DetectionLevel::Platform),
            manufacturer_rules: rules.count_by_level(DetectionLevel::Manufacturer),
            product_rules: rules.count_by_level(DetectionLevel::Product),
            undetectable_classes: rules.undetectable.len(),
            ..Default::default()
        };
        for (name, _) in observations.domains() {
            match classification[name] {
                DomainClass::Primary => stats.primary += 1,
                DomainClass::Support => stats.support += 1,
                DomainClass::Generic => stats.generic += 1,
            }
        }
        for verdict in dedication.values() {
            match verdict {
                DedicationVerdict::Dedicated(_) => stats.dedicated_dnsdb += 1,
                DedicationVerdict::Shared => stats.shared += 1,
                DedicationVerdict::NoRecord => stats.no_record += 1,
            }
        }
        // `dedicated_dnsdb` counted Censys recoveries too; report them in
        // their own bucket, as the paper does.
        stats.dedicated_dnsdb -= stats.censys_recovered;

        Pipeline {
            catalog,
            world,
            driver,
            dnsdb,
            observations,
            classification,
            dedication,
            rules: Arc::new(rules),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Undetectable;

    fn pipeline() -> &'static Pipeline {
        crate::testutil::shared_pipeline()
    }

    #[test]
    fn funnel_shape_tracks_section_4() {
        let p = pipeline();
        let s = &p.stats;
        assert!(s.observed_domains > 250, "observed {}", s.observed_domains);
        assert!(s.primary > s.support, "primary {} vs support {}", s.primary, s.support);
        assert!(s.generic >= 60, "generic {}", s.generic);
        assert!(s.support >= 10, "support {}", s.support);
        // Dedicated and shared are the same order of magnitude (217/202).
        let ratio = s.dedicated_dnsdb as f64 / s.shared.max(1) as f64;
        assert!((0.5..2.0).contains(&ratio), "ded/shared ratio {ratio:.2}");
        // 15 blind domains; 8 recovered.
        assert_eq!(s.censys_recovered, 8, "censys recovered {}", s.censys_recovered);
        assert!(s.no_record >= 5, "unrecovered no-record {}", s.no_record);
    }

    #[test]
    fn rule_counts_match_section_4_3_2() {
        let p = pipeline();
        assert_eq!(p.stats.manufacturer_rules, 20, "manufacturer rules");
        assert_eq!(p.stats.product_rules, 11, "product rules");
        assert!(p.stats.platform_rules >= 3, "platform rules {}", p.stats.platform_rules);
    }

    #[test]
    fn exclusions_emerge_from_the_pipeline() {
        let p = pipeline();
        let reason = |class: &str| {
            p.rules
                .undetectable
                .iter()
                .find(|(c, _)| p.rules.class_name(*c) == class)
                .map(|(_, r)| *r)
        };
        for shared in ["Google Home", "Apple TV", "Lefun Cam"] {
            assert_eq!(
                reason(shared),
                Some(Undetectable::SharedInfrastructure),
                "{shared} should be excluded as shared"
            );
        }
        for insufficient in ["LG TV", "WeMo Plug", "Wink 2"] {
            assert_eq!(
                reason(insufficient),
                Some(Undetectable::InsufficientInfo),
                "{insufficient} should be excluded as insufficient"
            );
        }
        // And the catalog's exclusion oracle agrees with the pipeline.
        for (class, _) in &p.rules.undetectable {
            let name = p.rules.class_name(*class);
            assert!(
                p.catalog.class(name).unwrap().excluded.is_some(),
                "pipeline excluded {name}, catalog says detectable"
            );
        }
    }

    #[test]
    fn rule_domain_counts_follow_figure_10() {
        let p = pipeline();
        let n = |class: &str| p.rules.rule(class).map(|r| r.domains.len()).unwrap_or(0);
        assert_eq!(n("Alexa Enabled"), 1);
        assert_eq!(n("Meross Dooropener"), 1);
        assert_eq!(n("Blink Hub & Cam."), 2);
        assert_eq!(n("Xiaomi Dev."), 3);
        assert!(n("Ring Doorbell") >= 4, "Ring: {} (2 Censys-recovered)", n("Ring Doorbell"));
        assert!(n("Amazon Product") >= 15);
        assert!(n("Fire TV") >= 15);
        assert!(n("Samsung IoT") >= 5);
        assert!(n("Samsung TV") >= 5);
    }

    #[test]
    fn rule_ips_live_in_dedicated_or_cloud_space() {
        use haystack_backend::AddressPlan;
        let p = pipeline();
        for rule in &p.rules.rules {
            for d in &rule.domains {
                for ip in &d.ips {
                    assert!(
                        AddressPlan::dedicated().contains(*ip)
                            || AddressPlan::cloud().contains(*ip),
                        "rule {} domain {} indexes shared IP {ip}",
                        p.rules.class_name(rule.class),
                        d.name
                    );
                }
            }
        }
    }

    #[test]
    fn avs_rule_belongs_to_the_platform_class() {
        let p = pipeline();
        let alexa = p.rules.rule("Alexa Enabled").unwrap();
        assert_eq!(alexa.domains.len(), 1);
        assert_eq!(alexa.domains[0].name.as_str(), "avs-alexa.amazon-iot.com");
        assert_eq!(alexa.level, DetectionLevel::Platform);
        // Hierarchy wiring.
        assert_eq!(p.rules.rule("Amazon Product").unwrap().parent, p.rules.class_id("Alexa Enabled"));
        assert_eq!(p.rules.rule("Fire TV").unwrap().parent, p.rules.class_id("Amazon Product"));
    }
}
