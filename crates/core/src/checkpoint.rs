//! Crash-safe checkpointing of long-lived pipeline state (DESIGN.md §12).
//!
//! The paper's deployment runs detection over two weeks of ISP NetFlow
//! for ~15 M subscriber lines (§6) — losing the accumulated per-line
//! evidence to a collector restart or a worker crash would cost days of
//! warm-up. This module provides the two halves of recovery:
//!
//! * **State codecs** — [`DetectorState`], [`UsageState`],
//!   [`StalenessState`]: plain, order-normalized exports of the
//!   detector's per-rule line maps, the usage tracker's hour window, and
//!   the staleness monitor's decayed baselines, each encodable as one
//!   checksummed [`haystack_net::snapshot`] frame. Baselines travel as
//!   raw IEEE-754 bits, so a restore replays *bit-identical* float state.
//! * **Delta codecs** — [`DetectorDelta`], [`UsageDelta`],
//!   [`StalenessDelta`]: the *dirty* subset of a component's state —
//!   every (rule, line) entry mutated since the previous snapshot,
//!   carried as absolute-value upserts. Applying a delta onto a base
//!   state replaces matching entries and inserts new ones, so deltas are
//!   idempotent and over-inclusion is harmless. [`DetectorSnapshot`]
//!   wraps either shape for paths (the supervised pool) that decide
//!   full-vs-delta per shard at snapshot time.
//! * **[`CheckpointDir`]** — generation-numbered snapshot files written
//!   atomically (temp file + fsync + rename + directory fsync) on a
//!   caller-chosen cadence, pruned to a bounded number of generations.
//!   [`CheckpointDir::load_latest`] walks generations newest-first and
//!   *skips* any frame the checksum rejects, so a torn or bit-rotten
//!   write degrades to the previous generation instead of a crash loop.
//!   Delta frames ([`CheckpointDir::write_delta`]) share the generation
//!   counter but live in `.dckpt` files; [`CheckpointDir::
//!   load_latest_chain`] replays the newest decodable full generation
//!   plus every newer delta in order, stopping at the first corrupt
//!   delta — the chain degrades to the last *consistent* generation,
//!   never to a half-applied state.
//!
//! Everything here reports through the `checkpoint` telemetry scope
//! (snapshots written, bytes, restores, corrupt generations skipped,
//! dirty entries and delta bytes flushed) so `haystack metrics` shows
//! recovery activity alongside the pipeline counters.

use crate::telemetry::{Counter, Scope};
use haystack_net::snapshot::{open, seal, SnapError, SnapReader, SnapWriter, MAGIC_LEN};
use haystack_net::{AnonId, HourBin};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// A snapshot frame failed to decode (and no older generation was
    /// usable either).
    Snap(SnapError),
    /// A decoded state does not fit the component it is being restored
    /// into (e.g. rule-count mismatch — the checkpoint was taken under a
    /// different rule set).
    StateMismatch(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, err } => {
                write!(f, "checkpoint I/O error at {}: {err}", path.display())
            }
            CheckpointError::Snap(e) => write!(f, "checkpoint snapshot error: {e}"),
            CheckpointError::StateMismatch(what) => {
                write!(f, "checkpoint does not match this configuration: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapError> for CheckpointError {
    fn from(e: SnapError) -> Self {
        CheckpointError::Snap(e)
    }
}

fn io_err(path: &Path, err: std::io::Error) -> CheckpointError {
    CheckpointError::Io { path: path.to_path_buf(), err }
}

/// `Option<HourBin>` sentinel: hours in the study window are tiny, so
/// `u32::MAX` is free to mean "never".
const NO_HOUR: u32 = u32::MAX;

fn put_opt_hour(w: &mut SnapWriter, h: Option<HourBin>) {
    w.put_u32(h.map_or(NO_HOUR, |h| h.0));
}

fn read_opt_hour(r: &mut SnapReader<'_>) -> Result<Option<HourBin>, SnapError> {
    let v = r.u32()?;
    Ok(if v == NO_HOUR { None } else { Some(HourBin(v)) })
}

/// One (line → evidence) entry of a rule's state map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEvidence {
    /// The subscriber line.
    pub line: AnonId,
    /// Evidence bitmask over the rule's domains.
    pub mask: u64,
    /// Hour the rule's own threshold was first met, if ever.
    pub first_met: Option<HourBin>,
}

/// The detector's full evidence state: one sorted entry list per rule.
///
/// Exported by [`Detector::export_state`](crate::detector::Detector::
/// export_state), restored by [`Detector::restore_state`](crate::
/// detector::Detector::restore_state). Entries are sorted by line, so
/// equal detectors export byte-identical frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorState {
    /// Per-rule entries, indexed like `RuleSet::rules`.
    pub rules: Vec<Vec<LineEvidence>>,
}

impl DetectorState {
    /// Frame magic of a detector-state snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYDETC\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the state as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.rules.len() as u64);
        for entries in &self.rules {
            w.put_u64(entries.len() as u64);
            for e in entries {
                w.put_u64(e.line.0);
                w.put_u64(e.mask);
                put_opt_hour(&mut w, e.first_met);
            }
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`DetectorState::encode`].
    pub fn decode(frame: &[u8]) -> Result<DetectorState, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let nrules = r.count(8)?;
        let mut rules = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(8 + 8 + 4)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(LineEvidence {
                    line: AnonId(r.u64()?),
                    mask: r.u64()?,
                    first_met: read_opt_hour(&mut r)?,
                });
            }
            rules.push(entries);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(DetectorState { rules })
    }

    /// Total (line, rule) entries held.
    pub fn entry_count(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }
}

/// The usage tracker's current hour window, sorted for determinism.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageState {
    /// Per-rule (line, sampled packets) tallies.
    pub packets: Vec<Vec<(AnonId, u64)>>,
    /// Per-rule lines that touched a usage-indicator domain.
    pub indicator: Vec<Vec<AnonId>>,
}

impl UsageState {
    /// Frame magic of a usage-state snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYUSGE\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the state as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.packets.len() as u64);
        for entries in &self.packets {
            w.put_u64(entries.len() as u64);
            for (line, pkts) in entries {
                w.put_u64(line.0);
                w.put_u64(*pkts);
            }
        }
        w.put_u64(self.indicator.len() as u64);
        for lines in &self.indicator {
            w.put_u64(lines.len() as u64);
            for line in lines {
                w.put_u64(line.0);
            }
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`UsageState::encode`].
    pub fn decode(frame: &[u8]) -> Result<UsageState, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let nrules = r.count(8)?;
        let mut packets = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(16)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((AnonId(r.u64()?), r.u64()?));
            }
            packets.push(entries);
        }
        let nrules = r.count(8)?;
        let mut indicator = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(8)?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                lines.push(AnonId(r.u64()?));
            }
            indicator.push(lines);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(UsageState { packets, indicator })
    }
}

/// The staleness monitor's day counts and decayed baselines.
///
/// Baselines are carried as raw `f64` bits: the decayed mean depends on
/// the exact order of float folds, and a resumed monitor must continue
/// from *bit-identical* values to produce the same verdicts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StalenessState {
    /// Sorted ((rule, domain), today's matched packets).
    pub today: Vec<((u16, u16), u64)>,
    /// Sorted ((rule, domain), decayed baseline).
    pub baseline: Vec<((u16, u16), f64)>,
    /// Days folded so far.
    pub days_seen: u32,
}

impl StalenessState {
    /// Frame magic of a staleness-state snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYSTAL\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the state as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u32(self.days_seen);
        w.put_u64(self.today.len() as u64);
        for ((ri, di), pkts) in &self.today {
            w.put_u16(*ri);
            w.put_u16(*di);
            w.put_u64(*pkts);
        }
        w.put_u64(self.baseline.len() as u64);
        for ((ri, di), b) in &self.baseline {
            w.put_u16(*ri);
            w.put_u16(*di);
            w.put_f64_bits(*b);
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`StalenessState::encode`].
    pub fn decode(frame: &[u8]) -> Result<StalenessState, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let days_seen = r.u32()?;
        let n = r.count(12)?;
        let mut today = Vec::with_capacity(n);
        for _ in 0..n {
            today.push(((r.u16()?, r.u16()?), r.u64()?));
        }
        let n = r.count(12)?;
        let mut baseline = Vec::with_capacity(n);
        for _ in 0..n {
            baseline.push(((r.u16()?, r.u16()?), r.f64_bits()?));
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(StalenessState { today, baseline, days_seen })
    }
}

/// Merge sorted absolute-value upserts into a sorted base list: an
/// upsert whose key already exists replaces the base entry, a new key is
/// inserted in order. Both inputs sorted by `key` → output sorted.
fn merge_upserts<T: Copy, K: Ord>(base: &mut Vec<T>, upserts: &[T], key: impl Fn(&T) -> K) {
    if upserts.is_empty() {
        return;
    }
    let mut merged = Vec::with_capacity(base.len() + upserts.len());
    let (mut i, mut j) = (0, 0);
    while i < base.len() && j < upserts.len() {
        match key(&base[i]).cmp(&key(&upserts[j])) {
            std::cmp::Ordering::Less => {
                merged.push(base[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                merged.push(upserts[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                merged.push(upserts[j]);
                i += 1;
                j += 1;
            }
        }
    }
    merged.extend_from_slice(&base[i..]);
    merged.extend_from_slice(&upserts[j..]);
    *base = merged;
}

/// The detector's *dirty* evidence: every (line, rule) entry mutated
/// since the previous snapshot, as absolute-value upserts.
///
/// Deltas accumulate across a chain: because each upsert carries the
/// entry's full current value (not an increment), applying *every*
/// delta newer than any full generation — even one older than the
/// newest — reconstructs the exact state at the last delta. That is
/// what lets a corrupt full generation fall back to its predecessor
/// without losing the deltas written after it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorDelta {
    /// Per-rule upserts, indexed like `RuleSet::rules`, sorted by line.
    pub rules: Vec<Vec<LineEvidence>>,
}

impl DetectorDelta {
    /// Frame magic of a detector-delta snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYDETD\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the delta as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.rules.len() as u64);
        for entries in &self.rules {
            w.put_u64(entries.len() as u64);
            for e in entries {
                w.put_u64(e.line.0);
                w.put_u64(e.mask);
                put_opt_hour(&mut w, e.first_met);
            }
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`DetectorDelta::encode`].
    pub fn decode(frame: &[u8]) -> Result<DetectorDelta, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let nrules = r.count(8)?;
        let mut rules = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(8 + 8 + 4)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(LineEvidence {
                    line: AnonId(r.u64()?),
                    mask: r.u64()?,
                    first_met: read_opt_hour(&mut r)?,
                });
            }
            rules.push(entries);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(DetectorDelta { rules })
    }

    /// Apply the delta's upserts onto `state`.
    pub fn apply(&self, state: &mut DetectorState) -> Result<(), CheckpointError> {
        if state.rules.len() != self.rules.len() {
            return Err(CheckpointError::StateMismatch("delta rule count"));
        }
        for (base, upserts) in state.rules.iter_mut().zip(&self.rules) {
            merge_upserts(base, upserts, |e| e.line);
        }
        Ok(())
    }

    /// Total (line, rule) upserts carried.
    pub fn entry_count(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }
}

/// One per-shard snapshot as the supervised pool hands it out: a full
/// state when the shard could not bound its dirty set (fresh, reset, or
/// restored since the last snapshot), a delta otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DetectorSnapshot {
    /// The complete evidence state — replaces the base outright.
    Full(DetectorState),
    /// Dirty-only upserts since the previous snapshot.
    Delta(DetectorDelta),
}

impl DetectorSnapshot {
    /// Seal the snapshot as one frame (the wrapped codec's own magic
    /// makes the two shapes self-describing).
    pub fn encode(&self) -> Vec<u8> {
        match self {
            DetectorSnapshot::Full(s) => s.encode(),
            DetectorSnapshot::Delta(d) => d.encode(),
        }
    }

    /// Decode either shape, dispatching on the frame magic.
    pub fn decode(frame: &[u8]) -> Result<DetectorSnapshot, SnapError> {
        if frame.len() >= MAGIC_LEN && frame[..MAGIC_LEN] == DetectorState::MAGIC[..] {
            Ok(DetectorSnapshot::Full(DetectorState::decode(frame)?))
        } else {
            Ok(DetectorSnapshot::Delta(DetectorDelta::decode(frame)?))
        }
    }

    /// Whether this is a full state.
    pub fn is_full(&self) -> bool {
        matches!(self, DetectorSnapshot::Full(_))
    }

    /// Total (line, rule) entries carried.
    pub fn entry_count(&self) -> usize {
        match self {
            DetectorSnapshot::Full(s) => s.entry_count(),
            DetectorSnapshot::Delta(d) => d.entry_count(),
        }
    }

    /// Fold the snapshot into `base`: a full replaces it, a delta
    /// upserts into it.
    pub fn apply_to(&self, base: &mut DetectorState) -> Result<(), CheckpointError> {
        match self {
            DetectorSnapshot::Full(s) => {
                *base = s.clone();
                Ok(())
            }
            DetectorSnapshot::Delta(d) => d.apply(base),
        }
    }
}

/// The usage tracker's dirty subset: per-rule (line, packets) upserts
/// plus indicator lines newly set since the previous snapshot. The hour
/// window only grows between resets (a reset forces the next snapshot
/// full), so upserts + inserts cover every mutation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageDelta {
    /// Per-rule (line, absolute sampled packets) upserts, sorted by line.
    pub packets: Vec<Vec<(AnonId, u64)>>,
    /// Per-rule indicator lines set since the previous snapshot, sorted.
    pub indicator: Vec<Vec<AnonId>>,
}

impl UsageDelta {
    /// Frame magic of a usage-delta snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYUSGD\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the delta as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.packets.len() as u64);
        for entries in &self.packets {
            w.put_u64(entries.len() as u64);
            for (line, pkts) in entries {
                w.put_u64(line.0);
                w.put_u64(*pkts);
            }
        }
        w.put_u64(self.indicator.len() as u64);
        for lines in &self.indicator {
            w.put_u64(lines.len() as u64);
            for line in lines {
                w.put_u64(line.0);
            }
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`UsageDelta::encode`].
    pub fn decode(frame: &[u8]) -> Result<UsageDelta, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let nrules = r.count(8)?;
        let mut packets = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(16)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((AnonId(r.u64()?), r.u64()?));
            }
            packets.push(entries);
        }
        let nrules = r.count(8)?;
        let mut indicator = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(8)?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                lines.push(AnonId(r.u64()?));
            }
            indicator.push(lines);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(UsageDelta { packets, indicator })
    }

    /// Apply the delta's upserts onto `state`.
    pub fn apply(&self, state: &mut UsageState) -> Result<(), CheckpointError> {
        if state.packets.len() != self.packets.len()
            || state.indicator.len() != self.indicator.len()
        {
            return Err(CheckpointError::StateMismatch("delta rule count"));
        }
        for (base, upserts) in state.packets.iter_mut().zip(&self.packets) {
            merge_upserts(base, upserts, |&(line, _)| line);
        }
        for (base, inserts) in state.indicator.iter_mut().zip(&self.indicator) {
            merge_upserts(base, inserts, |&line| line);
        }
        Ok(())
    }

    /// Total upserts carried (packet entries + indicator inserts).
    pub fn entry_count(&self) -> usize {
        self.packets.iter().map(Vec::len).sum::<usize>()
            + self.indicator.iter().map(Vec::len).sum::<usize>()
    }
}

/// The staleness monitor's dirty subset: today's (rule, domain) packet
/// counters touched since the previous snapshot. Baselines and the day
/// count change only at `end_of_day`, which forces the next snapshot
/// full, so a delta never carries them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StalenessDelta {
    /// Sorted ((rule, domain), today's absolute matched packets).
    pub today: Vec<((u16, u16), u64)>,
}

impl StalenessDelta {
    /// Frame magic of a staleness-delta snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYSTLD\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the delta as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.today.len() as u64);
        for ((ri, di), pkts) in &self.today {
            w.put_u16(*ri);
            w.put_u16(*di);
            w.put_u64(*pkts);
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`StalenessDelta::encode`].
    pub fn decode(frame: &[u8]) -> Result<StalenessDelta, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let n = r.count(12)?;
        let mut today = Vec::with_capacity(n);
        for _ in 0..n {
            today.push(((r.u16()?, r.u16()?), r.u64()?));
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(StalenessDelta { today })
    }

    /// Apply the delta's upserts onto `state`.
    pub fn apply(&self, state: &mut StalenessState) {
        merge_upserts(&mut state.today, &self.today, |&(key, _)| key);
    }

    /// Total (rule, domain) upserts carried.
    pub fn entry_count(&self) -> usize {
        self.today.len()
    }
}

/// Telemetry handles for checkpoint activity, bound once at
/// [`CheckpointDir::open`] under the `checkpoint` scope.
#[derive(Debug, Clone)]
struct DirTelemetry {
    snapshots_written: Counter,
    snapshot_bytes: Counter,
    restores: Counter,
    corrupt_skipped: Counter,
    dirty_entries: Counter,
    delta_bytes: Counter,
}

impl DirTelemetry {
    fn new() -> DirTelemetry {
        let scope = Scope::named("checkpoint");
        DirTelemetry {
            snapshots_written: scope.counter("snapshots_written"),
            snapshot_bytes: scope.counter("snapshot_bytes"),
            restores: scope.counter("restores"),
            corrupt_skipped: scope.counter("corrupt_skipped"),
            dirty_entries: scope.counter("dirty_entries"),
            delta_bytes: scope.counter("delta_bytes"),
        }
    }
}

/// A disk fault injected into the next atomic write — how the
/// fault-robustness tests prove a full device or a crash mid-write
/// surfaces as a typed [`CheckpointError`] with every earlier
/// generation still loadable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The device fills mid-write: half the frame lands in the temp
    /// file, then the write fails with `ENOSPC`.
    Enospc,
    /// A crash between the temp-file write and the rename: a truncated
    /// `.tmp` remnant stays on disk and no generation becomes visible.
    TornWrite,
}

/// A directory of generation-numbered snapshot files.
///
/// Each [`CheckpointDir::write`] produces `{prefix}-{generation:08}.ckpt`
/// via temp file + fsync + rename + directory fsync, so a crash at any
/// point leaves either the old generation set or the old set plus one
/// complete new file — never a half-written visible checkpoint. Old
/// generations are pruned down to [`CheckpointDir::keep`] per prefix;
/// the default keeps two, so one corrupt latest generation still leaves
/// a fallback.
#[derive(Debug)]
pub struct CheckpointDir {
    root: PathBuf,
    keep: usize,
    telemetry: DirTelemetry,
    /// One-shot injected fault, consumed by the next atomic write.
    fault: std::sync::Mutex<Option<WriteFault>>,
}

impl CheckpointDir {
    /// Default generations retained per prefix.
    pub const DEFAULT_KEEP: usize = 2;

    /// Open (creating if needed) a checkpoint directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<CheckpointDir, CheckpointError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        Ok(CheckpointDir {
            root,
            keep: Self::DEFAULT_KEEP,
            telemetry: DirTelemetry::new(),
            fault: std::sync::Mutex::new(None),
        })
    }

    /// Override how many generations are retained per prefix (min 1).
    pub fn with_keep(mut self, keep: usize) -> CheckpointDir {
        self.keep = keep.max(1);
        self
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_of(&self, prefix: &str, generation: u64) -> PathBuf {
        self.root.join(format!("{prefix}-{generation:08}.ckpt"))
    }

    fn delta_file_of(&self, prefix: &str, generation: u64) -> PathBuf {
        self.root.join(format!("{prefix}-{generation:08}.dckpt"))
    }

    fn scan_generations(&self, prefix: &str, suffix: &str) -> Result<Vec<u64>, CheckpointError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| io_err(&self.root, e))?;
        let lead = format!("{prefix}-");
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.root, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&lead) else { continue };
            let Some(digits) = rest.strip_suffix(suffix) else { continue };
            if digits.len() == 8 {
                if let Ok(generation) = digits.parse::<u64>() {
                    out.push(generation);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Existing *full* generation numbers for `prefix`, ascending.
    pub fn generations(&self, prefix: &str) -> Result<Vec<u64>, CheckpointError> {
        self.scan_generations(prefix, ".ckpt")
    }

    /// Existing *delta* generation numbers for `prefix`, ascending.
    /// Fulls and deltas share one generation counter, so the combined
    /// sequence totally orders the chain.
    pub fn delta_generations(&self, prefix: &str) -> Result<Vec<u64>, CheckpointError> {
        self.scan_generations(prefix, ".dckpt")
    }

    /// The generation number the next write (full or delta) gets.
    fn next_generation(&self, prefix: &str) -> Result<u64, CheckpointError> {
        let full = self.generations(prefix)?.last().copied();
        let delta = self.delta_generations(prefix)?.last().copied();
        Ok(full.max(delta).map_or(0, |g| g + 1))
    }

    /// Arm a one-shot [`WriteFault`]: the next [`CheckpointDir::write`]
    /// or [`CheckpointDir::write_delta`] fails the injected way instead
    /// of completing. Test-only by intent, but compiled in — chaos
    /// harnesses arm it through the normal API.
    pub fn inject_write_fault(&self, fault: WriteFault) {
        *self.fault.lock().expect("fault lock") = Some(fault);
    }

    fn write_atomic(&self, path: &Path, tmp: &Path, frame: &[u8]) -> Result<(), CheckpointError> {
        {
            let mut f = fs::File::create(tmp).map_err(|e| io_err(tmp, e))?;
            if let Some(fault) = self.fault.lock().expect("fault lock").take() {
                // Both faults leave a truncated tmp remnant, exactly as
                // the real failure would; only the reported error
                // differs. The remnant must be invisible to generation
                // scans and the next write must overwrite it.
                let cut = frame.len() / 2;
                f.write_all(&frame[..cut]).map_err(|e| io_err(tmp, e))?;
                let _ = f.sync_all();
                return Err(match fault {
                    WriteFault::Enospc => {
                        io_err(tmp, std::io::Error::from_raw_os_error(28)) // ENOSPC
                    }
                    WriteFault::TornWrite => {
                        io_err(tmp, std::io::Error::other("simulated crash before rename"))
                    }
                });
            }
            f.write_all(frame).map_err(|e| io_err(tmp, e))?;
            f.sync_all().map_err(|e| io_err(tmp, e))?;
        }
        fs::rename(tmp, path).map_err(|e| io_err(path, e))?;
        // Persist the rename itself: fsync the directory (best effort on
        // platforms where directories cannot be opened).
        if let Ok(dir) = fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
        Ok(())
    }

    /// Atomically write `frame` as the next *full* generation of
    /// `prefix`, pruning old generations beyond the retention bound
    /// (deltas older than the oldest retained full go with them).
    /// Returns the generation number written.
    pub fn write(&self, prefix: &str, frame: &[u8]) -> Result<u64, CheckpointError> {
        let generation = self.next_generation(prefix)?;
        let path = self.file_of(prefix, generation);
        let tmp = path.with_extension("ckpt.tmp");
        self.write_atomic(&path, &tmp, frame)?;
        self.telemetry.snapshots_written.inc();
        self.telemetry.snapshot_bytes.add(frame.len() as u64);
        self.prune(prefix)?;
        Ok(generation)
    }

    /// Atomically write `frame` as the next *delta* generation of
    /// `prefix`. `dirty_entries` is the number of dirty entries encoded
    /// in the frame, counted into `checkpoint.dirty_entries` (the
    /// conservation invariant: dirty flushed == entries encoded);
    /// `checkpoint.delta_bytes` accrues the frame size. Deltas are not
    /// pruned here — they fall when a full write prunes past them.
    pub fn write_delta(
        &self,
        prefix: &str,
        frame: &[u8],
        dirty_entries: u64,
    ) -> Result<u64, CheckpointError> {
        let generation = self.next_generation(prefix)?;
        let path = self.delta_file_of(prefix, generation);
        let tmp = path.with_extension("dckpt.tmp");
        self.write_atomic(&path, &tmp, frame)?;
        self.telemetry.dirty_entries.add(dirty_entries);
        self.telemetry.delta_bytes.add(frame.len() as u64);
        Ok(generation)
    }

    fn prune(&self, prefix: &str) -> Result<(), CheckpointError> {
        let generations = self.generations(prefix)?;
        if generations.len() > self.keep {
            for &generation in &generations[..generations.len() - self.keep] {
                let path = self.file_of(prefix, generation);
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }
        // Deltas older than the oldest retained full can never be
        // replayed (chains start at a full generation) — drop them.
        if let Some(&oldest_full) = self.generations(prefix)?.first() {
            for dg in self.delta_generations(prefix)? {
                if dg < oldest_full {
                    let path = self.delta_file_of(prefix, dg);
                    fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
                }
            }
        }
        Ok(())
    }

    /// Read the raw frame of one specific generation, without decoding.
    ///
    /// Loaders that need to *explain* a rejected checkpoint (rather than
    /// silently fall back) read the frame themselves and classify the
    /// failure — see `haystack-cli`'s resume validation, which separates
    /// genuine version skew from on-disk corruption.
    pub fn read_generation(&self, prefix: &str, generation: u64) -> Result<Vec<u8>, CheckpointError> {
        let path = self.file_of(prefix, generation);
        fs::read(&path).map_err(|e| io_err(&path, e))
    }

    /// Read the raw frame of one specific *delta* generation, without
    /// decoding — the chain-walking counterpart of
    /// [`CheckpointDir::read_generation`].
    pub fn read_delta(&self, prefix: &str, generation: u64) -> Result<Vec<u8>, CheckpointError> {
        let path = self.delta_file_of(prefix, generation);
        fs::read(&path).map_err(|e| io_err(&path, e))
    }

    /// Load the newest generation of `prefix` that `decode` accepts.
    ///
    /// Generations are tried newest-first; a frame that fails to decode
    /// (truncated by a torn write, bit-flipped on disk) is *skipped* —
    /// counted in the `checkpoint.corrupt_skipped` telemetry — and the
    /// previous generation is tried instead. Returns `Ok(None)` when no
    /// generation exists, and the last decode error when every existing
    /// generation is corrupt.
    pub fn load_latest<T>(
        &self,
        prefix: &str,
        mut decode: impl FnMut(&[u8]) -> Result<T, SnapError>,
    ) -> Result<Option<(u64, T)>, CheckpointError> {
        let generations = self.generations(prefix)?;
        let mut last_err: Option<SnapError> = None;
        for &generation in generations.iter().rev() {
            let path = self.file_of(prefix, generation);
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            match decode(&bytes) {
                Ok(v) => {
                    self.telemetry.restores.inc();
                    return Ok(Some((generation, v)));
                }
                Err(e) => {
                    self.telemetry.corrupt_skipped.inc();
                    last_err = Some(e);
                }
            }
        }
        match last_err {
            Some(e) => Err(CheckpointError::Snap(e)),
            None => Ok(None),
        }
    }

    /// Load the newest consistent full+delta chain of `prefix`.
    ///
    /// Fulls are tried newest-first (a corrupt full is skipped, counted
    /// in `checkpoint.corrupt_skipped`); once one decodes, every delta
    /// with a *higher* generation is applied in ascending order. A delta
    /// that fails to read, decode, or apply stops the chain there — the
    /// caller gets the last consistent generation, never a half-applied
    /// state. Because deltas carry absolute-value upserts, replaying the
    /// deltas written *after* a corrupt full on top of an older full
    /// still reconstructs the exact newest state.
    ///
    /// Returns `(generation, value)` where `generation` is the highest
    /// frame folded in, `Ok(None)` when no full generation exists, and
    /// the last decode error when every full generation is corrupt.
    pub fn load_latest_chain<T, D>(
        &self,
        prefix: &str,
        mut decode_full: impl FnMut(&[u8]) -> Result<T, SnapError>,
        mut decode_delta: impl FnMut(&[u8]) -> Result<D, SnapError>,
        mut apply: impl FnMut(&mut T, D) -> Result<(), CheckpointError>,
    ) -> Result<Option<(u64, T)>, CheckpointError> {
        let fulls = self.generations(prefix)?;
        let deltas = self.delta_generations(prefix)?;
        let mut last_err: Option<SnapError> = None;
        for &generation in fulls.iter().rev() {
            let path = self.file_of(prefix, generation);
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            let mut v = match decode_full(&bytes) {
                Ok(v) => v,
                Err(e) => {
                    self.telemetry.corrupt_skipped.inc();
                    last_err = Some(e);
                    continue;
                }
            };
            self.telemetry.restores.inc();
            let mut top = generation;
            for &dg in deltas.iter().filter(|&&dg| dg > generation) {
                let applied = self
                    .read_delta(prefix, dg)
                    .ok()
                    .and_then(|b| decode_delta(&b).ok())
                    .and_then(|d| apply(&mut v, d).ok())
                    .is_some();
                if !applied {
                    self.telemetry.corrupt_skipped.inc();
                    break;
                }
                top = dg;
            }
            return Ok(Some((top, v)));
        }
        match last_err {
            Some(e) => Err(CheckpointError::Snap(e)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test (no tempfile dependency).
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "haystack-ckpt-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    fn sample_detector_state() -> DetectorState {
        DetectorState {
            rules: vec![
                vec![
                    LineEvidence { line: AnonId(1), mask: 0b101, first_met: Some(HourBin(7)) },
                    LineEvidence { line: AnonId(9), mask: 0b1, first_met: None },
                ],
                vec![],
                vec![LineEvidence { line: AnonId(3), mask: u64::MAX, first_met: Some(HourBin(0)) }],
            ],
        }
    }

    #[test]
    fn detector_state_round_trips() {
        let s = sample_detector_state();
        assert_eq!(DetectorState::decode(&s.encode()).unwrap(), s);
        assert_eq!(s.entry_count(), 3);
    }

    #[test]
    fn usage_state_round_trips() {
        let s = UsageState {
            packets: vec![vec![(AnonId(1), 12), (AnonId(2), 1)], vec![]],
            indicator: vec![vec![AnonId(2)], vec![AnonId(5)]],
        };
        assert_eq!(UsageState::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn staleness_state_round_trips_bit_exact() {
        let s = StalenessState {
            today: vec![((0, 0), 42), ((0, 1), 0)],
            baseline: vec![((0, 0), 1.0 / 3.0), ((0, 1), -0.0)],
            days_seen: 5,
        };
        let back = StalenessState::decode(&s.encode()).unwrap();
        assert_eq!(back.days_seen, 5);
        assert_eq!(back.today, s.today);
        for (a, b) in back.baseline.iter().zip(&s.baseline) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "baselines must be bit-identical");
        }
    }

    #[test]
    fn state_magics_are_disjoint() {
        let det = sample_detector_state().encode();
        assert!(matches!(UsageState::decode(&det), Err(SnapError::BadMagic)));
        assert!(matches!(StalenessState::decode(&det), Err(SnapError::BadMagic)));
    }

    #[test]
    fn write_load_and_prune_generations() {
        let root = scratch("gen");
        let dir = CheckpointDir::open(&root).unwrap();
        for i in 0..4u64 {
            let s = DetectorState {
                rules: vec![vec![LineEvidence { line: AnonId(i), mask: i, first_met: None }]],
            };
            assert_eq!(dir.write("det", &s.encode()).unwrap(), i);
        }
        // Pruned to the default two generations.
        assert_eq!(dir.generations("det").unwrap(), vec![2, 3]);
        let (generation, s) = dir
            .load_latest("det", DetectorState::decode)
            .unwrap()
            .expect("latest generation");
        assert_eq!(generation, 3);
        assert_eq!(s.rules[0][0].line, AnonId(3));
        // Prefixes are independent namespaces.
        assert!(dir.load_latest("other", DetectorState::decode).unwrap().is_none());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_latest_generation_falls_back_to_previous() {
        let root = scratch("corrupt");
        let dir = CheckpointDir::open(&root).unwrap();
        let good = DetectorState {
            rules: vec![vec![LineEvidence { line: AnonId(7), mask: 1, first_met: None }]],
        };
        dir.write("det", &good.encode()).unwrap();
        let newer = DetectorState {
            rules: vec![vec![LineEvidence { line: AnonId(8), mask: 3, first_met: None }]],
        };
        let g1 = dir.write("det", &newer.encode()).unwrap();

        // Bit-flip the newest generation on disk.
        let latest = root.join(format!("det-{g1:08}.ckpt"));
        let mut bytes = fs::read(&latest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&latest, &bytes).unwrap();

        let (generation, s) = dir
            .load_latest("det", DetectorState::decode)
            .unwrap()
            .expect("fallback generation");
        assert_eq!(generation, g1 - 1, "fell back to the previous generation");
        assert_eq!(s, good);

        // Truncate the older generation too: now every generation is
        // corrupt, and the error is typed, not a panic.
        let older = root.join(format!("det-{:08}.ckpt", g1 - 1));
        let bytes = fs::read(&older).unwrap();
        fs::write(&older, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            dir.load_latest("det", DetectorState::decode),
            Err(CheckpointError::Snap(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn detector_delta_round_trips_and_applies_as_upserts() {
        let mut base = sample_detector_state();
        let delta = DetectorDelta {
            rules: vec![
                vec![
                    // Replaces the existing line-1 entry…
                    LineEvidence { line: AnonId(1), mask: 0b111, first_met: Some(HourBin(9)) },
                    // …and inserts a new line between 1 and 9.
                    LineEvidence { line: AnonId(4), mask: 0b10, first_met: None },
                ],
                vec![LineEvidence { line: AnonId(2), mask: 1, first_met: None }],
                vec![],
            ],
        };
        assert_eq!(DetectorDelta::decode(&delta.encode()).unwrap(), delta);
        assert_eq!(delta.entry_count(), 3);
        delta.apply(&mut base).unwrap();
        assert_eq!(
            base.rules[0],
            vec![
                LineEvidence { line: AnonId(1), mask: 0b111, first_met: Some(HourBin(9)) },
                LineEvidence { line: AnonId(4), mask: 0b10, first_met: None },
                LineEvidence { line: AnonId(9), mask: 0b1, first_met: None },
            ]
        );
        assert_eq!(base.rules[1], vec![LineEvidence { line: AnonId(2), mask: 1, first_met: None }]);
        // Rule-count mismatch is a typed error, not a partial merge.
        let narrow = DetectorDelta { rules: vec![vec![]] };
        assert!(matches!(
            narrow.apply(&mut base),
            Err(CheckpointError::StateMismatch(_))
        ));
    }

    #[test]
    fn snapshot_enum_decodes_either_shape_by_magic() {
        let full = DetectorSnapshot::Full(sample_detector_state());
        let delta = DetectorSnapshot::Delta(DetectorDelta {
            rules: vec![vec![LineEvidence { line: AnonId(5), mask: 2, first_met: None }]],
        });
        assert_eq!(DetectorSnapshot::decode(&full.encode()).unwrap(), full);
        assert_eq!(DetectorSnapshot::decode(&delta.encode()).unwrap(), delta);
        assert!(full.is_full());
        assert!(!delta.is_full());
    }

    #[test]
    fn usage_delta_applies_packet_upserts_and_indicator_inserts() {
        let mut base = UsageState {
            packets: vec![vec![(AnonId(1), 12), (AnonId(2), 1)], vec![]],
            indicator: vec![vec![AnonId(2)], vec![]],
        };
        let delta = UsageDelta {
            packets: vec![vec![(AnonId(2), 9), (AnonId(3), 4)], vec![(AnonId(7), 1)]],
            indicator: vec![vec![AnonId(1), AnonId(2)], vec![]],
        };
        assert_eq!(UsageDelta::decode(&delta.encode()).unwrap(), delta);
        assert_eq!(delta.entry_count(), 5);
        delta.apply(&mut base).unwrap();
        assert_eq!(base.packets[0], vec![(AnonId(1), 12), (AnonId(2), 9), (AnonId(3), 4)]);
        assert_eq!(base.packets[1], vec![(AnonId(7), 1)]);
        assert_eq!(base.indicator[0], vec![AnonId(1), AnonId(2)]);
    }

    #[test]
    fn staleness_delta_applies_today_upserts_only() {
        let mut base = StalenessState {
            today: vec![((0, 0), 42), ((0, 1), 3)],
            baseline: vec![((0, 0), 0.5)],
            days_seen: 4,
        };
        let delta = StalenessDelta { today: vec![((0, 1), 8), ((1, 0), 2)] };
        assert_eq!(StalenessDelta::decode(&delta.encode()).unwrap(), delta);
        delta.apply(&mut base);
        assert_eq!(base.today, vec![((0, 0), 42), ((0, 1), 8), ((1, 0), 2)]);
        assert_eq!(base.baseline, vec![((0, 0), 0.5)]);
        assert_eq!(base.days_seen, 4);
    }

    fn one_entry(line: u64, mask: u64) -> DetectorState {
        DetectorState {
            rules: vec![vec![LineEvidence { line: AnonId(line), mask, first_met: None }]],
        }
    }

    fn one_upsert(line: u64, mask: u64) -> DetectorDelta {
        DetectorDelta {
            rules: vec![vec![LineEvidence { line: AnonId(line), mask, first_met: None }]],
        }
    }

    fn load_chain(dir: &CheckpointDir) -> Option<(u64, DetectorState)> {
        dir.load_latest_chain(
            "det",
            DetectorState::decode,
            DetectorDelta::decode,
            |s, d: DetectorDelta| d.apply(s),
        )
        .unwrap()
    }

    #[test]
    fn full_and_delta_share_one_generation_counter() {
        let root = scratch("chain-gen");
        let dir = CheckpointDir::open(&root).unwrap();
        assert_eq!(dir.write("det", &one_entry(1, 1).encode()).unwrap(), 0);
        assert_eq!(dir.write_delta("det", &one_upsert(2, 1).encode(), 1).unwrap(), 1);
        assert_eq!(dir.write_delta("det", &one_upsert(3, 1).encode(), 1).unwrap(), 2);
        assert_eq!(dir.write("det", &one_entry(9, 9).encode()).unwrap(), 3);
        assert_eq!(dir.generations("det").unwrap(), vec![0, 3]);
        assert_eq!(dir.delta_generations("det").unwrap(), vec![1, 2]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn chain_replays_full_plus_newer_deltas_in_order() {
        let root = scratch("chain-replay");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &one_entry(1, 0b1).encode()).unwrap();
        dir.write_delta("det", &one_upsert(1, 0b11).encode(), 1).unwrap();
        dir.write_delta("det", &one_upsert(2, 0b1).encode(), 1).unwrap();
        let (generation, s) = load_chain(&dir).expect("chain");
        assert_eq!(generation, 2, "top of chain is the newest delta");
        assert_eq!(
            s.rules[0],
            vec![
                LineEvidence { line: AnonId(1), mask: 0b11, first_met: None },
                LineEvidence { line: AnonId(2), mask: 0b1, first_met: None },
            ]
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_delta_stops_the_chain_at_the_last_consistent_generation() {
        let root = scratch("chain-corrupt-delta");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &one_entry(1, 0b1).encode()).unwrap();
        let g1 = dir.write_delta("det", &one_upsert(1, 0b11).encode(), 1).unwrap();
        let g2 = dir.write_delta("det", &one_upsert(1, 0b111).encode(), 1).unwrap();
        // Bit-flip the middle delta: it and everything after must drop.
        let mid = root.join(format!("det-{g1:08}.dckpt"));
        let mut bytes = fs::read(&mid).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x20;
        fs::write(&mid, &bytes).unwrap();
        let (generation, s) = load_chain(&dir).expect("chain");
        assert_eq!(generation, 0, "fell back to the full generation");
        assert_eq!(s, one_entry(1, 0b1));
        assert!(g2 > g1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_full_falls_back_and_newer_deltas_still_apply() {
        let root = scratch("chain-corrupt-full");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &one_entry(1, 0b1).encode()).unwrap(); // gen 0
        dir.write_delta("det", &one_upsert(1, 0b11).encode(), 1).unwrap(); // gen 1
        let g2 = dir.write("det", &one_entry(1, 0b11).encode()).unwrap(); // gen 2
        dir.write_delta("det", &one_upsert(2, 0b1).encode(), 1).unwrap(); // gen 3
        // Corrupt the newest full: absolute-value deltas written after it
        // must still land on top of the older full.
        let newest_full = root.join(format!("det-{g2:08}.ckpt"));
        let mut bytes = fs::read(&newest_full).unwrap();
        let at = bytes.len() / 2;
        bytes[at] ^= 0x40;
        fs::write(&newest_full, &bytes).unwrap();
        let (generation, s) = load_chain(&dir).expect("chain");
        assert_eq!(generation, 3, "chain reaches the delta past the corrupt full");
        assert_eq!(
            s.rules[0],
            vec![
                LineEvidence { line: AnonId(1), mask: 0b11, first_met: None },
                LineEvidence { line: AnonId(2), mask: 0b1, first_met: None },
            ]
        );
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn full_write_prunes_deltas_older_than_the_oldest_retained_full() {
        let root = scratch("chain-prune");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &one_entry(1, 1).encode()).unwrap(); // gen 0
        dir.write_delta("det", &one_upsert(2, 1).encode(), 1).unwrap(); // gen 1
        dir.write("det", &one_entry(1, 1).encode()).unwrap(); // gen 2
        dir.write_delta("det", &one_upsert(3, 1).encode(), 1).unwrap(); // gen 3
        dir.write("det", &one_entry(1, 1).encode()).unwrap(); // gen 4 → prunes gen 0
        // keep=2 retains fulls {2, 4}; the gen-1 delta predates full 2.
        assert_eq!(dir.generations("det").unwrap(), vec![2, 4]);
        assert_eq!(dir.delta_generations("det").unwrap(), vec![3]);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn no_tmp_files_survive_a_write() {
        let root = scratch("tmp");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &sample_detector_state().encode()).unwrap();
        dir.write_delta("det", &one_upsert(1, 1).encode(), 1).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must not outlive a write");
        fs::remove_dir_all(&root).unwrap();
    }

    fn tmp_remnants(root: &Path) -> Vec<String> {
        let mut out: Vec<String> = fs::read_dir(root)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn enospc_is_a_typed_error_and_the_previous_generation_survives() {
        let root = scratch("enospc");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &one_entry(1, 1).encode()).unwrap(); // gen 0

        dir.inject_write_fault(WriteFault::Enospc);
        let err = dir.write("det", &one_entry(2, 3).encode()).unwrap_err();
        match err {
            CheckpointError::Io { err, .. } => {
                assert_eq!(err.raw_os_error(), Some(28), "surfaces ENOSPC, not a panic")
            }
            other => panic!("expected Io, got {other:?}"),
        }
        // No new generation became visible; the old one still loads.
        assert_eq!(dir.generations("det").unwrap(), vec![0]);
        let (generation, state) =
            dir.load_latest("det", DetectorState::decode).unwrap().expect("gen 0 loads");
        assert_eq!((generation, state), (0, one_entry(1, 1)));
        // The fault is one-shot: the retry lands as generation 1.
        assert_eq!(dir.write("det", &one_entry(2, 3).encode()).unwrap(), 1);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_tmp_remnant_is_invisible_to_scans_and_chain_loads() {
        let root = scratch("torn");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &one_entry(1, 1).encode()).unwrap(); // gen 0
        dir.write_delta("det", &one_upsert(2, 1).encode(), 1).unwrap(); // gen 1

        dir.inject_write_fault(WriteFault::TornWrite);
        let err = dir.write_delta("det", &one_upsert(3, 1).encode(), 1).unwrap_err();
        assert!(matches!(err, CheckpointError::Io { .. }), "typed error, not a panic");
        // The crash left a truncated tmp remnant on disk…
        assert_eq!(tmp_remnants(&root), vec!["det-00000002.dckpt.tmp".to_string()]);
        // …which generation scans and chain loads never see.
        assert_eq!(dir.generations("det").unwrap(), vec![0]);
        assert_eq!(dir.delta_generations("det").unwrap(), vec![1]);
        let (top, state) = load_chain(&dir).expect("chain loads");
        assert_eq!(top, 1);
        assert_eq!(state.rules[0].len(), 2, "gen 0 entry plus the gen 1 upsert");
        // The next write overwrites the remnant and completes normally.
        assert_eq!(dir.write_delta("det", &one_upsert(3, 1).encode(), 1).unwrap(), 2);
        assert_eq!(tmp_remnants(&root), Vec::<String>::new());
        assert_eq!(load_chain(&dir).unwrap().0, 2);
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_full_write_degrades_to_the_previous_full() {
        let root = scratch("torn-full");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &one_entry(1, 1).encode()).unwrap(); // gen 0
        dir.inject_write_fault(WriteFault::TornWrite);
        dir.write("det", &one_entry(9, 9).encode()).unwrap_err();
        assert_eq!(tmp_remnants(&root), vec!["det-00000001.ckpt.tmp".to_string()]);
        let (generation, state) = load_chain(&dir).expect("previous full loads");
        assert_eq!((generation, state), (0, one_entry(1, 1)));
        fs::remove_dir_all(&root).unwrap();
    }
}
