//! Crash-safe checkpointing of long-lived pipeline state (DESIGN.md §12).
//!
//! The paper's deployment runs detection over two weeks of ISP NetFlow
//! for ~15 M subscriber lines (§6) — losing the accumulated per-line
//! evidence to a collector restart or a worker crash would cost days of
//! warm-up. This module provides the two halves of recovery:
//!
//! * **State codecs** — [`DetectorState`], [`UsageState`],
//!   [`StalenessState`]: plain, order-normalized exports of the
//!   detector's per-rule line maps, the usage tracker's hour window, and
//!   the staleness monitor's decayed baselines, each encodable as one
//!   checksummed [`haystack_net::snapshot`] frame. Baselines travel as
//!   raw IEEE-754 bits, so a restore replays *bit-identical* float state.
//! * **[`CheckpointDir`]** — generation-numbered snapshot files written
//!   atomically (temp file + fsync + rename + directory fsync) on a
//!   caller-chosen cadence, pruned to a bounded number of generations.
//!   [`CheckpointDir::load_latest`] walks generations newest-first and
//!   *skips* any frame the checksum rejects, so a torn or bit-rotten
//!   write degrades to the previous generation instead of a crash loop.
//!
//! Everything here reports through the `checkpoint` telemetry scope
//! (snapshots written, bytes, restores, corrupt generations skipped) so
//! `haystack metrics` shows recovery activity alongside the pipeline
//! counters.

use crate::telemetry::{Counter, Scope};
use haystack_net::snapshot::{open, seal, SnapError, SnapReader, SnapWriter, MAGIC_LEN};
use haystack_net::{AnonId, HourBin};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Why a checkpoint operation failed.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// Path the operation touched.
        path: PathBuf,
        /// The underlying error.
        err: std::io::Error,
    },
    /// A snapshot frame failed to decode (and no older generation was
    /// usable either).
    Snap(SnapError),
    /// A decoded state does not fit the component it is being restored
    /// into (e.g. rule-count mismatch — the checkpoint was taken under a
    /// different rule set).
    StateMismatch(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, err } => {
                write!(f, "checkpoint I/O error at {}: {err}", path.display())
            }
            CheckpointError::Snap(e) => write!(f, "checkpoint snapshot error: {e}"),
            CheckpointError::StateMismatch(what) => {
                write!(f, "checkpoint does not match this configuration: {what}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<SnapError> for CheckpointError {
    fn from(e: SnapError) -> Self {
        CheckpointError::Snap(e)
    }
}

fn io_err(path: &Path, err: std::io::Error) -> CheckpointError {
    CheckpointError::Io { path: path.to_path_buf(), err }
}

/// `Option<HourBin>` sentinel: hours in the study window are tiny, so
/// `u32::MAX` is free to mean "never".
const NO_HOUR: u32 = u32::MAX;

fn put_opt_hour(w: &mut SnapWriter, h: Option<HourBin>) {
    w.put_u32(h.map_or(NO_HOUR, |h| h.0));
}

fn read_opt_hour(r: &mut SnapReader<'_>) -> Result<Option<HourBin>, SnapError> {
    let v = r.u32()?;
    Ok(if v == NO_HOUR { None } else { Some(HourBin(v)) })
}

/// One (line → evidence) entry of a rule's state map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEvidence {
    /// The subscriber line.
    pub line: AnonId,
    /// Evidence bitmask over the rule's domains.
    pub mask: u64,
    /// Hour the rule's own threshold was first met, if ever.
    pub first_met: Option<HourBin>,
}

/// The detector's full evidence state: one sorted entry list per rule.
///
/// Exported by [`Detector::export_state`](crate::detector::Detector::
/// export_state), restored by [`Detector::restore_state`](crate::
/// detector::Detector::restore_state). Entries are sorted by line, so
/// equal detectors export byte-identical frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorState {
    /// Per-rule entries, indexed like `RuleSet::rules`.
    pub rules: Vec<Vec<LineEvidence>>,
}

impl DetectorState {
    /// Frame magic of a detector-state snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYDETC\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the state as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.rules.len() as u64);
        for entries in &self.rules {
            w.put_u64(entries.len() as u64);
            for e in entries {
                w.put_u64(e.line.0);
                w.put_u64(e.mask);
                put_opt_hour(&mut w, e.first_met);
            }
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`DetectorState::encode`].
    pub fn decode(frame: &[u8]) -> Result<DetectorState, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let nrules = r.count(8)?;
        let mut rules = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(8 + 8 + 4)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push(LineEvidence {
                    line: AnonId(r.u64()?),
                    mask: r.u64()?,
                    first_met: read_opt_hour(&mut r)?,
                });
            }
            rules.push(entries);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(DetectorState { rules })
    }

    /// Total (line, rule) entries held.
    pub fn entry_count(&self) -> usize {
        self.rules.iter().map(Vec::len).sum()
    }
}

/// The usage tracker's current hour window, sorted for determinism.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UsageState {
    /// Per-rule (line, sampled packets) tallies.
    pub packets: Vec<Vec<(AnonId, u64)>>,
    /// Per-rule lines that touched a usage-indicator domain.
    pub indicator: Vec<Vec<AnonId>>,
}

impl UsageState {
    /// Frame magic of a usage-state snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYUSGE\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the state as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.packets.len() as u64);
        for entries in &self.packets {
            w.put_u64(entries.len() as u64);
            for (line, pkts) in entries {
                w.put_u64(line.0);
                w.put_u64(*pkts);
            }
        }
        w.put_u64(self.indicator.len() as u64);
        for lines in &self.indicator {
            w.put_u64(lines.len() as u64);
            for line in lines {
                w.put_u64(line.0);
            }
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`UsageState::encode`].
    pub fn decode(frame: &[u8]) -> Result<UsageState, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let nrules = r.count(8)?;
        let mut packets = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(16)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                entries.push((AnonId(r.u64()?), r.u64()?));
            }
            packets.push(entries);
        }
        let nrules = r.count(8)?;
        let mut indicator = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let n = r.count(8)?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                lines.push(AnonId(r.u64()?));
            }
            indicator.push(lines);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(UsageState { packets, indicator })
    }
}

/// The staleness monitor's day counts and decayed baselines.
///
/// Baselines are carried as raw `f64` bits: the decayed mean depends on
/// the exact order of float folds, and a resumed monitor must continue
/// from *bit-identical* values to produce the same verdicts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StalenessState {
    /// Sorted ((rule, domain), today's matched packets).
    pub today: Vec<((u16, u16), u64)>,
    /// Sorted ((rule, domain), decayed baseline).
    pub baseline: Vec<((u16, u16), f64)>,
    /// Days folded so far.
    pub days_seen: u32,
}

impl StalenessState {
    /// Frame magic of a staleness-state snapshot.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYSTAL\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the state as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u32(self.days_seen);
        w.put_u64(self.today.len() as u64);
        for ((ri, di), pkts) in &self.today {
            w.put_u16(*ri);
            w.put_u16(*di);
            w.put_u64(*pkts);
        }
        w.put_u64(self.baseline.len() as u64);
        for ((ri, di), b) in &self.baseline {
            w.put_u16(*ri);
            w.put_u16(*di);
            w.put_f64_bits(*b);
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`StalenessState::encode`].
    pub fn decode(frame: &[u8]) -> Result<StalenessState, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let days_seen = r.u32()?;
        let n = r.count(12)?;
        let mut today = Vec::with_capacity(n);
        for _ in 0..n {
            today.push(((r.u16()?, r.u16()?), r.u64()?));
        }
        let n = r.count(12)?;
        let mut baseline = Vec::with_capacity(n);
        for _ in 0..n {
            baseline.push(((r.u16()?, r.u16()?), r.f64_bits()?));
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(StalenessState { today, baseline, days_seen })
    }
}

/// Telemetry handles for checkpoint activity, bound once at
/// [`CheckpointDir::open`] under the `checkpoint` scope.
#[derive(Debug, Clone)]
struct DirTelemetry {
    snapshots_written: Counter,
    snapshot_bytes: Counter,
    restores: Counter,
    corrupt_skipped: Counter,
}

impl DirTelemetry {
    fn new() -> DirTelemetry {
        let scope = Scope::named("checkpoint");
        DirTelemetry {
            snapshots_written: scope.counter("snapshots_written"),
            snapshot_bytes: scope.counter("snapshot_bytes"),
            restores: scope.counter("restores"),
            corrupt_skipped: scope.counter("corrupt_skipped"),
        }
    }
}

/// A directory of generation-numbered snapshot files.
///
/// Each [`CheckpointDir::write`] produces `{prefix}-{generation:08}.ckpt`
/// via temp file + fsync + rename + directory fsync, so a crash at any
/// point leaves either the old generation set or the old set plus one
/// complete new file — never a half-written visible checkpoint. Old
/// generations are pruned down to [`CheckpointDir::keep`] per prefix;
/// the default keeps two, so one corrupt latest generation still leaves
/// a fallback.
#[derive(Debug)]
pub struct CheckpointDir {
    root: PathBuf,
    keep: usize,
    telemetry: DirTelemetry,
}

impl CheckpointDir {
    /// Default generations retained per prefix.
    pub const DEFAULT_KEEP: usize = 2;

    /// Open (creating if needed) a checkpoint directory.
    pub fn open(root: impl Into<PathBuf>) -> Result<CheckpointDir, CheckpointError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err(&root, e))?;
        Ok(CheckpointDir { root, keep: Self::DEFAULT_KEEP, telemetry: DirTelemetry::new() })
    }

    /// Override how many generations are retained per prefix (min 1).
    pub fn with_keep(mut self, keep: usize) -> CheckpointDir {
        self.keep = keep.max(1);
        self
    }

    /// The directory path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn file_of(&self, prefix: &str, generation: u64) -> PathBuf {
        self.root.join(format!("{prefix}-{generation:08}.ckpt"))
    }

    /// Existing generation numbers for `prefix`, ascending.
    pub fn generations(&self, prefix: &str) -> Result<Vec<u64>, CheckpointError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.root).map_err(|e| io_err(&self.root, e))?;
        let lead = format!("{prefix}-");
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.root, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&lead) else { continue };
            let Some(digits) = rest.strip_suffix(".ckpt") else { continue };
            if digits.len() == 8 {
                if let Ok(generation) = digits.parse::<u64>() {
                    out.push(generation);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Atomically write `frame` as the next generation of `prefix`,
    /// pruning old generations beyond the retention bound. Returns the
    /// generation number written.
    pub fn write(&self, prefix: &str, frame: &[u8]) -> Result<u64, CheckpointError> {
        let generation = self.generations(prefix)?.last().map_or(0, |g| g + 1);
        let path = self.file_of(prefix, generation);
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(frame).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        // Persist the rename itself: fsync the directory (best effort on
        // platforms where directories cannot be opened).
        if let Ok(dir) = fs::File::open(&self.root) {
            let _ = dir.sync_all();
        }
        self.telemetry.snapshots_written.inc();
        self.telemetry.snapshot_bytes.add(frame.len() as u64);
        self.prune(prefix)?;
        Ok(generation)
    }

    fn prune(&self, prefix: &str) -> Result<(), CheckpointError> {
        let generations = self.generations(prefix)?;
        if generations.len() > self.keep {
            for &generation in &generations[..generations.len() - self.keep] {
                let path = self.file_of(prefix, generation);
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }
        Ok(())
    }

    /// Read the raw frame of one specific generation, without decoding.
    ///
    /// Loaders that need to *explain* a rejected checkpoint (rather than
    /// silently fall back) read the frame themselves and classify the
    /// failure — see `haystack-cli`'s resume validation, which separates
    /// genuine version skew from on-disk corruption.
    pub fn read_generation(&self, prefix: &str, generation: u64) -> Result<Vec<u8>, CheckpointError> {
        let path = self.file_of(prefix, generation);
        fs::read(&path).map_err(|e| io_err(&path, e))
    }

    /// Load the newest generation of `prefix` that `decode` accepts.
    ///
    /// Generations are tried newest-first; a frame that fails to decode
    /// (truncated by a torn write, bit-flipped on disk) is *skipped* —
    /// counted in the `checkpoint.corrupt_skipped` telemetry — and the
    /// previous generation is tried instead. Returns `Ok(None)` when no
    /// generation exists, and the last decode error when every existing
    /// generation is corrupt.
    pub fn load_latest<T>(
        &self,
        prefix: &str,
        mut decode: impl FnMut(&[u8]) -> Result<T, SnapError>,
    ) -> Result<Option<(u64, T)>, CheckpointError> {
        let generations = self.generations(prefix)?;
        let mut last_err: Option<SnapError> = None;
        for &generation in generations.iter().rev() {
            let path = self.file_of(prefix, generation);
            let bytes = fs::read(&path).map_err(|e| io_err(&path, e))?;
            match decode(&bytes) {
                Ok(v) => {
                    self.telemetry.restores.inc();
                    return Ok(Some((generation, v)));
                }
                Err(e) => {
                    self.telemetry.corrupt_skipped.inc();
                    last_err = Some(e);
                }
            }
        }
        match last_err {
            Some(e) => Err(CheckpointError::Snap(e)),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A unique scratch directory per test (no tempfile dependency).
    fn scratch(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "haystack-ckpt-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ))
    }

    fn sample_detector_state() -> DetectorState {
        DetectorState {
            rules: vec![
                vec![
                    LineEvidence { line: AnonId(1), mask: 0b101, first_met: Some(HourBin(7)) },
                    LineEvidence { line: AnonId(9), mask: 0b1, first_met: None },
                ],
                vec![],
                vec![LineEvidence { line: AnonId(3), mask: u64::MAX, first_met: Some(HourBin(0)) }],
            ],
        }
    }

    #[test]
    fn detector_state_round_trips() {
        let s = sample_detector_state();
        assert_eq!(DetectorState::decode(&s.encode()).unwrap(), s);
        assert_eq!(s.entry_count(), 3);
    }

    #[test]
    fn usage_state_round_trips() {
        let s = UsageState {
            packets: vec![vec![(AnonId(1), 12), (AnonId(2), 1)], vec![]],
            indicator: vec![vec![AnonId(2)], vec![AnonId(5)]],
        };
        assert_eq!(UsageState::decode(&s.encode()).unwrap(), s);
    }

    #[test]
    fn staleness_state_round_trips_bit_exact() {
        let s = StalenessState {
            today: vec![((0, 0), 42), ((0, 1), 0)],
            baseline: vec![((0, 0), 1.0 / 3.0), ((0, 1), -0.0)],
            days_seen: 5,
        };
        let back = StalenessState::decode(&s.encode()).unwrap();
        assert_eq!(back.days_seen, 5);
        assert_eq!(back.today, s.today);
        for (a, b) in back.baseline.iter().zip(&s.baseline) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "baselines must be bit-identical");
        }
    }

    #[test]
    fn state_magics_are_disjoint() {
        let det = sample_detector_state().encode();
        assert!(matches!(UsageState::decode(&det), Err(SnapError::BadMagic)));
        assert!(matches!(StalenessState::decode(&det), Err(SnapError::BadMagic)));
    }

    #[test]
    fn write_load_and_prune_generations() {
        let root = scratch("gen");
        let dir = CheckpointDir::open(&root).unwrap();
        for i in 0..4u64 {
            let s = DetectorState {
                rules: vec![vec![LineEvidence { line: AnonId(i), mask: i, first_met: None }]],
            };
            assert_eq!(dir.write("det", &s.encode()).unwrap(), i);
        }
        // Pruned to the default two generations.
        assert_eq!(dir.generations("det").unwrap(), vec![2, 3]);
        let (generation, s) = dir
            .load_latest("det", DetectorState::decode)
            .unwrap()
            .expect("latest generation");
        assert_eq!(generation, 3);
        assert_eq!(s.rules[0][0].line, AnonId(3));
        // Prefixes are independent namespaces.
        assert!(dir.load_latest("other", DetectorState::decode).unwrap().is_none());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn corrupt_latest_generation_falls_back_to_previous() {
        let root = scratch("corrupt");
        let dir = CheckpointDir::open(&root).unwrap();
        let good = DetectorState {
            rules: vec![vec![LineEvidence { line: AnonId(7), mask: 1, first_met: None }]],
        };
        dir.write("det", &good.encode()).unwrap();
        let newer = DetectorState {
            rules: vec![vec![LineEvidence { line: AnonId(8), mask: 3, first_met: None }]],
        };
        let g1 = dir.write("det", &newer.encode()).unwrap();

        // Bit-flip the newest generation on disk.
        let latest = root.join(format!("det-{g1:08}.ckpt"));
        let mut bytes = fs::read(&latest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&latest, &bytes).unwrap();

        let (generation, s) = dir
            .load_latest("det", DetectorState::decode)
            .unwrap()
            .expect("fallback generation");
        assert_eq!(generation, g1 - 1, "fell back to the previous generation");
        assert_eq!(s, good);

        // Truncate the older generation too: now every generation is
        // corrupt, and the error is typed, not a panic.
        let older = root.join(format!("det-{:08}.ckpt", g1 - 1));
        let bytes = fs::read(&older).unwrap();
        fs::write(&older, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            dir.load_latest("det", DetectorState::decode),
            Err(CheckpointError::Snap(_))
        ));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn no_tmp_files_survive_a_write() {
        let root = scratch("tmp");
        let dir = CheckpointDir::open(&root).unwrap();
        dir.write("det", &sample_detector_state().encode()).unwrap();
        let leftovers: Vec<_> = fs::read_dir(&root)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files must not outlive a write");
        fs::remove_dir_all(&root).unwrap();
    }
}
