//! FxHash-style hashing for the detector hot path.
//!
//! The per-record cost budget (§1: "millions of IoT devices within
//! minutes") leaves no room for SipHash's per-lookup setup: the hot maps
//! are keyed by small integers ([`AnonId`](haystack_net::AnonId) lines,
//! packed `(ip, port)` words), where a multiply-xor mix is both faster
//! and sufficiently uniform — the same trade rustc itself makes with
//! `FxHashMap`. External crates are vendored shims in this workspace, so
//! the hasher is implemented here: one `rotate ^ word → multiply` step
//! per 8-byte word, exactly the Fx construction.
//!
//! Two entry points:
//!
//! * [`FastMap`] / [`FastSet`] — drop-in `HashMap`/`HashSet` aliases
//!   using [`FxHasher`], for keyed per-line state.
//! * [`mix64`] — a one-shot splitmix64 finalizer for *pre-packed* `u64`
//!   keys probing open-addressing tables (the compiled
//!   [`HitList`](crate::hitlist::HitList)), where every input bit must
//!   reach the low bits that the power-of-two mask keeps.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx multiply constant (a random odd 64-bit number; the same one
/// rustc's FxHash uses).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A `HashMap` keyed through [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` hashed through [`FxHasher`].
pub type FastSet<T> = HashSet<T, FxBuildHasher>;

/// Zero-state builder for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A multiply-xor (FxHash-style) streaming hasher.
///
/// Not cryptographic and not HashDoS-resistant — the detector's keys are
/// anonymized line ids and rule indices produced by *this* system, never
/// attacker-chosen strings, so throughput wins.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" and "ab\0" diverge.
            self.add(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add(v as u64);
        self.add((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn write_i8(&mut self, v: i8) {
        self.add(v as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, v: i16) {
        self.add(v as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.add(v as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_isize(&mut self, v: isize) {
        self.add(v as usize as u64);
    }
}

/// splitmix64 finalizer: full avalanche for a packed integer key.
///
/// Used where a *single* multiply would leave the masked-off low bits
/// depending only on the key's low bits (open-addressing tables with a
/// power-of-two mask take the low bits of the hash; the compiled hitlist
/// packs the IP into the *high* 32 bits of its key).
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        
        
        FxBuildHasher::default().hash_one(&v)
    }

    #[test]
    fn distinct_small_keys_hash_apart() {
        // Sanity, not statistics: sequential u64 keys (the AnonId shape)
        // must not collide in bulk after masking to a small table.
        let mut buckets = vec![0u32; 1024];
        for i in 0u64..100_000 {
            buckets[(hash_of(i) & 1023) as usize] += 1;
        }
        let expect = 100_000 / 1024;
        for (b, &c) in buckets.iter().enumerate() {
            assert!(
                c > expect as u32 / 4 && c < expect as u32 * 4,
                "bucket {b} holds {c} of 100k (expected ≈{expect})"
            );
        }
    }

    #[test]
    fn byte_streams_with_different_tails_diverge() {
        assert_ne!(hash_of(b"ab".as_slice()), hash_of(b"ab\0".as_slice()));
        assert_ne!(hash_of("Alexa Enabled"), hash_of("Alexa  Enabled"));
    }

    #[test]
    fn mix64_avalanches_into_low_bits() {
        // Keys differing only in high bits (the packed-IP half) must
        // land in different low-bit buckets most of the time.
        let mut same = 0;
        for i in 0u64..1_000 {
            let a = mix64(i << 32) & 0xfff;
            let b = mix64((i + 1) << 32) & 0xfff;
            if a == b {
                same += 1;
            }
        }
        assert!(same < 20, "{same}/1000 high-bit-only pairs collide in the low 12 bits");
    }
}
