//! Signature packs — the externalized rule layer (DESIGN.md §14).
//!
//! A pack carries everything the detection side needs and nothing it
//! can derive: the interned class table (names, in id order), every
//! rule's domain/port/IP evidence with usage-indicator flags, the
//! undetectable casualty list, the evidence threshold `D`, and
//! provenance strings. It is one checksummed [`haystack_net::snapshot`]
//! frame, so truncation, bit rot, and version skew are typed errors —
//! and [`haystack_net::snapshot::checksum_ok`] separates the two for
//! operators, exactly as resume validation does for checkpoints.
//!
//! The encoding is **byte-determinate**: no timestamps, no map
//! iteration order (ports and IPs are `BTreeSet`s, classes travel in
//! id order), so `export → load → export` reproduces the frame and a
//! detector driven by a loaded pack is byte-identical to one driven by
//! the compiled-in rules it was exported from.
//!
//! [`SignaturePack::lint`] is the structural gate: defects that the
//! codec happily round-trips (empty domain sets, dangling parents,
//! duplicate rules, a threshold outside `(0, 1]`) are reported as
//! human-readable strings naming the offending class, domain, and
//! field. `haystack rules lint` prints them; [`SignaturePack::load`]
//! refuses a defective pack outright.

use crate::checkpoint::{DetectorState, LineEvidence, StalenessState, UsageState};
use crate::classes::{ClassId, ClassTable};
use crate::fasthash::FastMap;
use crate::rules::{DetectionRule, RuleDomain, RuleSet, Undetectable};
use haystack_dns::DomainName;
use haystack_net::snapshot::{open, seal, SnapError, SnapReader, SnapWriter, MAGIC_LEN};
use haystack_testbed::catalog::DetectionLevel;
use std::fmt;
use std::net::Ipv4Addr;

/// The detector evidence mask is a `u64`; a rule cannot monitor more
/// domains than it has bits.
pub const MAX_RULE_DOMAINS: usize = 64;

/// Why a pack was rejected.
#[derive(Debug)]
pub enum PackError {
    /// The frame failed to decode (truncated, wrong magic, version
    /// skew, checksum mismatch, or structurally impossible payload).
    Snap(SnapError),
    /// The frame decoded but the rules are defective; one message per
    /// defect, naming the offending class/domain/field.
    Lint(Vec<String>),
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Snap(e) => write!(f, "signature pack unreadable: {e}"),
            PackError::Lint(defects) => {
                write!(f, "signature pack rejected ({} defects)", defects.len())?;
                for d in defects {
                    write!(f, "\n  - {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for PackError {}

impl From<SnapError> for PackError {
    fn from(e: SnapError) -> Self {
        PackError::Snap(e)
    }
}

/// A versioned, checksummed, self-contained rule layer.
#[derive(Debug, Clone, PartialEq)]
pub struct SignaturePack {
    /// The full rule set (classes, rules, undetectable list).
    pub rules: RuleSet,
    /// Evidence threshold `D` the pack was generated for.
    pub threshold: f64,
    /// What produced the pack (e.g. `generate(seed=42)`), for humans.
    pub source: String,
    /// Free-form operator note.
    pub comment: String,
}

fn level_tag(level: DetectionLevel) -> u8 {
    match level {
        DetectionLevel::Platform => 0,
        DetectionLevel::Manufacturer => 1,
        DetectionLevel::Product => 2,
    }
}

fn level_from_tag(tag: u8) -> Result<DetectionLevel, SnapError> {
    Ok(match tag {
        0 => DetectionLevel::Platform,
        1 => DetectionLevel::Manufacturer,
        2 => DetectionLevel::Product,
        _ => return Err(SnapError::Malformed("unknown detection level tag")),
    })
}

fn reason_tag(reason: Undetectable) -> u8 {
    match reason {
        Undetectable::SharedInfrastructure => 0,
        Undetectable::InsufficientInfo => 1,
    }
}

fn reason_from_tag(tag: u8) -> Result<Undetectable, SnapError> {
    Ok(match tag {
        0 => Undetectable::SharedInfrastructure,
        1 => Undetectable::InsufficientInfo,
        _ => return Err(SnapError::Malformed("unknown undetectable reason tag")),
    })
}

fn read_str(r: &mut SnapReader<'_>) -> Result<String, SnapError> {
    let bytes = r.bytes()?;
    std::str::from_utf8(bytes)
        .map(str::to_string)
        .map_err(|_| SnapError::Malformed("string not UTF-8"))
}

impl SignaturePack {
    /// Frame magic of a signature pack.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYPACK\0";
    /// Pack format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Whether `bytes` even claims to be a signature pack (used by the
    /// CLI to tell a pack file from a legacy JSON rules file).
    pub fn sniff(bytes: &[u8]) -> bool {
        bytes.len() >= MAGIC_LEN && &bytes[..MAGIC_LEN] == Self::MAGIC
    }

    /// Seal the pack as one checksummed frame. Deterministic: the same
    /// pack always encodes to the same bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        // Class table, in id order — ids on the wire are table indices.
        w.put_u64(self.rules.classes.len() as u64);
        for (_, name) in self.rules.classes.iter() {
            w.put_str(name);
        }
        // Rules.
        w.put_u64(self.rules.rules.len() as u64);
        for rule in &self.rules.rules {
            w.put_u16(rule.class.0);
            w.put_u8(level_tag(rule.level));
            w.put_u16(rule.parent.map_or(ClassId::NONE_WIRE, |p| p.0));
            w.put_u64(rule.domains.len() as u64);
            for dom in &rule.domains {
                w.put_str(dom.name.as_str());
                w.put_u64(dom.ports.len() as u64);
                for &port in &dom.ports {
                    w.put_u16(port);
                }
                w.put_u64(dom.ips.len() as u64);
                for &ip in &dom.ips {
                    w.put_u32(u32::from(ip));
                }
                w.put_u8(u8::from(dom.usage_indicator));
            }
        }
        // Undetectable casualty list.
        w.put_u64(self.rules.undetectable.len() as u64);
        for &(class, reason) in &self.rules.undetectable {
            w.put_u16(class.0);
            w.put_u8(reason_tag(reason));
        }
        // Threshold + provenance.
        w.put_f64_bits(self.threshold);
        w.put_str(&self.source);
        w.put_str(&self.comment);
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`SignaturePack::encode`].
    ///
    /// This checks the codec invariants (rule classes must exist in the
    /// table, tags must be known, domains must parse); *semantic*
    /// defects — dangling parents, empty domain sets — are deliberately
    /// tolerated here so [`SignaturePack::lint`] can name them.
    pub fn decode(frame: &[u8]) -> Result<SignaturePack, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);

        let nclasses = r.count(8)?;
        let mut classes = ClassTable::new();
        for _ in 0..nclasses {
            classes.intern(&read_str(&mut r)?);
        }
        if classes.len() != nclasses {
            return Err(SnapError::Malformed("duplicate class table entry"));
        }

        let nrules = r.count(2 + 1 + 2 + 8)?;
        let mut rules = Vec::with_capacity(nrules);
        for _ in 0..nrules {
            let class = ClassId(r.u16()?);
            if classes.get(class).is_none() {
                return Err(SnapError::Malformed("rule class not in class table"));
            }
            let level = level_from_tag(r.u8()?)?;
            let parent_wire = r.u16()?;
            let parent =
                (parent_wire != ClassId::NONE_WIRE).then_some(ClassId(parent_wire));
            let ndomains = r.count(8 + 8 + 8 + 1)?;
            let mut domains = Vec::with_capacity(ndomains);
            for _ in 0..ndomains {
                let name = read_str(&mut r)?;
                let name = DomainName::parse(&name)
                    .map_err(|_| SnapError::Malformed("unparseable rule domain"))?;
                let nports = r.count(2)?;
                let mut ports = std::collections::BTreeSet::new();
                for _ in 0..nports {
                    ports.insert(r.u16()?);
                }
                let nips = r.count(4)?;
                let mut ips = std::collections::BTreeSet::new();
                for _ in 0..nips {
                    ips.insert(Ipv4Addr::from(r.u32()?));
                }
                let usage_indicator = match r.u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(SnapError::Malformed("bad usage-indicator flag")),
                };
                domains.push(RuleDomain { name, ports, ips, usage_indicator });
            }
            rules.push(DetectionRule { class, level, parent, domains });
        }

        let nundet = r.count(3)?;
        let mut undetectable = Vec::with_capacity(nundet);
        for _ in 0..nundet {
            let class = ClassId(r.u16()?);
            if classes.get(class).is_none() {
                return Err(SnapError::Malformed("undetectable class not in class table"));
            }
            undetectable.push((class, reason_from_tag(r.u8()?)?));
        }

        let threshold = r.f64_bits()?;
        let source = read_str(&mut r)?;
        let comment = read_str(&mut r)?;
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(SignaturePack {
            rules: RuleSet::from_parts(classes, rules, undetectable),
            threshold,
            source,
            comment,
        })
    }

    /// Structural defects, one human-readable message per defect. An
    /// empty vector means the pack is fit to detect with.
    pub fn lint(&self) -> Vec<String> {
        let mut defects = Vec::new();
        let rs = &self.rules;
        if !(self.threshold > 0.0 && self.threshold <= 1.0) {
            defects.push(format!(
                "threshold: {} outside (0, 1]",
                self.threshold
            ));
        }
        let mut seen: std::collections::BTreeSet<ClassId> = Default::default();
        for rule in &rs.rules {
            let class = rs.classes.get(rule.class).unwrap_or("<unknown>");
            if !seen.insert(rule.class) {
                defects.push(format!("rule \"{class}\": duplicate rule for this class"));
            }
            if let Some(p) = rule.parent {
                if rs.classes.get(p).is_none() {
                    defects.push(format!(
                        "rule \"{class}\": parent id {} not in the class table (dangling parent)",
                        p.0
                    ));
                } else if p == rule.class {
                    defects.push(format!("rule \"{class}\": parent is the class itself"));
                }
            }
            if rule.domains.is_empty() {
                defects.push(format!("rule \"{class}\": empty domain set"));
            }
            if rule.domains.len() > MAX_RULE_DOMAINS {
                defects.push(format!(
                    "rule \"{class}\": {} domains exceed the {MAX_RULE_DOMAINS}-bit evidence mask",
                    rule.domains.len()
                ));
            }
            let mut names: std::collections::BTreeSet<&str> = Default::default();
            for dom in &rule.domains {
                let name = dom.name.as_str();
                if !names.insert(name) {
                    defects.push(format!("rule \"{class}\" domain \"{name}\": duplicate domain"));
                }
                if dom.ports.is_empty() {
                    defects.push(format!("rule \"{class}\" domain \"{name}\": no ports"));
                }
                if dom.ips.is_empty() {
                    defects.push(format!(
                        "rule \"{class}\" domain \"{name}\": no service IP evidence"
                    ));
                }
            }
        }
        for &(class, _) in &rs.undetectable {
            if seen.contains(&class) {
                let name = rs.classes.get(class).unwrap_or("<unknown>");
                defects.push(format!(
                    "class \"{name}\": listed both as a rule and as undetectable"
                ));
            }
        }
        defects
    }

    /// Decode *and* lint-gate a frame: the loading path detection uses.
    pub fn load(frame: &[u8]) -> Result<SignaturePack, PackError> {
        let pack = SignaturePack::decode(frame)?;
        let defects = pack.lint();
        if defects.is_empty() {
            Ok(pack)
        } else {
            Err(PackError::Lint(defects))
        }
    }
}

/// Carry detector evidence across a rule-set swap (DESIGN.md §14).
///
/// Rules are matched by class *name* — interned ids are pack-local and
/// mean nothing across packs. A matched rule with an identical domain
/// list keeps its entries verbatim; a changed rule has each entry's
/// evidence mask remapped bit-by-bit through domain names, dropping
/// evidence for domains the new rule no longer lists (an entry whose
/// mask empties is dropped entirely). `first_met` survives only while
/// the remapped evidence still meets the new rule's requirement at
/// `threshold` — a detection that no longer holds must not keep its
/// detection hour. Rules absent from the old set start empty.
pub fn migrate_detector_state(
    old: &RuleSet,
    new: &RuleSet,
    threshold: f64,
    state: &DetectorState,
) -> DetectorState {
    let mut rules = Vec::with_capacity(new.rules.len());
    for nr in &new.rules {
        let Some(ori) = old.rule_index(new.class_name(nr.class)) else {
            rules.push(Vec::new());
            continue;
        };
        let or = &old.rules[ori];
        let entries = state.rules.get(ori).cloned().unwrap_or_default();
        let same_domains = or.domains.len() == nr.domains.len()
            && or.domains.iter().zip(&nr.domains).all(|(a, b)| a.name == b.name);
        if same_domains {
            rules.push(entries);
            continue;
        }
        // Old evidence bit → new evidence bit, by domain name.
        let bit_map: Vec<Option<usize>> = or
            .domains
            .iter()
            .map(|od| nr.domains.iter().position(|nd| nd.name == od.name))
            .collect();
        let required = nr.required(threshold) as u32;
        let mut remapped = Vec::with_capacity(entries.len());
        for e in entries {
            let mut mask = 0u64;
            for (odi, slot) in bit_map.iter().enumerate() {
                if e.mask & (1u64 << odi) != 0 {
                    if let Some(ndi) = slot {
                        mask |= 1u64 << ndi;
                    }
                }
            }
            if mask == 0 {
                continue;
            }
            let first_met = e.first_met.filter(|_| mask.count_ones() >= required);
            remapped.push(LineEvidence { line: e.line, mask, first_met });
        }
        rules.push(remapped);
    }
    DetectorState { rules }
}

/// Carry usage-tracker windows across a rule-set swap. Usage tallies
/// are per rule (not per domain), so a rule matched by class name keeps
/// its window verbatim; unmatched rules start empty.
pub fn migrate_usage_state(old: &RuleSet, new: &RuleSet, state: &UsageState) -> UsageState {
    let map: Vec<Option<usize>> = new
        .rules
        .iter()
        .map(|nr| old.rule_index(new.class_name(nr.class)))
        .collect();
    UsageState {
        packets: map
            .iter()
            .map(|o| o.and_then(|ori| state.packets.get(ori).cloned()).unwrap_or_default())
            .collect(),
        indicator: map
            .iter()
            .map(|o| o.and_then(|ori| state.indicator.get(ori).cloned()).unwrap_or_default())
            .collect(),
    }
}

/// Carry staleness baselines across a rule-set swap: `(rule, domain)`
/// slots are rekeyed through `(class name, domain name)`; slots for
/// vanished rules or domains are dropped, and the baselines themselves
/// travel bit-identical.
pub fn migrate_staleness_state(
    old: &RuleSet,
    new: &RuleSet,
    state: &StalenessState,
) -> StalenessState {
    let mut remap: FastMap<(u16, u16), (u16, u16)> = FastMap::default();
    for (nri, nr) in new.rules.iter().enumerate() {
        let Some(ori) = old.rule_index(new.class_name(nr.class)) else { continue };
        let or = &old.rules[ori];
        for (ndi, nd) in nr.domains.iter().enumerate() {
            if let Some(odi) = or.domains.iter().position(|od| od.name == nd.name) {
                remap.insert((ori as u16, odi as u16), (nri as u16, ndi as u16));
            }
        }
    }
    let rekey = |slots: &[((u16, u16), u64)]| {
        let mut out: Vec<((u16, u16), u64)> = slots
            .iter()
            .filter_map(|(k, v)| remap.get(k).map(|nk| (*nk, *v)))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    };
    let mut baseline: Vec<((u16, u16), f64)> = state
        .baseline
        .iter()
        .filter_map(|(k, v)| remap.get(k).map(|nk| (*nk, *v)))
        .collect();
    baseline.sort_unstable_by_key(|(k, _)| *k);
    StalenessState { today: rekey(&state.today), baseline, days_seen: state.days_seen }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleSetBuilder;
    use haystack_net::snapshot;

    fn dom(name: &str, port: u16, ip_last: u8) -> RuleDomain {
        RuleDomain {
            name: DomainName::parse(name).unwrap(),
            ports: [port].into_iter().collect(),
            ips: [Ipv4Addr::new(198, 18, 20, ip_last)].into_iter().collect(),
            usage_indicator: ip_last.is_multiple_of(2),
        }
    }

    fn sample() -> SignaturePack {
        let mut b = RuleSetBuilder::new();
        b.rule(
            "Alexa Enabled",
            DetectionLevel::Platform,
            None,
            vec![dom("avs.a.com", 443, 1)],
        );
        b.rule(
            "Fire TV",
            DetectionLevel::Product,
            Some("Alexa Enabled"),
            vec![dom("ftv.a.com", 443, 2), dom("ads.a.com", 8443, 3)],
        );
        b.undetectable("Google Home", Undetectable::SharedInfrastructure);
        SignaturePack {
            rules: b.build(),
            threshold: 0.4,
            source: "test".to_string(),
            comment: "hand-built".to_string(),
        }
    }

    #[test]
    fn round_trips_and_is_deterministic() {
        let pack = sample();
        let bytes = pack.encode();
        assert!(SignaturePack::sniff(&bytes));
        let back = SignaturePack::decode(&bytes).unwrap();
        assert_eq!(back, pack);
        assert_eq!(back.encode(), bytes, "export → load → export must reproduce bytes");
        assert!(pack.lint().is_empty(), "{:?}", pack.lint());
    }

    /// A pack-loaded rule set compiles into a gated hitlist exactly
    /// like compiled-in rules: the fingerprint front gate is populated
    /// (not the empty-table degenerate case) and admits every rule
    /// key, so a hot-reloaded pack can never gate away its own rules.
    #[test]
    fn loaded_pack_compiles_with_a_populated_gate() {
        use crate::fasthash::mix64;
        use crate::hitlist::HitList;

        let back = SignaturePack::decode(&sample().encode()).unwrap();
        let hl = HitList::whole_window(&back.rules);
        assert!(hl.len() > 0);
        assert!(hl.prefilter_len() > 0 && hl.prefilter_len().is_power_of_two());
        for rule in &back.rules.rules {
            for d in &rule.domains {
                for ip in &d.ips {
                    for port in &d.ports {
                        let h = mix64(HitList::pack_key(*ip, *port));
                        assert!(hl.prefilter_pass(h), "gate rejected rule key {ip}:{port}");
                        assert!(!hl.lookup(*ip, *port).is_empty());
                    }
                }
            }
        }
    }

    #[test]
    fn version_skew_is_typed_and_distinguishable_from_rot() {
        let pack = sample();
        let payload = snapshot::open(
            SignaturePack::MAGIC,
            SignaturePack::VERSION,
            &pack.encode(),
        )
        .unwrap()
        .to_vec();
        let future = snapshot::seal(SignaturePack::MAGIC, SignaturePack::VERSION + 1, &payload);
        assert_eq!(
            SignaturePack::decode(&future),
            Err(SnapError::BadVersion {
                found: SignaturePack::VERSION + 1,
                expected: SignaturePack::VERSION
            })
        );
        // Intact frame: checksum holds, so this is genuine skew.
        assert!(snapshot::checksum_ok(&future));
        assert_eq!(snapshot::peek_version(&future), Some(SignaturePack::VERSION + 1));
    }

    #[test]
    fn bit_flips_never_pass() {
        let bytes = sample().encode();
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(SignaturePack::decode(&bad).is_err(), "flip at {i} not caught");
        }
    }

    #[test]
    fn lint_names_the_offenders() {
        let mut pack = sample();
        pack.threshold = 1.5;
        pack.rules.rules[0].domains.clear();
        pack.rules.rules[1].parent = Some(ClassId(77));
        pack.rules.rules[1].domains[0].ports.clear();
        pack.rules.rules[1].domains[1].ips.clear();
        let defects = pack.lint();
        let all = defects.join("\n");
        assert!(all.contains("threshold: 1.5"), "{all}");
        assert!(all.contains("rule \"Alexa Enabled\": empty domain set"), "{all}");
        assert!(all.contains("rule \"Fire TV\": parent id 77"), "{all}");
        assert!(all.contains("domain \"ftv.a.com\": no ports"), "{all}");
        assert!(all.contains("domain \"ads.a.com\": no service IP evidence"), "{all}");
        assert!(matches!(
            SignaturePack::load(&pack.encode()),
            Err(PackError::Lint(v)) if v.len() == defects.len()
        ));
    }

    #[test]
    fn lint_flags_duplicates_and_double_listing() {
        let mut pack = sample();
        let dup = pack.rules.rules[0].clone();
        let mut rules = pack.rules.rules.clone();
        rules.push(dup);
        let mut undet = pack.rules.undetectable.clone();
        undet.push((rules[1].class, Undetectable::InsufficientInfo));
        pack.rules = RuleSet::from_parts(pack.rules.classes.clone(), rules, undet);
        let all = pack.lint().join("\n");
        assert!(all.contains("\"Alexa Enabled\": duplicate rule"), "{all}");
        assert!(all.contains("\"Fire TV\": listed both"), "{all}");
    }

    #[test]
    fn decode_rejects_garbage_tags() {
        // A rule class id pointing past the class table is a codec-level
        // failure, not a lint defect.
        let pack = sample();
        let payload = snapshot::open(SignaturePack::MAGIC, 1, &pack.encode()).unwrap().to_vec();
        // Class count is the first u64; names follow. Rebuild with an
        // empty class table but keep the rules → class out of range.
        let mut w = SnapWriter::new();
        w.put_u64(0);
        let rest = &payload[8 + classes_bytes(&pack)..];
        let mut tampered = w.into_bytes();
        tampered.extend_from_slice(rest);
        let frame = snapshot::seal(SignaturePack::MAGIC, 1, &tampered);
        assert!(matches!(
            SignaturePack::decode(&frame),
            Err(SnapError::Malformed(_)) | Err(SnapError::Truncated)
        ));
    }

    fn classes_bytes(pack: &SignaturePack) -> usize {
        pack.rules.classes.iter().map(|(_, n)| 8 + n.len()).sum()
    }

    #[test]
    fn migration_matches_by_name_and_remaps_evidence() {
        use haystack_net::{AnonId, HourBin};
        let old = sample().rules;
        // New set: "Fire TV" keeps ftv.a.com, drops ads.a.com, gains a
        // fresh domain (so masks remap); "Alexa Enabled" is dropped and
        // "Echo Dot" appears.
        let mut b = RuleSetBuilder::new();
        b.rule(
            "Fire TV",
            DetectionLevel::Product,
            None,
            vec![dom("new.a.com", 443, 9), dom("ftv.a.com", 443, 2)],
        );
        b.rule("Echo Dot", DetectionLevel::Product, None, vec![dom("echo.a.com", 443, 4)]);
        let new = b.build();

        let state = DetectorState {
            rules: vec![
                // Alexa Enabled evidence: dropped wholesale.
                vec![LineEvidence { line: AnonId(1), mask: 0b1, first_met: Some(HourBin(2)) }],
                // Fire TV: bit 0 = ftv.a.com (kept → new bit 1), bit 1 =
                // ads.a.com (dropped).
                vec![
                    LineEvidence { line: AnonId(5), mask: 0b11, first_met: Some(HourBin(4)) },
                    LineEvidence { line: AnonId(6), mask: 0b10, first_met: None },
                ],
            ],
        };
        // threshold 1.0 → new Fire TV requires 2 domains.
        let migrated = migrate_detector_state(&old, &new, 1.0, &state);
        assert_eq!(migrated.rules.len(), 2);
        // Line 5 keeps only the ftv bit, and its detection hour is gone
        // because 1 < required(2). Line 6's mask emptied → dropped.
        assert_eq!(
            migrated.rules[0],
            vec![LineEvidence { line: AnonId(5), mask: 0b10, first_met: None }]
        );
        assert!(migrated.rules[1].is_empty(), "new rule starts empty");

        // At threshold 0.4 the new requirement is 1, so first_met survives.
        let lenient = migrate_detector_state(&old, &new, 0.4, &state);
        assert_eq!(lenient.rules[0][0].first_met, Some(HourBin(4)));

        let usage = UsageState {
            packets: vec![vec![(AnonId(1), 3)], vec![(AnonId(5), 9)]],
            indicator: vec![vec![AnonId(1)], vec![]],
        };
        let u = migrate_usage_state(&old, &new, &usage);
        assert_eq!(u.packets, vec![vec![(AnonId(5), 9)], vec![]]);
        assert_eq!(u.indicator, vec![vec![], Vec::<AnonId>::new()]);

        let stale = StalenessState {
            today: vec![((0, 0), 7), ((1, 0), 11), ((1, 1), 13)],
            baseline: vec![((1, 0), 0.25)],
            days_seen: 3,
        };
        let s = migrate_staleness_state(&old, &new, &stale);
        // Only (Fire TV, ftv.a.com) survives, rekeyed to (0, 1).
        assert_eq!(s.today, vec![((0, 1), 11)]);
        assert_eq!(s.baseline, vec![((0, 1), 0.25)]);
        assert_eq!(s.days_seen, 3);
    }

    #[test]
    fn migration_is_identity_for_an_unchanged_rule_set() {
        use haystack_net::{AnonId, HourBin};
        let rules = sample().rules;
        let state = DetectorState {
            rules: vec![
                vec![LineEvidence { line: AnonId(2), mask: 0b1, first_met: Some(HourBin(0)) }],
                vec![LineEvidence { line: AnonId(3), mask: 0b11, first_met: Some(HourBin(5)) }],
            ],
        };
        assert_eq!(migrate_detector_state(&rules, &rules, 0.4, &state), state);
    }
}
