//! §7.4 — the DNS-assisted alternative.
//!
//! > *"Our analysis could be simplified if an ISP/IXP had access to all
//! > DNS queries and responses. Even having a partial list, e.g., from
//! > the local DNS resolver of the ISP, could improve our methodology.
//! > Yet, this raises many privacy challenges."*
//!
//! This module quantifies both halves of that sentence. DNS rules skip
//! the whole §4.2 dedicated-infrastructure machinery — a query names the
//! domain directly, so even **CDN-hosted services become detectable**
//! (Google Home, Apple TV, Lefun — flow-level detection's blind spot).
//! In exchange, coverage is gated on who still uses the ISP resolver
//! (`resolver_share`), which is precisely the paper's DoT/DoH caveat —
//! and the same analysis run by a *public* resolver operator is the
//! privacy threat the paper warns about.

use crate::domains::DomainClass;
use crate::observations::DomainObservations;
use crate::rules::common_ancestor;
use haystack_dns::DomainName;
use haystack_net::AnonId;
use haystack_testbed::catalog::Catalog;
use haystack_wild::DnsQueryEvent;
use std::collections::{BTreeMap, HashMap};

/// Detection rules over resolver logs: per class, the primary domains
/// (dedicated **and** shared — hosting is irrelevant to a query log).
#[derive(Debug, Clone, Default)]
pub struct DnsRuleSet {
    /// class → its primary query names.
    pub rules: BTreeMap<&'static str, Vec<DomainName>>,
}

impl DnsRuleSet {
    /// §4.3.2's evidence requirement, unchanged.
    pub fn required(&self, class: &str, threshold: f64) -> usize {
        let n = self.rules.get(class).map(Vec::len).unwrap_or(0);
        ((threshold * n as f64).floor() as usize).max(1)
    }
}

/// Build DNS rules from the same §4.1 classification the flow pipeline
/// uses — minus the dedication filter.
pub fn dns_rules(
    catalog: &Catalog,
    observations: &DomainObservations,
    classification: &HashMap<DomainName, DomainClass>,
) -> DnsRuleSet {
    let mut out = DnsRuleSet::default();
    for (name, usage) in observations.domains() {
        if classification.get(name) != Some(&DomainClass::Primary) {
            continue;
        }
        let Some(owner) = common_ancestor(catalog, &usage.classes) else {
            continue;
        };
        out.rules.entry(owner).or_default().push(name.clone());
    }
    out
}

/// A streaming detector over resolver query events.
#[derive(Debug)]
pub struct DnsDetector<'r> {
    rules: &'r DnsRuleSet,
    threshold: f64,
    /// query name → (class, domain index) entries.
    index: HashMap<DomainName, Vec<(u16, u16)>>,
    classes: Vec<&'static str>,
    /// (line, class idx) → evidence mask (rules can have up to 68
    /// domains — Fire TV's effective set — so the mask is 128-bit).
    state: HashMap<(AnonId, u16), u128>,
}

impl<'r> DnsDetector<'r> {
    /// Build the detector and its name index.
    pub fn new(rules: &'r DnsRuleSet, threshold: f64) -> Self {
        let mut index: HashMap<DomainName, Vec<(u16, u16)>> = HashMap::new();
        let mut classes = Vec::new();
        for (ci, (class, domains)) in rules.rules.iter().enumerate() {
            assert!(domains.len() <= 128, "rule {class} exceeds 128 domains");
            classes.push(*class);
            for (di, d) in domains.iter().enumerate() {
                index.entry(d.clone()).or_default().push((ci as u16, di as u16));
            }
        }
        DnsDetector { rules, threshold, index, classes, state: HashMap::new() }
    }

    /// Observe one query event (callers translate domain ids to names).
    pub fn observe(&mut self, line: AnonId, qname: &DomainName) {
        let Some(entries) = self.index.get(qname) else {
            return;
        };
        for (ci, di) in entries.clone() {
            *self.state.entry((line, ci)).or_insert(0) |= 1u128 << di;
        }
    }

    /// Convenience: observe a wild [`DnsQueryEvent`] given the plan's
    /// domain table.
    pub fn observe_event(
        &mut self,
        event: &DnsQueryEvent,
        domain_table: &[haystack_testbed::catalog::DomainSpec],
    ) {
        let name = domain_table[event.domain_id as usize].name.clone();
        self.observe(event.line, &name);
    }

    /// Whether `class` is detected for `line`.
    pub fn is_detected(&self, line: AnonId, class: &str) -> bool {
        let Some(ci) = self.classes.iter().position(|c| *c == class) else {
            return false;
        };
        let required = self.rules.required(class, self.threshold) as u32;
        self.state
            .get(&(line, ci as u16))
            .map(|m| m.count_ones() >= required)
            .unwrap_or(false)
    }

    /// Lines detected for `class`.
    pub fn detected_lines(&self, class: &str) -> Vec<AnonId> {
        let Some(ci) = self.classes.iter().position(|c| *c == class) else {
            return Vec::new();
        };
        let required = self.rules.required(class, self.threshold) as u32;
        let mut out: Vec<AnonId> = self
            .state
            .iter()
            .filter(|((_, c), m)| *c == ci as u16 && m.count_ones() >= required)
            .map(|((l, _), _)| *l)
            .collect();
        out.sort_unstable();
        out
    }

    /// Clear state (new window).
    pub fn reset(&mut self) {
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;

    fn pipeline() -> &'static Pipeline {
        crate::testutil::shared_pipeline()
    }

    #[test]
    fn dns_rules_cover_shared_only_classes() {
        let p = pipeline();
        let rules = dns_rules(&p.catalog, &p.observations, &p.classification);
        // Flow-level §4.2.3 excludes these; DNS rules include them.
        for class in ["Google Home", "Apple TV", "Lefun Cam"] {
            assert!(
                rules.rules.get(class).map(|d| !d.is_empty()).unwrap_or(false),
                "{class} must be DNS-detectable"
            );
            assert!(p.rules.rule(class).is_none(), "{class} must not have a flow rule");
        }
    }

    #[test]
    fn dns_rules_superset_flow_rules() {
        let p = pipeline();
        let rules = dns_rules(&p.catalog, &p.observations, &p.classification);
        for flow_rule in &p.rules.rules {
            let class = p.rules.class_name(flow_rule.class);
            let dns_domains = rules.rules.get(class).map(Vec::len).unwrap_or(0);
            assert!(
                dns_domains >= flow_rule.domains.len(),
                "{}: dns {} < flow {}",
                class,
                dns_domains,
                flow_rule.domains.len()
            );
        }
    }

    #[test]
    fn detector_thresholds_queries() {
        let p = pipeline();
        let rules = dns_rules(&p.catalog, &p.observations, &p.classification);
        let mut det = DnsDetector::new(&rules, 0.4);
        let class = "Google Home";
        let domains = rules.rules.get(class).unwrap().clone();
        let required = rules.required(class, 0.4);
        let line = AnonId(9);
        for d in domains.iter().take(required - 1) {
            det.observe(line, d);
        }
        if required > 1 {
            assert!(!det.is_detected(line, class));
        }
        det.observe(line, &domains[required - 1]);
        assert!(det.is_detected(line, class));
        assert_eq!(det.detected_lines(class), vec![line]);
        det.reset();
        assert!(!det.is_detected(line, class));
    }

    #[test]
    fn unknown_queries_cost_nothing() {
        let p = pipeline();
        let rules = dns_rules(&p.catalog, &p.observations, &p.classification);
        let mut det = DnsDetector::new(&rules, 0.4);
        det.observe(AnonId(1), &DomainName::parse("g3.global-search.com").unwrap());
        assert_eq!(det.state.len(), 0);
    }
}
