//! Detection-quality evaluation against the simulation's ownership
//! oracle.
//!
//! The paper can mostly argue false negatives ("we only have traffic
//! samples from a subset of IoT devices", §7.3) and checks false
//! positives with the subset experiment (§5). The simulation knows the
//! ground truth for *every* line, so precision and recall are directly
//! measurable — this module is the harness the integration tests and the
//! `accuracy_report` binary share. The detector itself never touches the
//! oracle.

use crate::detector::DetectionQuery;
use crate::pipeline::Pipeline;
use haystack_net::AnonId;
use haystack_wild::IspVantage;
use std::collections::BTreeSet;

/// Confusion counts for one (class, window).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// Detected and truly owning.
    pub true_pos: u64,
    /// Detected without owning.
    pub false_pos: u64,
    /// Owning but missed.
    pub false_neg: u64,
}

impl Confusion {
    /// Precision (1.0 when nothing was detected).
    pub fn precision(&self) -> f64 {
        let det = self.true_pos + self.false_pos;
        if det == 0 {
            1.0
        } else {
            self.true_pos as f64 / det as f64
        }
    }

    /// Recall (1.0 when nothing was owned).
    pub fn recall(&self) -> f64 {
        let owned = self.true_pos + self.false_neg;
        if owned == 0 {
            1.0
        } else {
            self.true_pos as f64 / owned as f64
        }
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// The anonymized ids of lines owning any product whose class ancestry
/// includes `class`, on `day` (owner identities shift with IP churn).
pub fn owner_ids(pipeline: &Pipeline, isp: &IspVantage, class: &str, day: u32) -> BTreeSet<AnonId> {
    let mut out = BTreeSet::new();
    for (pi, prod) in pipeline.catalog.products.iter().enumerate() {
        let in_class = pipeline.catalog.ancestry(prod.class).iter().any(|c| c.name == class);
        if !in_class {
            continue;
        }
        for &line in isp.population().owners_of(pi) {
            out.insert(isp.anonymizer().anonymize(isp.population().ip_of(line, day)));
        }
    }
    out
}

/// Score one class's detections against the oracle. Generic over the
/// detector shape ([`Detector`](crate::detector::Detector),
/// [`ShardedDetector`](crate::parallel::ShardedDetector), or
/// [`DetectorPool`](crate::parallel::DetectorPool)) via
/// [`DetectionQuery`].
pub fn evaluate<Q: DetectionQuery + ?Sized>(
    pipeline: &Pipeline,
    isp: &IspVantage,
    detector: &mut Q,
    class: &str,
    day: u32,
) -> Confusion {
    let detected: BTreeSet<AnonId> = detector.query_detected_lines(class).into_iter().collect();
    let owners = owner_ids(pipeline, isp, class, day);
    Confusion {
        true_pos: detected.intersection(&owners).count() as u64,
        false_pos: detected.difference(&owners).count() as u64,
        false_neg: owners.difference(&detected).count() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Detector, DetectorConfig};
    use crate::hitlist::HitList;
    use haystack_net::DayBin;
    use haystack_wild::IspConfig;

    #[test]
    fn confusion_math() {
        let c = Confusion { true_pos: 8, false_pos: 2, false_neg: 8 };
        assert!((c.precision() - 0.8).abs() < 1e-9);
        assert!((c.recall() - 0.5).abs() < 1e-9);
        assert!((c.f1() - 2.0 * 0.8 * 0.5 / 1.3).abs() < 1e-9);
        let empty = Confusion::default();
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
    }

    #[test]
    fn detections_score_high_precision_on_a_real_day() {
        let p = crate::testutil::shared_pipeline();
        let isp = IspVantage::new(
            &p.catalog,
            IspConfig { lines: 8_000, sampling: 1_000, seed: 77, background: false },
        );
        let mut det = Detector::new(
            &p.rules,
            HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
            DetectorConfig::default(),
        );
        for hour in DayBin(0).hours() {
            det.observe_chunk(&isp.capture_hour(&p.world, hour).records);
        }
        let c = evaluate(p, &isp, &mut det, "Alexa Enabled", 0);
        assert!(c.true_pos > 0);
        assert!(c.precision() > 0.97, "precision {:.3}", c.precision());
        assert!(c.recall() > 0.5, "recall {:.3}", c.recall());

        // The same records through a streamed worker pool score
        // identically — evaluate is generic over the detector shape.
        let mut pool = crate::parallel::DetectorPool::new(
            &p.rules,
            &HitList::for_day(&p.rules, &p.dnsdb, DayBin(0)),
            DetectorConfig::default(),
            4,
        );
        let mut chunk = haystack_wild::RecordChunk::default();
        use haystack_wild::VantagePoint;
        for hour in DayBin(0).hours() {
            let mut stream = isp.stream_hour(&p.world, hour, 4_096);
            pool.observe_stream(&mut *stream, &mut chunk).unwrap();
        }
        pool.finish().unwrap();
        let cp = evaluate(p, &isp, &mut pool, "Alexa Enabled", 0);
        assert_eq!(c, cp, "pooled evaluation diverges from sequential");
    }
}
