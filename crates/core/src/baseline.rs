//! The baseline the paper argues against (§8): traffic-feature device
//! classification in the style of Sivanathan et al. [34].
//!
//! [34] trains a classifier on per-device traffic characteristics (volume,
//! packet sizes, port mix, endpoint counts) from **full packet captures**.
//! The paper's §8 point is that such features do not survive an ISP's
//! reality — "neither data from core networks subject to sampling … are
//! enough" — while destination signatures do. This module implements a
//! faithful flow-level version of the feature approach (nearest-centroid
//! over normalized feature vectors, the classic light-weight variant) so
//! the `baseline_compare` binary can measure the collapse instead of
//! asserting it.
//!
//! The features use only what headers offer — deliberately: giving the
//! baseline payload features would be comparing against a method that
//! cannot run at the vantage point at all.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// One observation the feature extractor consumes: a (possibly sampled)
/// flow aggregate of an entity-window.
#[derive(Debug, Clone, Copy)]
pub struct FlowObs {
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Destination port.
    pub dport: u16,
    /// Packets (sampled count at sampled vantage points).
    pub packets: u64,
    /// Bytes.
    pub bytes: u64,
}

/// Number of features.
pub const N_FEATURES: usize = 8;

/// A normalized feature vector for one (device, window).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureVector(pub [f64; N_FEATURES]);

/// Extract features from an entity-window's flows. Returns `None` for an
/// empty window (nothing to classify — the common case under sampling).
pub fn extract(flows: &[FlowObs]) -> Option<FeatureVector> {
    if flows.is_empty() {
        return None;
    }
    let total_pkts: u64 = flows.iter().map(|f| f.packets).sum();
    let total_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
    if total_pkts == 0 {
        return None;
    }
    let share = |pred: &dyn Fn(u16) -> bool| -> f64 {
        flows
            .iter()
            .filter(|f| pred(f.dport))
            .map(|f| f.packets)
            .sum::<u64>() as f64
            / total_pkts as f64
    };
    let web = share(&|p| p == 443 || p == 80 || p == 8080);
    let ntp = share(&|p| p == 123);
    let mqtt = share(&|p| p == 1883 || p == 8883);
    let push = share(&|p| p == 5223 || p == 5222);
    let dsts: BTreeSet<Ipv4Addr> = flows.iter().map(|f| f.dst).collect();
    let ports: BTreeSet<u16> = flows.iter().map(|f| f.dport).collect();
    Some(FeatureVector([
        web,
        ntp,
        mqtt,
        push,
        (total_pkts as f64).ln_1p() / 12.0, // log-volume, roughly unit-scaled
        (total_bytes as f64 / total_pkts as f64) / 1_500.0, // mean packet size
        (dsts.len() as f64).ln_1p() / 5.0,
        (ports.len() as f64).ln_1p() / 3.0,
    ]))
}

fn distance(a: &FeatureVector, b: &FeatureVector) -> f64 {
    a.0.iter().zip(&b.0).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// A nearest-centroid classifier over device classes.
#[derive(Debug, Clone, Default)]
pub struct CentroidClassifier {
    centroids: BTreeMap<&'static str, FeatureVector>,
}

impl CentroidClassifier {
    /// Fit per-class centroids from labelled windows.
    pub fn fit(samples: &[(&'static str, FeatureVector)]) -> CentroidClassifier {
        let mut sums: BTreeMap<&'static str, ([f64; N_FEATURES], usize)> = BTreeMap::new();
        for (class, fv) in samples {
            let e = sums.entry(class).or_insert(([0.0; N_FEATURES], 0));
            for (acc, x) in e.0.iter_mut().zip(&fv.0) {
                *acc += x;
            }
            e.1 += 1;
        }
        let centroids = sums
            .into_iter()
            .map(|(class, (sum, n))| {
                let mut c = [0.0; N_FEATURES];
                for (ci, s) in c.iter_mut().zip(&sum) {
                    *ci = s / n as f64;
                }
                (class, FeatureVector(c))
            })
            .collect();
        CentroidClassifier { centroids }
    }

    /// Number of classes learned.
    pub fn num_classes(&self) -> usize {
        self.centroids.len()
    }

    /// Predict the nearest class, with its distance.
    pub fn predict(&self, fv: &FeatureVector) -> Option<(&'static str, f64)> {
        self.centroids
            .iter()
            .map(|(class, c)| (*class, distance(fv, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite distances"))
    }
}

/// Convenience: accuracy of the classifier over a labelled evaluation set.
/// Windows whose features cannot be extracted (empty under sampling) count
/// as misclassified — the baseline has no answer for them, which is
/// exactly its failure mode at sparse vantage points.
pub fn accuracy(
    clf: &CentroidClassifier,
    eval: &[(&'static str, Option<FeatureVector>)],
) -> f64 {
    if eval.is_empty() {
        return 0.0;
    }
    let correct = eval
        .iter()
        .filter(|(label, fv)| {
            fv.as_ref()
                .and_then(|fv| clf.predict(fv))
                .map(|(pred, _)| pred == *label)
                .unwrap_or(false)
        })
        .count();
    correct as f64 / eval.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flows(dports: &[(u16, u64)]) -> Vec<FlowObs> {
        dports
            .iter()
            .enumerate()
            .map(|(i, (dport, packets))| FlowObs {
                dst: Ipv4Addr::new(198, 18, 0, i as u8 + 1),
                dport: *dport,
                packets: *packets,
                bytes: packets * 500,
            })
            .collect()
    }

    #[test]
    fn extraction_handles_edges() {
        assert!(extract(&[]).is_none());
        let fv = extract(&flows(&[(443, 80), (123, 20)])).unwrap();
        assert!((fv.0[0] - 0.8).abs() < 1e-9, "web share");
        assert!((fv.0[1] - 0.2).abs() < 1e-9, "ntp share");
    }

    #[test]
    fn classifier_separates_distinct_profiles() {
        // "Camera": heavy web upload, few endpoints. "Plug": tiny MQTT.
        let cam = |n: u64| extract(&flows(&[(443, n), (123, 2)])).unwrap();
        let plug = |n: u64| extract(&flows(&[(8883, n), (123, 1)])).unwrap();
        let train: Vec<(&'static str, FeatureVector)> = vec![
            ("cam", cam(5_000)),
            ("cam", cam(4_000)),
            ("plug", plug(40)),
            ("plug", plug(60)),
        ];
        let clf = CentroidClassifier::fit(&train);
        assert_eq!(clf.num_classes(), 2);
        assert_eq!(clf.predict(&cam(4_500)).unwrap().0, "cam");
        assert_eq!(clf.predict(&plug(50)).unwrap().0, "plug");
    }

    #[test]
    fn sampling_collapses_accuracy() {
        // Simulate 1-in-1000 sampling: most windows lose every packet; the
        // survivors keep 1–2 packets and lose the port-mix signal.
        let cam = extract(&flows(&[(443, 5_000), (123, 2)])).unwrap();
        let plug = extract(&flows(&[(8883, 40), (123, 1)])).unwrap();
        let clf = CentroidClassifier::fit(&[("cam", cam), ("plug", plug)]);

        let full: Vec<(&'static str, Option<FeatureVector>)> = vec![
            ("cam", extract(&flows(&[(443, 4_800), (123, 2)]))),
            ("plug", extract(&flows(&[(8883, 55), (123, 1)]))),
        ];
        // Sampled: the camera keeps ~5 packets on one flow; the plug keeps
        // nothing at all.
        let sampled: Vec<(&'static str, Option<FeatureVector>)> = vec![
            ("cam", extract(&flows(&[(443, 5)]))),
            ("plug", extract(&[])),
        ];
        let a_full = accuracy(&clf, &full);
        let a_sampled = accuracy(&clf, &sampled);
        assert!(a_full > a_sampled, "full {a_full} must beat sampled {a_sampled}");
        assert_eq!(accuracy(&clf, &[]), 0.0);
    }
}
