//! Process-isolated detector shards (DESIGN.md §15).
//!
//! [`ProcPool`] is the multi-process sibling of
//! [`crate::parallel::DetectorPool`]: one `haystack shard-worker` child
//! process per line-space partition, fed record chunks and control
//! commands over its stdin/stdout pipes. Frames reuse the §12
//! checksummed snapshot codec via [`haystack_net::framing`], so a child
//! killed mid-write leaves a torn frame that fails validation instead
//! of silently corrupting the supervisor.
//!
//! The supervisor owns spawn and respawn. Three failure signals feed
//! it: a *write timeout* (the child's pipe stayed full — it is hung), a
//! *heartbeat miss* (a synchronous request got no reply within the
//! deadline), and a *disconnect* (the child's stdout closed — it died,
//! e.g. SIGKILL or OOM). All three converge on the same heal path as
//! the in-process pool: kill and reap whatever is left, apply the
//! exponential-backoff [`RespawnPolicy`] (repeated fast deaths trip the
//! crash-loop circuit breaker and mark the shard degraded), spawn a
//! fresh child, restore the last checkpoint base, and replay the
//! retained record batches byte-identically. Because each line's
//! records traverse exactly one FIFO pipe in feed order — and the
//! line-space partition ([`crate::parallel`]'s `shard_of`) is shared
//! with the thread backend — detections are byte-identical across
//! `--isolate thread`, `--isolate process`, any worker count, and any
//! SIGKILL schedule.
//!
//! A degraded shard (breaker open) stops consuming records: its staged
//! evidence queues up to a bound, then sheds with exact accounting
//! (`procpool.degraded_queued_records` / `degraded_shed_records`), and
//! queries touching the partition fail fast with a typed error naming
//! the breaker. [`ProcPool::reset_breaker`] is the operator path back:
//! close the breaker, respawn from checkpoint + replay, then re-feed
//! the queued records.
//!
//! Unlike the thread backend, supervision is inherent here — there is
//! no unsupervised process mode, because the only link to a child is
//! the pipe and the only recovery is respawn. `enable_supervision`
//! merely adjusts the replay bound.

use crate::checkpoint::{DetectorDelta, DetectorSnapshot, DetectorState};
use crate::detector::{Detector, DetectorConfig};
use crate::hitlist::HitList;
use crate::pack::SignaturePack;
use crate::parallel::{
    shard_of, BackoffState, PoolError, RespawnDecision, RespawnPolicy, ShardBackend, ShardHealth,
    ShardStatusReport, DEFAULT_DEGRADED_QUEUE_LIMIT, DEFAULT_REPLAY_LIMIT, POOL_BATCH_RECORDS,
    POOL_CHANNEL_BATCHES,
};
use crate::rules::RuleSet;
use crate::telemetry::{Counter, Scope};
use haystack_net::framing::{read_frame, write_frame};
use haystack_net::ports::Proto;
use haystack_net::snapshot::{open, seal, SnapError, SnapReader, SnapWriter};
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::WildRecord;
use std::cell::Cell;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::Ipv4Addr;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Frame magic for the worker protocol.
pub const PROC_MAGIC: &[u8; 8] = b"HAYPROC\0";
/// Protocol version. Parent and child are always the same binary, so a
/// mismatch means a stale worker binary on the PATH — reject it.
pub const PROC_VERSION: u32 = 1;
/// Per-frame payload cap: a corrupt header cannot make the reader
/// allocate unboundedly.
pub const PROC_MAX_PAYLOAD: u64 = 1 << 30;

// Request tags (supervisor → worker). The payload layout after the
// `[seq u64][tag u8]` prefix is documented per tag in the codec below.
const T_INIT: u8 = 0;
const T_BATCH: u8 = 1;
const T_BARRIER: u8 = 2;
const T_SNAPSHOT: u8 = 3;
const T_SNAPSHOT_DELTA: u8 = 4;
const T_RESTORE: u8 = 5;
const T_SET_HITLIST: u8 = 6;
const T_SET_RULES: u8 = 7;
const T_RESET: u8 = 8;
const T_DETECTED_LINES: u8 = 9;
const T_IS_DETECTED: u8 = 10;
const T_CONFIDENCE: u8 = 11;
const T_FIRST_DETECTION: u8 = 12;
const T_STATE_SIZE: u8 = 13;
const T_PANIC: u8 = 14;
const T_STALL: u8 = 15;
const T_SHUTDOWN: u8 = 16;

// Reply tags (worker → supervisor).
const R_ACK: u8 = 0;
const R_STATE: u8 = 1;
const R_SNAP: u8 = 2;
const R_LINES: u8 = 3;
const R_BOOL: u8 = 4;
const R_F64: u8 = 5;
const R_FIRST: u8 = 6;
const R_USIZE: u8 = 7;

/// Wire layout of one [`WildRecord`] (fixed 35 bytes).
fn put_record(w: &mut SnapWriter, r: &WildRecord) {
    w.put_u64(r.line.0);
    w.put_u64(r.packets);
    w.put_u64(r.bytes);
    w.put_u32(u32::from(r.line_slash24.network()));
    w.put_u8(r.line_slash24.len());
    w.put_u32(u32::from(r.src_ip));
    w.put_u32(u32::from(r.dst));
    w.put_u16(r.dport);
    w.put_u8(r.proto.number());
    w.put_u8(u8::from(r.established));
    w.put_u32(r.hour.0);
}

fn get_record(r: &mut SnapReader<'_>) -> Result<WildRecord, SnapError> {
    let line = AnonId(r.u64()?);
    let packets = r.u64()?;
    let bytes = r.u64()?;
    let net = Ipv4Addr::from(r.u32()?);
    let plen = r.u8()?;
    let line_slash24 =
        Prefix4::new(net, plen).map_err(|_| SnapError::Malformed("record prefix"))?;
    let src_ip = Ipv4Addr::from(r.u32()?);
    let dst = Ipv4Addr::from(r.u32()?);
    let dport = r.u16()?;
    let proto = Proto::from_number(r.u8()?).ok_or(SnapError::Malformed("record proto"))?;
    let established = r.u8()? != 0;
    let hour = HourBin(r.u32()?);
    Ok(WildRecord {
        line,
        packets,
        bytes,
        line_slash24,
        src_ip,
        dst,
        dport,
        proto,
        established,
        hour,
    })
}

/// Seal one request frame: `[seq][tag]` then `body`'s payload.
fn request_frame(seq: u64, tag: u8, body: impl FnOnce(&mut SnapWriter)) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u64(seq);
    w.put_u8(tag);
    body(&mut w);
    seal(PROC_MAGIC, PROC_VERSION, &w.into_bytes())
}

fn batch_frame(seq: u64, records: &[WildRecord]) -> Vec<u8> {
    request_frame(seq, T_BATCH, |w| {
        w.put_u64(records.len() as u64);
        for r in records {
            put_record(w, r);
        }
    })
}

fn restore_frame(seq: u64, state: &DetectorState) -> Vec<u8> {
    request_frame(seq, T_RESTORE, |w| w.put_bytes(&state.encode()))
}

/// A decoded supervisor → worker message (owned, child side).
enum ToWorker {
    Init { pack: Vec<u8>, threshold: f64, require_established: bool },
    Batch(Vec<WildRecord>),
    Barrier,
    Snapshot,
    SnapshotDelta,
    Restore(DetectorState),
    SetHitlist,
    SetRules { pack: Vec<u8>, state: DetectorState },
    Reset,
    DetectedLines(String),
    IsDetected(AnonId, String),
    Confidence(AnonId, String),
    FirstDetection(AnonId, String),
    StateSize,
    PanicNow(String),
    StallFor(u64),
    Shutdown,
}

fn read_string(r: &mut SnapReader<'_>) -> Result<String, SnapError> {
    let raw = r.bytes()?;
    std::str::from_utf8(raw).map(str::to_owned).map_err(|_| SnapError::Malformed("utf-8 string"))
}

fn decode_to_worker(frame: &[u8]) -> Result<(u64, ToWorker), SnapError> {
    let payload = open(PROC_MAGIC, PROC_VERSION, frame)?;
    let mut r = SnapReader::new(payload);
    let seq = r.u64()?;
    let tag = r.u8()?;
    let msg = match tag {
        T_INIT => ToWorker::Init {
            pack: r.bytes()?.to_vec(),
            threshold: r.f64_bits()?,
            require_established: r.u8()? != 0,
        },
        T_BATCH => {
            let n = r.count(35)?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(get_record(&mut r)?);
            }
            ToWorker::Batch(records)
        }
        T_BARRIER => ToWorker::Barrier,
        T_SNAPSHOT => ToWorker::Snapshot,
        T_SNAPSHOT_DELTA => ToWorker::SnapshotDelta,
        T_RESTORE => ToWorker::Restore(DetectorState::decode(r.bytes()?)?),
        T_SET_HITLIST => ToWorker::SetHitlist,
        T_SET_RULES => {
            let pack = r.bytes()?.to_vec();
            let state = DetectorState::decode(r.bytes()?)?;
            ToWorker::SetRules { pack, state }
        }
        T_RESET => ToWorker::Reset,
        T_DETECTED_LINES => ToWorker::DetectedLines(read_string(&mut r)?),
        T_IS_DETECTED => ToWorker::IsDetected(AnonId(r.u64()?), read_string(&mut r)?),
        T_CONFIDENCE => ToWorker::Confidence(AnonId(r.u64()?), read_string(&mut r)?),
        T_FIRST_DETECTION => ToWorker::FirstDetection(AnonId(r.u64()?), read_string(&mut r)?),
        T_STATE_SIZE => ToWorker::StateSize,
        T_PANIC => ToWorker::PanicNow(read_string(&mut r)?),
        T_STALL => ToWorker::StallFor(r.u64()?),
        T_SHUTDOWN => ToWorker::Shutdown,
        _ => return Err(SnapError::Malformed("unknown request tag")),
    };
    Ok((seq, msg))
}

/// A decoded worker → supervisor reply (parent side).
#[derive(Debug)]
enum Reply {
    Ack,
    State(DetectorState),
    Snap(DetectorSnapshot),
    Lines(Vec<AnonId>),
    Bool(bool),
    F64(f64),
    First(Option<HourBin>),
    Usize(usize),
}

fn reply_frame(seq: u64, reply: &Reply) -> Vec<u8> {
    let mut w = SnapWriter::new();
    w.put_u64(seq);
    match reply {
        Reply::Ack => w.put_u8(R_ACK),
        Reply::State(s) => {
            w.put_u8(R_STATE);
            w.put_bytes(&s.encode());
        }
        Reply::Snap(s) => {
            w.put_u8(R_SNAP);
            w.put_bytes(&s.encode());
        }
        Reply::Lines(lines) => {
            w.put_u8(R_LINES);
            w.put_u64(lines.len() as u64);
            for l in lines {
                w.put_u64(l.0);
            }
        }
        Reply::Bool(b) => {
            w.put_u8(R_BOOL);
            w.put_u8(u8::from(*b));
        }
        Reply::F64(v) => {
            w.put_u8(R_F64);
            w.put_f64_bits(*v);
        }
        Reply::First(first) => {
            w.put_u8(R_FIRST);
            w.put_u8(u8::from(first.is_some()));
            w.put_u32(first.map_or(0, |h| h.0));
        }
        Reply::Usize(n) => {
            w.put_u8(R_USIZE);
            w.put_u64(*n as u64);
        }
    }
    seal(PROC_MAGIC, PROC_VERSION, &w.into_bytes())
}

fn decode_reply(frame: &[u8]) -> Result<(u64, Reply), SnapError> {
    let payload = open(PROC_MAGIC, PROC_VERSION, frame)?;
    let mut r = SnapReader::new(payload);
    let seq = r.u64()?;
    let reply = match r.u8()? {
        R_ACK => Reply::Ack,
        R_STATE => Reply::State(DetectorState::decode(r.bytes()?)?),
        R_SNAP => Reply::Snap(DetectorSnapshot::decode(r.bytes()?)?),
        R_LINES => {
            let n = r.count(8)?;
            let mut lines = Vec::with_capacity(n);
            for _ in 0..n {
                lines.push(AnonId(r.u64()?));
            }
            Reply::Lines(lines)
        }
        R_BOOL => Reply::Bool(r.u8()? != 0),
        R_F64 => Reply::F64(r.f64_bits()?),
        R_FIRST => {
            let some = r.u8()? != 0;
            let hour = r.u32()?;
            Reply::First(some.then_some(HourBin(hour)))
        }
        R_USIZE => Reply::Usize(r.u64()? as usize),
        _ => return Err(SnapError::Malformed("unknown reply tag")),
    };
    Ok((seq, reply))
}

// ---------------------------------------------------------------------------
// Child side
// ---------------------------------------------------------------------------

/// Entry point of the `haystack shard-worker` child process: serve the
/// worker protocol on stdin/stdout until shutdown. Returns the process
/// exit code — `0` for a clean shutdown (a `Shutdown` frame or EOF at a
/// frame boundary), `2` for a protocol or state error. Everything the
/// child prints on stdout is protocol frames; diagnostics go to stderr.
pub fn worker_main() -> i32 {
    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut rin = stdin.lock();
    let mut wout = stdout.lock();
    match run_worker(&mut rin, &mut wout) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("haystack shard-worker: {e}");
            2
        }
    }
}

fn next_msg(rin: &mut impl Read) -> Result<Option<(u64, ToWorker)>, String> {
    match read_frame(rin, PROC_MAGIC, PROC_MAX_PAYLOAD) {
        Ok(Some(frame)) => decode_to_worker(&frame).map(Some).map_err(|e| format!("decode: {e}")),
        Ok(None) => Ok(None),
        Err(e) => Err(format!("read: {e}")),
    }
}

fn send_reply(wout: &mut impl Write, seq: u64, reply: &Reply) -> Result<(), String> {
    write_frame(wout, &reply_frame(seq, reply)).map_err(|e| format!("write: {e}"))
}

/// What ended one rule-set generation of the serve loop.
enum Generation {
    Done,
    Swap(RuleSet, DetectorState),
}

/// The child's protocol loop, generic over the byte streams so the
/// in-process tests can drive it without spawning. The first frame must
/// be `Init` (acked); afterwards the loop mirrors the thread backend's
/// `run_shard` generation-per-rule-set structure, because [`Detector`]
/// borrows its rule set.
fn run_worker(rin: &mut impl Read, wout: &mut impl Write) -> Result<(), String> {
    let Some((seq, first)) = next_msg(rin)? else {
        return Ok(()); // spawned and immediately abandoned
    };
    let ToWorker::Init { pack, threshold, require_established } = first else {
        return Err("first frame is not Init".into());
    };
    let loaded = SignaturePack::load(&pack).map_err(|e| format!("init pack: {e}"))?;
    let config = DetectorConfig { threshold, require_established };
    send_reply(wout, seq, &Reply::Ack)?;
    let mut cur: (RuleSet, Option<DetectorState>) = (loaded.rules, None);
    loop {
        let (rules, restore) = cur;
        match serve_generation(&rules, config, restore, rin, wout)? {
            Generation::Done => return Ok(()),
            Generation::Swap(rules, state) => cur = (rules, Some(state)),
        }
    }
}

fn serve_generation(
    rules: &RuleSet,
    config: DetectorConfig,
    restore: Option<DetectorState>,
    rin: &mut impl Read,
    wout: &mut impl Write,
) -> Result<Generation, String> {
    // The process backend always derives the whole-window hitlist from
    // the rules (a hitlist has no wire codec); `SetHitlist` re-derives
    // it, which every CLI surface uses anyway. DESIGN.md §15 notes the
    // limitation.
    let mut det = Detector::new(rules, HitList::whole_window(rules), config);
    if let Some(state) = restore {
        det.restore_state(&state).map_err(|e| format!("restore: {e}"))?;
    }
    loop {
        let Some((seq, msg)) = next_msg(rin)? else {
            return Ok(Generation::Done);
        };
        match msg {
            ToWorker::Init { .. } => return Err("duplicate Init after handshake".into()),
            ToWorker::Batch(records) => det.observe_chunk(&records),
            ToWorker::Barrier => send_reply(wout, seq, &Reply::Ack)?,
            ToWorker::Snapshot => send_reply(wout, seq, &Reply::State(det.export_state()))?,
            ToWorker::SnapshotDelta => {
                send_reply(wout, seq, &Reply::Snap(det.take_snapshot_delta()))?
            }
            ToWorker::Restore(state) => {
                det.restore_state(&state).map_err(|e| format!("restore: {e}"))?
            }
            ToWorker::SetHitlist => det.set_hitlist(HitList::whole_window(rules)),
            ToWorker::SetRules { pack, state } => {
                let loaded = SignaturePack::load(&pack).map_err(|e| format!("swap pack: {e}"))?;
                return Ok(Generation::Swap(loaded.rules, state));
            }
            ToWorker::Reset => det.reset(),
            ToWorker::DetectedLines(class) => {
                send_reply(wout, seq, &Reply::Lines(det.detected_lines(&class)))?
            }
            ToWorker::IsDetected(line, class) => {
                send_reply(wout, seq, &Reply::Bool(det.is_detected(line, &class)))?
            }
            ToWorker::Confidence(line, class) => {
                send_reply(wout, seq, &Reply::F64(det.confidence(line, &class)))?
            }
            ToWorker::FirstDetection(line, class) => {
                send_reply(wout, seq, &Reply::First(det.first_detection(line, &class)))?
            }
            ToWorker::StateSize => send_reply(wout, seq, &Reply::Usize(det.state_size()))?,
            // Chaos: die the way an abort would — no unwind, no reply,
            // a torn pipe for the supervisor to detect.
            ToWorker::PanicNow(msg) => {
                eprintln!("haystack shard-worker: injected crash: {msg}");
                std::process::exit(101);
            }
            ToWorker::StallFor(ms) => std::thread::sleep(Duration::from_millis(ms)),
            ToWorker::Shutdown => return Ok(Generation::Done),
        }
    }
}

// ---------------------------------------------------------------------------
// Supervisor side
// ---------------------------------------------------------------------------

/// Tuning for [`ProcPool`]: how workers are launched and how their
/// failures are detected and paced.
#[derive(Debug, Clone)]
pub struct ProcPoolOptions {
    /// Worker command line. Empty means the current executable with a
    /// single `shard-worker` argument — the normal CLI arrangement.
    /// Tests point this at `CARGO_BIN_EXE_haystack`.
    pub command: Vec<String>,
    /// Reply deadline for synchronous requests (barrier, snapshot,
    /// queries). A miss counts `procpool.heartbeat_misses` and heals
    /// the shard.
    pub heartbeat: Duration,
    /// Deadline for handing a frame to the shard's writer. The pipe
    /// staying full this long means the child stopped reading — hung,
    /// not merely slow.
    pub write_timeout: Duration,
    /// Respawn backoff and crash-loop circuit breaker.
    pub policy: RespawnPolicy,
    /// Records staged per shard before a batch frame ships.
    pub batch_records: usize,
    /// Batch frames in flight per shard before the feeder blocks.
    pub channel_batches: usize,
    /// Records a degraded (breaker-open) shard queues before shedding.
    pub queue_limit: usize,
}

impl Default for ProcPoolOptions {
    fn default() -> Self {
        ProcPoolOptions {
            command: Vec::new(),
            heartbeat: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            policy: RespawnPolicy::default(),
            batch_records: POOL_BATCH_RECORDS,
            channel_batches: POOL_CHANNEL_BATCHES,
            queue_limit: DEFAULT_DEGRADED_QUEUE_LIMIT,
        }
    }
}

/// One shard's child process plus the pipe threads that own its ends.
/// The writer thread owns stdin (so a full pipe blocks it, not the
/// feeder — the feeder observes a bounded channel with a deadline), the
/// reader thread owns stdout (so a reply can be awaited with a timeout,
/// which a blocking `read` cannot).
struct ProcWorker {
    child: Child,
    /// Frames to the writer thread. `None` after teardown began.
    to_child: Option<SyncSender<Vec<u8>>>,
    from_child: Receiver<Vec<u8>>,
    writer: Option<JoinHandle<()>>,
    reader: Option<JoinHandle<()>>,
    /// Request sequence, echoed in replies so a stale reply (its
    /// request timed out in an earlier probe) is discarded instead of
    /// being mistaken for the current one. `Cell` because liveness
    /// probes take `&self`.
    next_seq: Cell<u64>,
}

impl ProcWorker {
    fn bump_seq(&self) -> u64 {
        let seq = self.next_seq.get().wrapping_add(1);
        self.next_seq.set(seq);
        seq
    }
}

impl fmt::Debug for ProcWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcWorker")
            .field("pid", &self.child.id())
            .field("next_seq", &self.next_seq.get())
            .finish_non_exhaustive()
    }
}

/// Hand `frame` to the shard's writer thread within `timeout`.
fn send_with_deadline(w: &ProcWorker, frame: Vec<u8>, timeout: Duration) -> bool {
    let Some(tx) = &w.to_child else {
        return false;
    };
    let deadline = Instant::now() + timeout;
    let mut frame = frame;
    loop {
        match tx.try_send(frame) {
            Ok(()) => return true,
            Err(TrySendError::Full(back)) => {
                if Instant::now() >= deadline {
                    return false;
                }
                frame = back;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(TrySendError::Disconnected(_)) => return false,
        }
    }
}

/// Supervisor-side counters, under the `procpool` telemetry scope.
struct ProcTelemetry {
    records_in: Counter,
    batches_shipped: Counter,
    restarts: Counter,
    heartbeat_misses: Counter,
    respawn_backoff: Counter,
    breaker_trips: Counter,
    replayed_records: Counter,
    shard_checkpoints: Counter,
    degraded_queued: Counter,
    degraded_shed: Counter,
}

impl ProcTelemetry {
    fn new() -> ProcTelemetry {
        let scope = Scope::named("procpool");
        ProcTelemetry {
            records_in: scope.counter("records_in"),
            batches_shipped: scope.counter("batches_shipped"),
            restarts: scope.counter("shard_restarts"),
            heartbeat_misses: scope.counter("heartbeat_misses"),
            respawn_backoff: scope.counter("respawn_backoff"),
            breaker_trips: scope.counter("breaker_trips"),
            replayed_records: scope.counter("replayed_records"),
            shard_checkpoints: scope.counter("shard_checkpoints"),
            degraded_queued: scope.counter("degraded_queued_records"),
            degraded_shed: scope.counter("degraded_shed_records"),
        }
    }
}

/// A pool of process-isolated detector shards. See the module docs for
/// the failure model; the API mirrors [`DetectorPool`] via
/// [`ShardBackend`].
///
/// [`DetectorPool`]: crate::parallel::DetectorPool
pub struct ProcPool {
    rules: Arc<RuleSet>,
    /// The sealed [`SignaturePack`] shipped to every (re)spawned child.
    pack_bytes: Vec<u8>,
    config: DetectorConfig,
    opts: ProcPoolOptions,
    /// Resolved worker argv.
    command: Vec<String>,
    workers: Vec<ProcWorker>,
    staging: Vec<Vec<WildRecord>>,
    /// Per-shard checkpoint base states (same contract as the thread
    /// pool's supervisor).
    shard_state: Vec<DetectorState>,
    /// Delta frames accepted but not yet folded into the base.
    pending: Vec<Vec<DetectorDelta>>,
    /// Record batches shipped since the shard's last checkpoint.
    replay: Vec<Vec<Vec<WildRecord>>>,
    replay_records: Vec<usize>,
    replay_limit: usize,
    backoff: Vec<BackoffState>,
    degraded_queue: Vec<Vec<WildRecord>>,
    shed_records: Vec<u64>,
    tel: ProcTelemetry,
}

impl fmt::Debug for ProcPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProcPool")
            .field("workers", &self.workers.len())
            .field("buffered", &self.replay_records.iter().sum::<usize>())
            .finish_non_exhaustive()
    }
}

fn empty_state(nrules: usize) -> DetectorState {
    DetectorState { rules: vec![Vec::new(); nrules] }
}

fn breaker_err(shard: usize, policy: &RespawnPolicy) -> PoolError {
    PoolError {
        shard,
        panic: Some(format!(
            "crash-loop circuit breaker open after {} fast deaths",
            policy.trip_after
        )),
    }
}

impl ProcPool {
    /// Spawn `workers` shard child processes sharing one rule set.
    ///
    /// The rules are sealed into a [`SignaturePack`] and shipped in
    /// each child's `Init` frame; children derive the whole-window
    /// hitlist themselves. Fails if any child cannot be spawned or does
    /// not complete the `Init` handshake within the heartbeat.
    pub fn new(
        rules: &RuleSet,
        config: DetectorConfig,
        workers: usize,
        opts: ProcPoolOptions,
    ) -> Result<ProcPool, PoolError> {
        assert!(workers >= 1, "a pool needs at least one worker");
        let pack = SignaturePack {
            rules: rules.clone(),
            threshold: config.threshold,
            source: "procpool".to_string(),
            comment: String::new(),
        };
        let command = if opts.command.is_empty() {
            let exe = std::env::current_exe().map_err(|e| PoolError {
                shard: 0,
                panic: Some(format!("resolve worker binary: {e}")),
            })?;
            vec![exe.to_string_lossy().into_owned(), "shard-worker".to_string()]
        } else {
            opts.command.clone()
        };
        let nrules = rules.rules.len();
        let mut pool = ProcPool {
            rules: Arc::new(rules.clone()),
            pack_bytes: pack.encode(),
            config,
            opts,
            command,
            workers: Vec::with_capacity(workers),
            staging: (0..workers).map(|_| Vec::new()).collect(),
            shard_state: (0..workers).map(|_| empty_state(nrules)).collect(),
            pending: (0..workers).map(|_| Vec::new()).collect(),
            replay: (0..workers).map(|_| Vec::new()).collect(),
            replay_records: vec![0; workers],
            replay_limit: DEFAULT_REPLAY_LIMIT,
            backoff: vec![BackoffState::default(); workers],
            degraded_queue: (0..workers).map(|_| Vec::new()).collect(),
            shed_records: vec![0; workers],
            tel: ProcTelemetry::new(),
        };
        for shard in 0..workers {
            let w = pool.spawn_child(shard)?;
            pool.workers.push(w);
        }
        Ok(pool)
    }

    /// Child process ids, indexed by shard — the chaos harness SIGKILLs
    /// these directly.
    pub fn child_pids(&self) -> Vec<u32> {
        self.workers.iter().map(|w| w.child.id()).collect()
    }

    /// Spawn one worker and complete its `Init` handshake.
    fn spawn_child(&self, shard: usize) -> Result<ProcWorker, PoolError> {
        let spawn_err = |what: &str, e: &dyn fmt::Display| PoolError {
            shard,
            panic: Some(format!("{what}: {e}")),
        };
        let mut cmd = Command::new(&self.command[0]);
        cmd.args(&self.command[1..]).stdin(Stdio::piped()).stdout(Stdio::piped());
        let mut child = cmd.spawn().map_err(|e| spawn_err("spawn shard worker", &e))?;
        let mut stdin = child.stdin.take().expect("piped stdin");
        let mut stdout = child.stdout.take().expect("piped stdout");
        let (to_child, frames) = sync_channel::<Vec<u8>>(self.opts.channel_batches.max(1));
        let writer = std::thread::Builder::new()
            .name(format!("proc-shard-{shard}-w"))
            .spawn(move || {
                while let Ok(frame) = frames.recv() {
                    if write_frame(&mut stdin, &frame).is_err() {
                        return; // child died; supervisor notices via stdout
                    }
                }
                // Channel closed: dropping stdin EOFs the child, which
                // is its clean-shutdown signal.
            })
            .expect("spawn shard writer thread");
        let (replies, from_child) = channel::<Vec<u8>>();
        let reader = std::thread::Builder::new()
            .name(format!("proc-shard-{shard}-r"))
            .spawn(move || loop {
                match read_frame(&mut stdout, PROC_MAGIC, PROC_MAX_PAYLOAD) {
                    Ok(Some(frame)) => {
                        if replies.send(frame).is_err() {
                            return;
                        }
                    }
                    // EOF or a torn frame: either way the child is
                    // done. Dropping `replies` disconnects the
                    // supervisor's receive end, which reads as Dead.
                    Ok(None) | Err(_) => return,
                }
            })
            .expect("spawn shard reader thread");
        let w = ProcWorker {
            child,
            to_child: Some(to_child),
            from_child,
            writer: Some(writer),
            reader: Some(reader),
            next_seq: Cell::new(0),
        };
        let seq = w.bump_seq();
        let init = request_frame(seq, T_INIT, |b| {
            b.put_bytes(&self.pack_bytes);
            b.put_f64_bits(self.config.threshold);
            b.put_u8(u8::from(self.config.require_established));
        });
        if !send_with_deadline(&w, init, self.opts.write_timeout) {
            return Err(spawn_err("init shard worker", &"pipe closed before init"));
        }
        match await_reply_on(&w, seq, self.opts.heartbeat, &self.tel) {
            Some(Reply::Ack) => Ok(w),
            _ => Err(spawn_err("init shard worker", &"no init ack within heartbeat")),
        }
    }

    /// Kill and reap whatever is left of a shard's child, joining its
    /// pipe threads and draining stale replies. Idempotent.
    fn teardown_child(&mut self, shard: usize) {
        let w = &mut self.workers[shard];
        w.to_child = None;
        let _ = w.child.kill();
        let _ = w.child.wait();
        if let Some(h) = w.writer.take() {
            let _ = h.join();
        }
        if let Some(h) = w.reader.take() {
            let _ = h.join();
        }
        while w.from_child.try_recv().is_ok() {}
    }

    /// The heal path every failure signal converges on: tear the old
    /// child down, consult the breaker, back off, spawn a replacement,
    /// restore the checkpoint base, and replay retained batches.
    fn heal_shard(&mut self, shard: usize) -> Result<(), PoolError> {
        self.teardown_child(shard);
        if self.backoff[shard].tripped() {
            return Err(breaker_err(shard, &self.opts.policy));
        }
        match self.backoff[shard].on_death(&self.opts.policy, Instant::now()) {
            RespawnDecision::Trip => {
                self.tel.breaker_trips.inc();
                return Err(breaker_err(shard, &self.opts.policy));
            }
            RespawnDecision::Backoff(delay) => {
                self.tel.respawn_backoff.inc();
                std::thread::sleep(delay);
            }
        }
        let fresh = self.spawn_child(shard)?;
        self.workers[shard] = fresh;
        self.tel.restarts.inc();
        // Base := checkpoint + any accepted deltas, then replay.
        self.fold_pending(shard);
        let seq = self.workers[shard].bump_seq();
        let frame = restore_frame(seq, &self.shard_state[shard]);
        if !send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
            return Err(PoolError { shard, panic: Some("shard died during restore".into()) });
        }
        let mut replayed = 0u64;
        for i in 0..self.replay[shard].len() {
            let seq = self.workers[shard].bump_seq();
            let frame = batch_frame(seq, &self.replay[shard][i]);
            replayed += self.replay[shard][i].len() as u64;
            if !send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                return Err(PoolError { shard, panic: Some("shard died during replay".into()) });
            }
        }
        self.tel.replayed_records.add(replayed);
        Ok(())
    }

    fn fold_pending(&mut self, shard: usize) {
        for delta in self.pending[shard].drain(..) {
            delta
                .apply(&mut self.shard_state[shard])
                .expect("pending delta matches its base rule count");
        }
    }

    /// Send a request and await its reply, healing and retrying once on
    /// failure. The second death in a row (or an open breaker) errors.
    fn sync_request(
        &mut self,
        shard: usize,
        build: &dyn Fn(u64) -> Vec<u8>,
    ) -> Result<Reply, PoolError> {
        for _ in 0..2 {
            if self.backoff[shard].tripped() {
                return Err(breaker_err(shard, &self.opts.policy));
            }
            let seq = self.workers[shard].bump_seq();
            if send_with_deadline(&self.workers[shard], build(seq), self.opts.write_timeout) {
                if let Some(reply) =
                    await_reply_on(&self.workers[shard], seq, self.opts.heartbeat, &self.tel)
                {
                    return Ok(reply);
                }
            }
            self.heal_shard(shard)?;
        }
        Err(PoolError { shard, panic: Some("shard died again during recovery".into()) })
    }

    /// Divert a degraded shard's staged records into its bounded queue,
    /// shedding beyond the limit with exact accounting.
    fn queue_degraded(&mut self, shard: usize) {
        let staged = std::mem::take(&mut self.staging[shard]);
        let room = self.opts.queue_limit.saturating_sub(self.degraded_queue[shard].len());
        let keep = staged.len().min(room);
        self.degraded_queue[shard].extend_from_slice(&staged[..keep]);
        let shed = (staged.len() - keep) as u64;
        self.shed_records[shard] += shed;
        self.tel.degraded_queued.add(keep as u64);
        self.tel.degraded_shed.add(shed);
    }

    /// Ship a shard's staged records as one batch frame, retaining them
    /// for replay. A degraded shard queues instead; a shard that dies
    /// twice in a row errors.
    fn ship(&mut self, shard: usize) -> Result<(), PoolError> {
        if self.staging[shard].is_empty() {
            return Ok(());
        }
        if self.backoff[shard].tripped() {
            self.queue_degraded(shard);
            return Ok(());
        }
        for _ in 0..2 {
            let seq = self.workers[shard].bump_seq();
            let frame = batch_frame(seq, &self.staging[shard]);
            if send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                // The handoff is atomic: the frame either entered the
                // writer queue (retain for replay) or it did not (keep
                // staged and retry after healing).
                let batch = std::mem::take(&mut self.staging[shard]);
                self.replay_records[shard] += batch.len();
                self.replay[shard].push(batch);
                self.tel.batches_shipped.inc();
                return Ok(());
            }
            if let Err(e) = self.heal_shard(shard) {
                if self.backoff[shard].tripped() {
                    // Tripped while shipping: divert and keep the rest
                    // of the pool flowing.
                    self.queue_degraded(shard);
                    return Ok(());
                }
                return Err(e);
            }
        }
        Err(PoolError { shard, panic: Some("shard died again during recovery".into()) })
    }

    /// Observe records, partitioned to shards by line id — the same
    /// `shard_of` as the thread backend, so the two backends partition
    /// identically.
    pub fn observe_records(&mut self, records: &[WildRecord]) -> Result<(), PoolError> {
        let n = self.workers.len();
        self.tel.records_in.add(records.len() as u64);
        for r in records {
            let shard = shard_of(r.line, n);
            self.staging[shard].push(*r);
            // A degraded shard's records divert to its bounded queue
            // eagerly (not at the batch threshold), so `/readyz` and
            // `/stats` see the queue depth grow as records arrive.
            if self.staging[shard].len() >= self.opts.batch_records
                || self.backoff[shard].tripped()
            {
                self.ship(shard)?;
            }
        }
        // Bound replay memory: checkpoint any shard over its limit
        // (skipping degraded shards — their retention stopped growing).
        for shard in 0..n {
            if self.replay_records[shard] >= self.replay_limit && !self.backoff[shard].tripped() {
                self.checkpoint_shard(shard)?;
            }
        }
        Ok(())
    }

    /// Push every partial staging buffer to its worker.
    pub fn flush(&mut self) -> Result<(), PoolError> {
        for shard in 0..self.workers.len() {
            self.ship(shard)?;
        }
        Ok(())
    }

    /// Flush, then barrier every worker: when this returns, every
    /// record fed so far has been folded into some shard's evidence.
    pub fn finish(&mut self) -> Result<(), PoolError> {
        self.flush()?;
        for shard in 0..self.workers.len() {
            self.sync_request(shard, &|seq| request_frame(seq, T_BARRIER, |_| ()))?;
        }
        Ok(())
    }

    /// Checkpoint one shard: ship its staging, take a full snapshot,
    /// and drain its replay retention.
    fn checkpoint_shard(&mut self, shard: usize) -> Result<(), PoolError> {
        self.ship(shard)?;
        let reply = self.sync_request(shard, &|seq| request_frame(seq, T_SNAPSHOT, |_| ()))?;
        let Reply::State(state) = reply else {
            return Err(PoolError { shard, panic: Some("protocol: expected State reply".into()) });
        };
        self.shard_state[shard] = state;
        self.pending[shard].clear(); // subsumed by the full
        self.replay[shard].clear();
        self.replay_records[shard] = 0;
        self.tel.shard_checkpoints.inc();
        Ok(())
    }

    /// Checkpoint every shard (full states). Snapshot requests are
    /// broadcast before any reply is awaited so shards export
    /// concurrently; a shard that fails the round-trip is healed and
    /// checkpointed on the recovered slow path.
    pub fn checkpoint_all(&mut self) -> Result<(), PoolError> {
        self.flush()?;
        let mut sent: Vec<Option<u64>> = vec![None; self.workers.len()];
        for (shard, slot) in sent.iter_mut().enumerate() {
            if self.backoff[shard].tripped() {
                return Err(breaker_err(shard, &self.opts.policy));
            }
            let seq = self.workers[shard].bump_seq();
            let frame = request_frame(seq, T_SNAPSHOT, |_| ());
            if send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                *slot = Some(seq);
            }
        }
        for (shard, seq) in sent.into_iter().enumerate() {
            let state = seq.and_then(|seq| {
                match await_reply_on(&self.workers[shard], seq, self.opts.heartbeat, &self.tel) {
                    Some(Reply::State(state)) => Some(state),
                    _ => None,
                }
            });
            match state {
                Some(state) => {
                    self.shard_state[shard] = state;
                    self.pending[shard].clear();
                    self.replay[shard].clear();
                    self.replay_records[shard] = 0;
                    self.tel.shard_checkpoints.inc();
                }
                None => {
                    self.heal_shard(shard)?;
                    self.checkpoint_shard(shard)?;
                }
            }
        }
        Ok(())
    }

    /// Checkpoint every shard incrementally, returning the per-shard
    /// dirty-only frames for persistence — the same contract as the
    /// thread backend's `checkpoint_all_delta`.
    pub fn checkpoint_all_delta(&mut self) -> Result<Vec<DetectorSnapshot>, PoolError> {
        self.flush()?;
        let mut sent: Vec<Option<u64>> = vec![None; self.workers.len()];
        for (shard, slot) in sent.iter_mut().enumerate() {
            if self.backoff[shard].tripped() {
                return Err(breaker_err(shard, &self.opts.policy));
            }
            let seq = self.workers[shard].bump_seq();
            let frame = request_frame(seq, T_SNAPSHOT_DELTA, |_| ());
            if send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                *slot = Some(seq);
            }
        }
        let mut frames = Vec::with_capacity(self.workers.len());
        for (shard, seq) in sent.into_iter().enumerate() {
            let snap = seq.and_then(|seq| {
                match await_reply_on(&self.workers[shard], seq, self.opts.heartbeat, &self.tel) {
                    Some(Reply::Snap(snap)) => Some(snap),
                    _ => None,
                }
            });
            match snap {
                Some(snap) => {
                    match &snap {
                        DetectorSnapshot::Full(state) => {
                            self.shard_state[shard] = state.clone();
                            self.pending[shard].clear();
                        }
                        DetectorSnapshot::Delta(delta) => self.pending[shard].push(delta.clone()),
                    }
                    self.replay[shard].clear();
                    self.replay_records[shard] = 0;
                    self.tel.shard_checkpoints.inc();
                    frames.push(snap);
                }
                None => {
                    // Healed shard contributes a full frame — its dirty
                    // set died with it.
                    self.heal_shard(shard)?;
                    self.checkpoint_shard(shard)?;
                    frames.push(DetectorSnapshot::Full(self.shard_state[shard].clone()));
                }
            }
        }
        Ok(frames)
    }

    /// The supervisor's merged per-shard base states.
    pub fn supervised_shard_states(&mut self) -> Vec<DetectorState> {
        for shard in 0..self.shard_state.len() {
            self.fold_pending(shard);
        }
        self.shard_state.clone()
    }

    /// Export every shard's evidence state (doubles as a checkpoint).
    pub fn shard_states(&mut self) -> Result<Vec<DetectorState>, PoolError> {
        self.checkpoint_all()?;
        Ok(self.shard_state.clone())
    }

    /// Restore per-shard evidence states from a same-shape export.
    /// Staged records and replay retention are discarded — the restored
    /// states define the new watermark.
    pub fn restore_shard_states(&mut self, states: &[DetectorState]) -> Result<(), PoolError> {
        assert_eq!(states.len(), self.workers.len(), "shard-count mismatch on restore");
        for s in &mut self.staging {
            s.clear();
        }
        self.shard_state = states.to_vec();
        for q in &mut self.pending {
            q.clear();
        }
        for r in &mut self.replay {
            r.clear();
        }
        self.replay_records.fill(0);
        for shard in 0..self.workers.len() {
            if self.backoff[shard].tripped() {
                return Err(breaker_err(shard, &self.opts.policy));
            }
            let seq = self.workers[shard].bump_seq();
            let frame = restore_frame(seq, &self.shard_state[shard]);
            if !send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                // Healing restores from the just-installed base.
                self.heal_shard(shard)?;
            }
        }
        Ok(())
    }

    /// Swap the daily hitlist on every shard. The process backend
    /// always derives the whole-window hitlist from the rules (see the
    /// module docs), so this checkpoint-then-broadcast merely re-derives
    /// it child-side.
    pub fn set_hitlist(&mut self, _hitlist: &HitList) -> Result<(), PoolError> {
        self.checkpoint_all()?;
        for shard in 0..self.workers.len() {
            let seq = self.workers[shard].bump_seq();
            let frame = request_frame(seq, T_SET_HITLIST, |_| ());
            if !send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                self.heal_shard(shard)?;
            }
        }
        Ok(())
    }

    /// Swap the rule set live, migrating evidence by class name —
    /// checkpoint-first, exactly like the thread backend.
    pub fn set_rules(&mut self, rules: &RuleSet, _hitlist: &HitList) -> Result<(), PoolError> {
        let new_rules = Arc::new(rules.clone());
        let old_states = self.shard_states()?; // checkpoint: replay drains
        let migrated: Vec<DetectorState> = old_states
            .iter()
            .map(|s| {
                crate::pack::migrate_detector_state(&self.rules, &new_rules, self.config.threshold, s)
            })
            .collect();
        let pack = SignaturePack {
            rules: rules.clone(),
            threshold: self.config.threshold,
            source: "procpool".to_string(),
            comment: String::new(),
        };
        self.pack_bytes = pack.encode();
        self.shard_state = migrated.clone();
        for q in &mut self.pending {
            q.clear(); // pre-swap deltas reference the old rule set
        }
        self.rules = new_rules;
        for (shard, state) in migrated.iter().enumerate() {
            let seq = self.workers[shard].bump_seq();
            let frame = request_frame(seq, T_SET_RULES, |w| {
                w.put_bytes(&self.pack_bytes);
                w.put_bytes(&state.encode());
            });
            if !send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                // A respawn inits with the new pack and restores the
                // migrated base — same outcome as the swap frame.
                self.heal_shard(shard)?;
            }
        }
        Ok(())
    }

    /// Clear accumulated evidence (new aggregation window). Staged and
    /// degraded-queued records are discarded — they belong to the
    /// window being cleared.
    pub fn reset(&mut self) -> Result<(), PoolError> {
        for s in &mut self.staging {
            s.clear();
        }
        for q in &mut self.degraded_queue {
            q.clear();
        }
        let nrules = self.rules.rules.len();
        for shard in 0..self.workers.len() {
            self.shard_state[shard] = empty_state(nrules);
            self.pending[shard].clear();
            self.replay[shard].clear();
            self.replay_records[shard] = 0;
        }
        for shard in 0..self.workers.len() {
            if self.backoff[shard].tripped() {
                continue; // already at the empty base; heals on reset_breaker
            }
            let seq = self.workers[shard].bump_seq();
            let frame = request_frame(seq, T_RESET, |_| ());
            if !send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                self.heal_shard(shard)?; // restores the empty base
            }
        }
        Ok(())
    }

    /// All lines for which `class` is detected, merged and sorted.
    pub fn detected_lines(&mut self, class: &str) -> Result<Vec<AnonId>, PoolError> {
        self.flush()?;
        let mut all = Vec::new();
        for shard in 0..self.workers.len() {
            let reply = self.sync_request(shard, &|seq| {
                request_frame(seq, T_DETECTED_LINES, |w| w.put_str(class))
            })?;
            let Reply::Lines(lines) = reply else {
                return Err(PoolError {
                    shard,
                    panic: Some("protocol: expected Lines reply".into()),
                });
            };
            all.extend(lines);
        }
        all.sort_unstable();
        Ok(all)
    }

    /// Whether `class` is detected for `line`.
    pub fn is_detected(&mut self, line: AnonId, class: &str) -> Result<bool, PoolError> {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard)?;
        let reply = self.sync_request(shard, &|seq| {
            request_frame(seq, T_IS_DETECTED, |w| {
                w.put_u64(line.0);
                w.put_str(class);
            })
        })?;
        match reply {
            Reply::Bool(b) => Ok(b),
            _ => Err(PoolError { shard, panic: Some("protocol: expected Bool reply".into()) }),
        }
    }

    /// Graded detection confidence for `(line, class)` in `[0, 1]`.
    pub fn confidence(&mut self, line: AnonId, class: &str) -> Result<f64, PoolError> {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard)?;
        let reply = self.sync_request(shard, &|seq| {
            request_frame(seq, T_CONFIDENCE, |w| {
                w.put_u64(line.0);
                w.put_str(class);
            })
        })?;
        match reply {
            Reply::F64(v) => Ok(v),
            _ => Err(PoolError { shard, panic: Some("protocol: expected F64 reply".into()) }),
        }
    }

    /// First hour the gated detection held for `(line, class)`.
    pub fn first_detection(
        &mut self,
        line: AnonId,
        class: &str,
    ) -> Result<Option<HourBin>, PoolError> {
        let shard = shard_of(line, self.workers.len());
        self.ship(shard)?;
        let reply = self.sync_request(shard, &|seq| {
            request_frame(seq, T_FIRST_DETECTION, |w| {
                w.put_u64(line.0);
                w.put_str(class);
            })
        })?;
        match reply {
            Reply::First(first) => Ok(first),
            _ => Err(PoolError { shard, panic: Some("protocol: expected First reply".into()) }),
        }
    }

    /// Total per-(line, rule) states held across shards.
    pub fn state_size(&mut self) -> Result<usize, PoolError> {
        self.flush()?;
        let mut total = 0usize;
        for shard in 0..self.workers.len() {
            let reply =
                self.sync_request(shard, &|seq| request_frame(seq, T_STATE_SIZE, |_| ()))?;
            let Reply::Usize(n) = reply else {
                return Err(PoolError {
                    shard,
                    panic: Some("protocol: expected Usize reply".into()),
                });
            };
            total += n;
        }
        Ok(total)
    }

    /// Probe every shard's liveness within `timeout` (observational —
    /// no healing). A tripped shard reads as Dead.
    pub fn shard_health(&self, timeout: Duration) -> Vec<ShardHealth> {
        (0..self.workers.len())
            .map(|shard| {
                if self.backoff[shard].tripped() {
                    return ShardHealth::Dead;
                }
                let w = &self.workers[shard];
                let Some(tx) = &w.to_child else {
                    return ShardHealth::Dead;
                };
                let deadline = Instant::now() + timeout;
                let seq = w.bump_seq();
                let mut frame = request_frame(seq, T_BARRIER, |_| ());
                loop {
                    match tx.try_send(frame) {
                        Ok(()) => break,
                        Err(TrySendError::Full(back)) => {
                            if Instant::now() >= deadline {
                                return ShardHealth::Stalled;
                            }
                            frame = back;
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(TrySendError::Disconnected(_)) => return ShardHealth::Dead,
                    }
                }
                loop {
                    let left = deadline.saturating_duration_since(Instant::now());
                    match w.from_child.recv_timeout(left) {
                        Ok(bytes) => match decode_reply(&bytes) {
                            Ok((rseq, _)) if rseq == seq => return ShardHealth::Responsive,
                            Ok((rseq, _)) if rseq < seq => continue, // stale
                            _ => return ShardHealth::Dead,
                        },
                        Err(RecvTimeoutError::Timeout) => return ShardHealth::Stalled,
                        Err(RecvTimeoutError::Disconnected) => return ShardHealth::Dead,
                    }
                }
            })
            .collect()
    }

    /// Per-shard supervision status plus degraded-queue accounting.
    pub fn shard_status(&self) -> Vec<ShardStatusReport> {
        let now = Instant::now();
        (0..self.workers.len())
            .map(|shard| ShardStatusReport {
                status: self.backoff[shard].status_at(&self.opts.policy, now),
                queued: self.degraded_queue[shard].len() as u64,
                shed: self.shed_records[shard],
            })
            .collect()
    }

    /// Watchdog escalation: abandon a wedged shard and bring up a
    /// replacement from checkpoint + replay. Counts as a death for the
    /// breaker — repeated escalation trips it rather than thrashing.
    pub fn force_respawn(&mut self, shard: usize) -> Result<(), PoolError> {
        assert!(shard < self.workers.len(), "no such shard");
        self.heal_shard(shard)
    }

    /// Operator reset for a degraded shard: close its breaker, respawn
    /// from checkpoint + replay, then re-feed the queued records.
    pub fn reset_breaker(&mut self, shard: usize) -> Result<(), PoolError> {
        assert!(shard < self.workers.len(), "no such shard");
        self.backoff[shard].reset();
        self.heal_shard(shard)?;
        // The heal above counted as a death; an operator reset declares
        // the shard healthy, so clear that bookkeeping too.
        self.backoff[shard].reset();
        let queued = std::mem::take(&mut self.degraded_queue[shard]);
        for r in &queued {
            self.staging[shard].push(*r);
            if self.staging[shard].len() >= self.opts.batch_records {
                self.ship(shard)?;
            }
        }
        Ok(())
    }

    /// Chaos: make `shard` exit abruptly once everything sent before is
    /// processed (an injected crash, like an abort mid-hour).
    pub fn inject_panic(&mut self, shard: usize, msg: &str) -> Result<(), PoolError> {
        let owned = msg.to_string();
        for _ in 0..2 {
            if self.backoff[shard].tripped() {
                return Err(breaker_err(shard, &self.opts.policy));
            }
            let seq = self.workers[shard].bump_seq();
            let frame = request_frame(seq, T_PANIC, |w| w.put_str(&owned));
            if send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                return Ok(());
            }
            self.heal_shard(shard)?;
        }
        Err(PoolError { shard, panic: Some("shard died again during recovery".into()) })
    }

    /// Chaos: make `shard` stall for `dur` (alive but unresponsive).
    pub fn inject_stall(&mut self, shard: usize, dur: Duration) -> Result<(), PoolError> {
        for _ in 0..2 {
            if self.backoff[shard].tripped() {
                return Err(breaker_err(shard, &self.opts.policy));
            }
            let seq = self.workers[shard].bump_seq();
            let ms = dur.as_millis() as u64;
            let frame = request_frame(seq, T_STALL, |w| w.put_u64(ms));
            if send_with_deadline(&self.workers[shard], frame, self.opts.write_timeout) {
                return Ok(());
            }
            self.heal_shard(shard)?;
        }
        Err(PoolError { shard, panic: Some("shard died again during recovery".into()) })
    }

    /// Chaos: SIGKILL `shard`'s child *right now* — the exact failure
    /// the process backend exists to survive. The next operation
    /// touching the shard heals it.
    pub fn kill_shard(&mut self, shard: usize) -> Result<(), PoolError> {
        assert!(shard < self.workers.len(), "no such shard");
        let _ = self.workers[shard].child.kill();
        Ok(())
    }
}

/// Await the reply matching `seq` on a worker's receive channel,
/// discarding stale replies (their requests timed out earlier). `None`
/// means a heartbeat miss, a disconnect, or a corrupt frame — all
/// grounds for healing.
fn await_reply_on(
    w: &ProcWorker,
    seq: u64,
    timeout: Duration,
    tel: &ProcTelemetry,
) -> Option<Reply> {
    let deadline = Instant::now() + timeout;
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        match w.from_child.recv_timeout(left) {
            Ok(bytes) => match decode_reply(&bytes) {
                Ok((rseq, reply)) if rseq == seq => return Some(reply),
                Ok((rseq, _)) if rseq < seq => continue,
                _ => return None,
            },
            Err(RecvTimeoutError::Timeout) => {
                tel.heartbeat_misses.inc();
                return None;
            }
            Err(RecvTimeoutError::Disconnected) => return None,
        }
    }
}

impl ShardBackend for ProcPool {
    fn workers(&self) -> usize {
        self.workers.len()
    }
    fn enable_supervision(&mut self, replay_limit: usize) -> Result<(), PoolError> {
        // Supervision is inherent to the process backend; this only
        // adjusts the replay bound and establishes a fresh watermark.
        self.replay_limit = replay_limit.max(1);
        self.checkpoint_all()
    }
    fn supervised(&self) -> bool {
        true
    }
    fn attach_telemetry(&mut self, scope: &Scope) -> Result<(), PoolError> {
        scope.gauge("workers").set(self.workers.len() as u64);
        Ok(())
    }
    fn set_respawn_policy(&mut self, policy: RespawnPolicy) {
        self.opts.policy = policy;
    }
    fn observe_records(&mut self, records: &[WildRecord]) -> Result<(), PoolError> {
        ProcPool::observe_records(self, records)
    }
    fn flush(&mut self) -> Result<(), PoolError> {
        ProcPool::flush(self)
    }
    fn finish(&mut self) -> Result<(), PoolError> {
        ProcPool::finish(self)
    }
    fn checkpoint_all(&mut self) -> Result<(), PoolError> {
        ProcPool::checkpoint_all(self)
    }
    fn checkpoint_all_delta(&mut self) -> Result<Vec<DetectorSnapshot>, PoolError> {
        ProcPool::checkpoint_all_delta(self)
    }
    fn supervised_shard_states(&mut self) -> Vec<DetectorState> {
        ProcPool::supervised_shard_states(self)
    }
    fn shard_states(&mut self) -> Result<Vec<DetectorState>, PoolError> {
        ProcPool::shard_states(self)
    }
    fn restore_shard_states(&mut self, states: &[DetectorState]) -> Result<(), PoolError> {
        ProcPool::restore_shard_states(self, states)
    }
    fn set_hitlist(&mut self, hitlist: &HitList) -> Result<(), PoolError> {
        ProcPool::set_hitlist(self, hitlist)
    }
    fn set_rules(&mut self, rules: &RuleSet, hitlist: &HitList) -> Result<(), PoolError> {
        ProcPool::set_rules(self, rules, hitlist)
    }
    fn reset(&mut self) -> Result<(), PoolError> {
        ProcPool::reset(self)
    }
    fn detected_lines(&mut self, class: &str) -> Result<Vec<AnonId>, PoolError> {
        ProcPool::detected_lines(self, class)
    }
    fn is_detected(&mut self, line: AnonId, class: &str) -> Result<bool, PoolError> {
        ProcPool::is_detected(self, line, class)
    }
    fn confidence(&mut self, line: AnonId, class: &str) -> Result<f64, PoolError> {
        ProcPool::confidence(self, line, class)
    }
    fn first_detection(
        &mut self,
        line: AnonId,
        class: &str,
    ) -> Result<Option<HourBin>, PoolError> {
        ProcPool::first_detection(self, line, class)
    }
    fn state_size(&mut self) -> Result<usize, PoolError> {
        ProcPool::state_size(self)
    }
    fn shard_health(&self, timeout: Duration) -> Vec<ShardHealth> {
        ProcPool::shard_health(self, timeout)
    }
    fn shard_status(&self) -> Vec<ShardStatusReport> {
        ProcPool::shard_status(self)
    }
    fn force_respawn(&mut self, shard: usize) -> Result<(), PoolError> {
        ProcPool::force_respawn(self, shard)
    }
    fn reset_breaker(&mut self, shard: usize) -> Result<(), PoolError> {
        ProcPool::reset_breaker(self, shard)
    }
    fn inject_panic(&mut self, shard: usize, msg: &str) -> Result<(), PoolError> {
        ProcPool::inject_panic(self, shard, msg)
    }
    fn inject_stall(&mut self, shard: usize, dur: Duration) -> Result<(), PoolError> {
        ProcPool::inject_stall(self, shard, dur)
    }
    fn kill_shard(&mut self, shard: usize) -> Result<(), PoolError> {
        ProcPool::kill_shard(self, shard)
    }
}

impl Drop for ProcPool {
    fn drop(&mut self) {
        // Ask every child to exit, then close the pipes (EOF doubles as
        // the shutdown signal if the frame did not fit).
        for w in &mut self.workers {
            if let Some(tx) = &w.to_child {
                let seq = w.bump_seq();
                let _ = tx.try_send(request_frame(seq, T_SHUTDOWN, |_| ()));
            }
            w.to_child = None;
        }
        for w in &mut self.workers {
            let deadline = Instant::now() + Duration::from_secs(2);
            loop {
                match w.child.try_wait() {
                    Ok(Some(_)) => break,
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(10))
                    }
                    _ => {
                        let _ = w.child.kill();
                        let _ = w.child.wait();
                        break;
                    }
                }
            }
            if let Some(h) = w.writer.take() {
                let _ = h.join();
            }
            if let Some(h) = w.reader.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleDomain, RuleSetBuilder};
    use haystack_dns::DomainName;
    use haystack_testbed::catalog::DetectionLevel;
    use std::io::Cursor;

    fn ruleset(n: usize) -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.rule(
            "X",
            DetectionLevel::Manufacturer,
            None,
            (0..n)
                .map(|i| RuleDomain {
                    name: DomainName::parse(&format!("d{i}.x.com")).unwrap(),
                    ports: [443u16].into_iter().collect(),
                    ips: [Ipv4Addr::new(198, 18, 8, i as u8 + 1)].into_iter().collect(),
                    usage_indicator: false,
                })
                .collect(),
        );
        b.build()
    }

    fn record(line: u64, dst_octet: u8, hour: u32) -> WildRecord {
        let src = Ipv4Addr::new(100, 64, 0, 7);
        WildRecord {
            line: AnonId(line),
            line_slash24: Prefix4::slash24_of(src),
            src_ip: src,
            dst: Ipv4Addr::new(198, 18, 8, dst_octet),
            dport: 443,
            proto: Proto::Tcp,
            packets: 3,
            bytes: 321,
            established: true,
            hour: HourBin(hour),
        }
    }

    #[test]
    fn record_codec_round_trips_exactly() {
        let records: Vec<WildRecord> =
            (0..40).map(|i| record(i, (i % 6) as u8 + 1, (i % 24) as u32)).collect();
        let frame = batch_frame(7, &records);
        let (seq, msg) = decode_to_worker(&frame).unwrap();
        assert_eq!(seq, 7);
        let ToWorker::Batch(back) = msg else { panic!("not a batch") };
        assert_eq!(back, records);
    }

    #[test]
    fn reply_codec_round_trips_every_shape() {
        let shapes: Vec<Reply> = vec![
            Reply::Ack,
            Reply::State(DetectorState { rules: vec![Vec::new(), Vec::new()] }),
            Reply::Lines(vec![AnonId(3), AnonId(9)]),
            Reply::Bool(true),
            Reply::F64(0.625),
            Reply::First(Some(HourBin(17))),
            Reply::First(None),
            Reply::Usize(42),
        ];
        for (i, reply) in shapes.iter().enumerate() {
            let frame = reply_frame(i as u64, reply);
            let (seq, back) = decode_reply(&frame).unwrap();
            assert_eq!(seq, i as u64);
            assert_eq!(format!("{back:?}"), format!("{reply:?}"), "shape {i}");
        }
    }

    #[test]
    fn corrupt_request_frame_is_rejected_not_misread() {
        let mut frame = batch_frame(1, &[record(5, 1, 0)]);
        let mid = frame.len() / 2;
        frame[mid] ^= 0x80;
        assert!(decode_to_worker(&frame).is_err());
    }

    /// Drive the child's protocol loop over in-memory pipes — the whole
    /// wire contract without spawning a process.
    #[test]
    fn worker_loop_serves_the_protocol_over_byte_streams() {
        let rules = ruleset(6);
        let config = DetectorConfig { threshold: 0.5, require_established: false };
        let pack = SignaturePack {
            rules: rules.clone(),
            threshold: config.threshold,
            source: "test".into(),
            comment: String::new(),
        };
        let pack_bytes = pack.encode();

        // Enough distinct-domain evidence on line 12 to cross 0.5 of 6.
        let records: Vec<WildRecord> = (0..4).map(|i| record(12, i + 1, i as u32)).collect();
        let mut input = Vec::new();
        let mut frame = |f: Vec<u8>| input.extend_from_slice(&f);
        frame(request_frame(1, T_INIT, |w| {
            w.put_bytes(&pack_bytes);
            w.put_f64_bits(config.threshold);
            w.put_u8(0);
        }));
        frame(batch_frame(2, &records));
        frame(request_frame(3, T_BARRIER, |_| ()));
        frame(request_frame(4, T_IS_DETECTED, |w| {
            w.put_u64(12);
            w.put_str("X");
        }));
        frame(request_frame(5, T_DETECTED_LINES, |w| w.put_str("X")));
        frame(request_frame(6, T_SNAPSHOT, |_| ()));
        frame(request_frame(7, T_SHUTDOWN, |_| ()));

        let mut rin = Cursor::new(input);
        let mut out = Vec::new();
        run_worker(&mut rin, &mut out).unwrap();

        let mut rout = Cursor::new(out);
        let mut next = || {
            let f = read_frame(&mut rout, PROC_MAGIC, PROC_MAX_PAYLOAD).unwrap().expect("reply");
            decode_reply(&f).unwrap()
        };
        assert!(matches!(next(), (1, Reply::Ack)), "init ack");
        assert!(matches!(next(), (3, Reply::Ack)), "barrier ack");
        match next() {
            (4, Reply::Bool(b)) => assert!(b, "line 12 detected"),
            other => panic!("unexpected: {other:?}"),
        }
        match next() {
            (5, Reply::Lines(lines)) => assert_eq!(lines, vec![AnonId(12)]),
            other => panic!("unexpected: {other:?}"),
        }
        match next() {
            (6, Reply::State(state)) => assert!(state.entry_count() > 0),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(
            read_frame(&mut rout, PROC_MAGIC, PROC_MAX_PAYLOAD).unwrap().is_none(),
            "clean EOF after shutdown"
        );
    }

    #[test]
    fn worker_loop_rejects_a_first_frame_that_is_not_init() {
        let mut input = Vec::new();
        input.extend_from_slice(&request_frame(1, T_BARRIER, |_| ()));
        let mut rin = Cursor::new(input);
        let mut out = Vec::new();
        let err = run_worker(&mut rin, &mut out).unwrap_err();
        assert!(err.contains("Init"), "err: {err}");
    }
}
