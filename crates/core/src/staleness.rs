//! §7.3 — rule staleness.
//!
//! > *"If the IoT devices change their backend infrastructure, e.g.,
//! > after an update, we may have to update our detection rules too."*
//!
//! An operator notices the change as a silent decay: flows stop matching
//! a rule domain's hitlist entries while the device population obviously
//! has not vanished. The monitor keeps an exponentially-decayed per-domain
//! match rate, compares each day against the domain's own baseline, and
//! flags domains (and whole rules) whose evidence collapsed — the signal
//! to re-run the testbed pipeline for that vendor.

use crate::checkpoint::{StalenessDelta, StalenessState};
use crate::fasthash::{FastMap, FastSet};
use crate::hitlist::HitList;
use crate::rules::RuleSet;
use haystack_net::DayBin;
use haystack_wild::WildRecord;

/// Decay factor per day for the baseline average (≈ two-week memory).
const DECAY: f64 = 0.85;
/// A domain is stale when today's matches drop below this fraction of its
/// baseline.
const STALE_FRACTION: f64 = 0.2;
/// Days of warm-up before staleness verdicts are issued.
const WARMUP_DAYS: u32 = 3;

/// Per-domain staleness verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct StaleDomain {
    /// Rule class name (owned — resolved from the rule set's interned
    /// table at verdict time, so verdicts outlive a rules hot-reload).
    pub class: String,
    /// Domain index within the rule.
    pub domain_index: usize,
    /// Domain name.
    pub domain: String,
    /// Baseline (decayed mean) daily matches.
    pub baseline: f64,
    /// Today's matches.
    pub today: u64,
}

/// Tracks per-(rule, domain) match volume day over day.
#[derive(Debug)]
pub struct StalenessMonitor {
    hitlist: HitList,
    /// (rule, domain) → today's matched packets.
    today: FastMap<(u16, u16), u64>,
    /// (rule, domain) → decayed baseline.
    baseline: FastMap<(u16, u16), f64>,
    days_seen: u32,
    /// (rule, domain) keys whose today-count mutated since the last
    /// snapshot.
    dirty: FastSet<(u16, u16)>,
    /// Set when the dirty set cannot bound the mutations since the last
    /// snapshot (fresh monitor, day fold, restore) — baselines and the
    /// day count only change at `end_of_day`, so a delta never carries
    /// them and the fold forces the next snapshot full.
    dirty_all: bool,
}

impl StalenessMonitor {
    /// New monitor over the day's hitlist.
    pub fn new(hitlist: HitList) -> Self {
        StalenessMonitor {
            hitlist,
            today: FastMap::default(),
            baseline: FastMap::default(),
            days_seen: 0,
            dirty: FastSet::default(),
            dirty_all: true,
        }
    }

    /// Observe one record of the current day. Allocation-free on the
    /// steady-state matching path (disjoint hitlist/count borrows).
    pub fn observe(&mut self, r: &WildRecord) {
        let StalenessMonitor { hitlist, today, dirty, dirty_all, .. } = self;
        for &(ri, di) in hitlist.lookup(r.dst, r.dport) {
            *today.entry((ri, di)).or_default() += r.packets;
            if !*dirty_all {
                dirty.insert((ri, di));
            }
        }
    }

    /// Close the day: fold counts into baselines, emit staleness verdicts,
    /// and arm the next day's hitlist.
    pub fn end_of_day(
        &mut self,
        rules: &RuleSet,
        next_hitlist: HitList,
        _day: DayBin,
    ) -> Vec<StaleDomain> {
        let mut verdicts = Vec::new();
        self.days_seen += 1;
        // Every (rule, domain) pair is assessed, including those with zero
        // matches today (the interesting case).
        for (ri, rule) in rules.rules.iter().enumerate() {
            for (di, dom) in rule.domains.iter().enumerate() {
                let key = (ri as u16, di as u16);
                let today = self.today.get(&key).copied().unwrap_or(0);
                let baseline = self.baseline.entry(key).or_insert(today as f64);
                if self.days_seen > WARMUP_DAYS
                    && *baseline > 10.0
                    && (today as f64) < STALE_FRACTION * *baseline
                {
                    verdicts.push(StaleDomain {
                        class: rules.class_name(rule.class).to_string(),
                        domain_index: di,
                        domain: dom.name.as_str().to_string(),
                        baseline: *baseline,
                        today,
                    });
                }
                *baseline = DECAY * *baseline + (1.0 - DECAY) * today as f64;
            }
        }
        self.today.clear();
        self.hitlist = next_hitlist;
        // The fold rewrote every baseline and cleared the day counts —
        // mutations a (today-only) delta cannot carry.
        self.dirty_all = true;
        self.dirty.clear();
        verdicts
    }

    /// Days folded so far.
    pub fn days_seen(&self) -> u32 {
        self.days_seen
    }

    /// Export counts and baselines for checkpointing, sorted for
    /// deterministic encoding. Baselines are exported as exact `f64`s —
    /// the snapshot codec carries them as raw bits, so a restored
    /// monitor continues from bit-identical decayed means.
    pub fn export_state(&self) -> StalenessState {
        let mut today: Vec<((u16, u16), u64)> =
            self.today.iter().map(|(k, v)| (*k, *v)).collect();
        today.sort_unstable();
        let mut baseline: Vec<((u16, u16), f64)> =
            self.baseline.iter().map(|(k, v)| (*k, *v)).collect();
        baseline.sort_unstable_by_key(|(k, _)| *k);
        StalenessState { today, baseline, days_seen: self.days_seen }
    }

    /// Replace counts and baselines with a checkpointed state.
    pub fn restore_state(&mut self, state: &StalenessState) {
        self.today.clear();
        self.today.extend(state.today.iter().copied());
        self.baseline.clear();
        self.baseline.extend(state.baseline.iter().copied());
        self.days_seen = state.days_seen;
        self.dirty_all = true;
        self.dirty.clear();
    }

    fn mark_clean(&mut self) {
        self.dirty_all = false;
        self.dirty.clear();
    }

    /// Export a full snapshot and start tracking mutations from it.
    pub fn checkpoint_full(&mut self) -> StalenessState {
        let state = self.export_state();
        self.mark_clean();
        state
    }

    /// Take a dirty-only delta since the last `checkpoint_full` /
    /// `take_snapshot_delta`. `Err` carries a full snapshot when no
    /// clean base exists (fresh monitor, after a day fold or restore).
    pub fn take_snapshot_delta(&mut self) -> Result<StalenessDelta, StalenessState> {
        if self.dirty_all {
            return Err(self.checkpoint_full());
        }
        let mut today: Vec<((u16, u16), u64)> = self
            .dirty
            .iter()
            .map(|key| (*key, self.today.get(key).copied().unwrap_or(0)))
            .collect();
        today.sort_unstable();
        self.mark_clean();
        Ok(StalenessDelta { today })
    }

    /// Dirty entries accumulated since the last snapshot, or `None` when
    /// the next snapshot must be full.
    pub fn dirty_entries(&self) -> Option<usize> {
        if self.dirty_all {
            None
        } else {
            Some(self.dirty.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleDomain, RuleSetBuilder};
    use haystack_dns::DomainName;
    use haystack_net::ports::Proto;
    use haystack_net::{AnonId, HourBin, Prefix4};
    use haystack_testbed::catalog::DetectionLevel;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 13, last)
    }

    fn ruleset() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.rule(
            "Cam",
            DetectionLevel::Manufacturer,
            None,
            vec![
                RuleDomain {
                    name: DomainName::parse("api.cam.com").unwrap(),
                    ports: [443u16].into_iter().collect(),
                    ips: [ip(1)].into_iter().collect(),
                    usage_indicator: false,
                },
                RuleDomain {
                    name: DomainName::parse("upload.cam.com").unwrap(),
                    ports: [443u16].into_iter().collect(),
                    ips: [ip(2)].into_iter().collect(),
                    usage_indicator: false,
                },
            ],
        );
        b.build()
    }

    fn rec(dst: Ipv4Addr, packets: u64) -> WildRecord {
        let src = Ipv4Addr::new(100, 64, 0, 1);
        WildRecord {
            line: AnonId(1),
            line_slash24: Prefix4::slash24_of(src),
            src_ip: src,
            dst,
            dport: 443,
            proto: Proto::Tcp,
            packets,
            bytes: packets * 400,
            established: true,
            hour: HourBin(0),
        }
    }

    #[test]
    fn healthy_rules_stay_quiet_then_migration_is_flagged() {
        let rules = ruleset();
        let hl = || HitList::whole_window(&rules);
        let mut mon = StalenessMonitor::new(hl());
        // 6 healthy days: both domains see traffic.
        for day in 0..6u32 {
            for _ in 0..50 {
                mon.observe(&rec(ip(1), 3));
                mon.observe(&rec(ip(2), 2));
            }
            let v = mon.end_of_day(&rules, hl(), DayBin(day));
            assert!(v.is_empty(), "day {day} flagged {v:?}");
        }
        // The vendor migrates upload.cam.com away: its IP goes silent.
        for _ in 0..50 {
            mon.observe(&rec(ip(1), 3));
        }
        let v = mon.end_of_day(&rules, hl(), DayBin(6));
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].domain, "upload.cam.com");
        assert_eq!(v[0].today, 0);
        assert!(v[0].baseline > 50.0);
    }

    #[test]
    fn warmup_suppresses_early_verdicts() {
        let rules = ruleset();
        let hl = || HitList::whole_window(&rules);
        let mut mon = StalenessMonitor::new(hl());
        // Day 1 busy, day 2 silent — still inside warm-up: no verdict.
        for _ in 0..50 {
            mon.observe(&rec(ip(1), 5));
        }
        assert!(mon.end_of_day(&rules, hl(), DayBin(0)).is_empty());
        assert!(mon.end_of_day(&rules, hl(), DayBin(1)).is_empty());
    }

    #[test]
    fn full_plus_delta_chain_reconstructs_today() {
        let rules = ruleset();
        let hl = || HitList::whole_window(&rules);
        let mut mon = StalenessMonitor::new(hl());
        // Fresh monitor: no clean base yet → full.
        mon.observe(&rec(ip(1), 3));
        assert_eq!(mon.dirty_entries(), None);
        let base = match mon.take_snapshot_delta() {
            Err(full) => full,
            Ok(_) => panic!("fresh monitor must snapshot full"),
        };
        // Two mutations on distinct keys → a 2-entry delta.
        mon.observe(&rec(ip(1), 4));
        mon.observe(&rec(ip(2), 9));
        assert_eq!(mon.dirty_entries(), Some(2));
        let delta = mon.take_snapshot_delta().expect("clean base exists");
        assert_eq!(delta.entry_count(), 2);
        assert_eq!(mon.dirty_entries(), Some(0));
        // base + delta reconstructs the live state exactly.
        let mut chained = base.clone();
        delta.apply(&mut chained);
        assert_eq!(chained, mon.export_state());
        // A day fold rewrites baselines → next snapshot is full again.
        mon.end_of_day(&rules, hl(), DayBin(0));
        assert_eq!(mon.dirty_entries(), None);
        assert!(mon.take_snapshot_delta().is_err());
    }

    #[test]
    fn low_volume_domains_never_flagged() {
        // A domain averaging < 10 packets/day has no usable baseline —
        // silence is expected under sampling, not staleness.
        let rules = ruleset();
        let hl = || HitList::whole_window(&rules);
        let mut mon = StalenessMonitor::new(hl());
        for day in 0..10u32 {
            if day % 3 == 0 {
                mon.observe(&rec(ip(2), 1));
            }
            mon.observe(&rec(ip(1), 200));
            let v = mon.end_of_day(&rules, hl(), DayBin(day));
            assert!(
                v.iter().all(|s| s.domain != "upload.cam.com"),
                "sparse domain misflagged on day {day}"
            );
        }
    }
}
