//! Property tests for the signature-pack codec (DESIGN.md §14).
//!
//! The invariant the external rule layer rests on: **export → load ≡
//! identity**. For any generated rule set, sealing it into a pack frame
//! and loading it back must reproduce the rule set exactly — class
//! names, hierarchy, domain evidence, the undetectable list, and the
//! packed threshold — and a detector built from the loaded rules must
//! produce *byte-identical* detections to one built from the in-process
//! rules, at every feed chunking.

use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::pack::SignaturePack;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder, Undetectable};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_testbed::catalog::DetectionLevel;
use haystack_wild::WildRecord;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// A fixed class-name universe keeps generated rule sets comparable.
const CLASSES: [&str; 4] = ["R0", "R1", "R2", "R3"];
/// Small shared pools so rules overlap on IPs — the multi-entry case.
const PORTS: [u16; 2] = [443, 8883];
const LEVELS: [DetectionLevel; 3] =
    [DetectionLevel::Platform, DetectionLevel::Manufacturer, DetectionLevel::Product];

fn pool_ip(idx: u8) -> Ipv4Addr {
    Ipv4Addr::new(198, 18, 21, idx % 8)
}

/// One generated domain: (ip pool index, port pool index, usage flag).
type DomainSpec = (u8, u8, bool);
/// One generated rule: (level pick, parent pick, domains).
type RuleSpec = (u8, u8, Vec<DomainSpec>);

fn build_rules(specs: &[RuleSpec], undetectable: &[(u8, bool)]) -> RuleSet {
    let mut b = RuleSetBuilder::new();
    for (ri, (level, parent, domains)) in specs.iter().enumerate() {
        // Parents link strictly backwards so the hierarchy never dangles.
        let parent = if ri > 0 && *parent as usize % (ri + 1) != ri {
            Some(CLASSES[*parent as usize % ri])
        } else {
            None
        };
        b.rule(
            CLASSES[ri],
            LEVELS[*level as usize % LEVELS.len()],
            parent,
            domains
                .iter()
                .enumerate()
                .map(|(di, &(ip, port, usage_indicator))| RuleDomain {
                    name: DomainName::parse(&format!("d{di}.r{ri}.example")).unwrap(),
                    ports: [PORTS[port as usize % PORTS.len()]].into_iter().collect(),
                    ips: [pool_ip(ip)].into_iter().collect(),
                    usage_indicator,
                })
                .collect(),
        );
    }
    for (i, &(pick, shared)) in undetectable.iter().enumerate() {
        let reason = if shared {
            Undetectable::SharedInfrastructure
        } else {
            Undetectable::InsufficientInfo
        };
        b.undetectable(&format!("Hidden{}{}", i, pick), reason);
    }
    b.build()
}

/// One generated record: (line, ip idx, port idx, packets, hour).
type RecordSpec = (u64, u8, u8, u64, u32);

fn build_record(&(line, ip, port, packets, hour): &RecordSpec) -> WildRecord {
    let src = Ipv4Addr::new(100, 64, 0, line as u8);
    WildRecord {
        line: AnonId(line),
        line_slash24: Prefix4::slash24_of(src),
        src_ip: src,
        dst: pool_ip(ip),
        dport: PORTS[port as usize % PORTS.len()],
        proto: Proto::Tcp,
        packets,
        bytes: packets * 500,
        established: true,
        hour: HourBin(hour),
    }
}

fn rules_strategy() -> impl Strategy<Value = Vec<RuleSpec>> {
    prop::collection::vec(
        (0u8..3, 0u8..4, prop::collection::vec((0u8..8, 0u8..2, any::<bool>()), 1..4)),
        1..=4,
    )
}

fn record_strategy() -> impl Strategy<Value = Vec<RecordSpec>> {
    prop::collection::vec((0u64..6, 0u8..8, 0u8..2, 1u64..30, 0u32..48), 0..120)
}

/// Serialize every class's detections + confidences as one string —
/// "byte-identical detections" compares these byte-for-byte.
fn detection_bytes(rules: &RuleSet, det: &mut Detector) -> String {
    let mut out = String::new();
    for rule in &rules.rules {
        let class = rules.class_name(rule.class);
        out.push_str(class);
        for line in det.detected_lines(class) {
            out.push_str(&format!("\t{}:{:.17}", line.0, det.confidence(line, class)));
        }
        out.push('\n');
    }
    out
}

proptest! {
    /// Export → load reproduces the rule set exactly: the interned class
    /// table, rule order, hierarchy, domain evidence, the undetectable
    /// list, and the pack metadata.
    #[test]
    fn pack_export_load_is_identity(
        specs in rules_strategy(),
        undet in prop::collection::vec((0u8..4, any::<bool>()), 0..3),
        threshold in 0.1f64..1.0,
    ) {
        let rules = build_rules(&specs, &undet);
        let pack = SignaturePack {
            rules: rules.clone(),
            threshold,
            source: "proptest".to_string(),
            comment: "round trip".to_string(),
        };
        let loaded = SignaturePack::load(&pack.encode()).expect("own pack loads");

        prop_assert_eq!(loaded.threshold.to_bits(), threshold.to_bits());
        prop_assert_eq!(&loaded.source, "proptest");
        prop_assert_eq!(&loaded.comment, "round trip");
        prop_assert_eq!(loaded.rules.rules.len(), rules.rules.len());
        for (a, b) in rules.rules.iter().zip(&loaded.rules.rules) {
            prop_assert_eq!(rules.class_name(a.class), loaded.rules.class_name(b.class));
            prop_assert_eq!(a.level, b.level);
            prop_assert_eq!(
                a.parent.map(|p| rules.class_name(p)),
                b.parent.map(|p| loaded.rules.class_name(p))
            );
            prop_assert_eq!(&a.domains, &b.domains);
        }
        prop_assert_eq!(rules.undetectable.len(), loaded.rules.undetectable.len());
        for ((ca, ra), (cb, rb)) in rules.undetectable.iter().zip(&loaded.rules.undetectable) {
            prop_assert_eq!(rules.class_name(*ca), loaded.rules.class_name(*cb));
            prop_assert_eq!(ra, rb);
        }
        // A second seal of the loaded pack is byte-identical — the
        // canonical frame is stable, which is what lets the serve
        // checkpoint embed and re-embed it.
        prop_assert_eq!(pack.encode(), loaded.encode());
    }

    /// A detector built from the loaded pack produces byte-identical
    /// detections to one built from the in-process rule set, at every
    /// feed chunking.
    #[test]
    fn loaded_pack_detections_match_in_process_across_chunk_sizes(
        specs in rules_strategy(),
        records in record_strategy(),
        threshold_pick in 0usize..3,
    ) {
        let rules = build_rules(&specs, &[]);
        let threshold = [0.3f64, 0.5, 0.9][threshold_pick];
        let config = DetectorConfig { threshold, require_established: false };
        let records: Vec<WildRecord> = records.iter().map(build_record).collect();

        let mut native = Detector::new(&rules, HitList::whole_window(&rules), config);
        for r in &records {
            native.observe_wild(r);
        }
        let want = detection_bytes(&rules, &mut native);

        let pack = SignaturePack {
            rules: rules.clone(),
            threshold,
            source: String::new(),
            comment: String::new(),
        };
        let loaded = SignaturePack::load(&pack.encode()).expect("own pack loads").rules;
        for chunk in [1usize, 7, usize::MAX] {
            let mut det = Detector::new(&loaded, HitList::whole_window(&loaded), config);
            for batch in records.chunks(chunk.min(records.len().max(1))) {
                for r in batch {
                    det.observe_wild(r);
                }
            }
            prop_assert_eq!(
                &detection_bytes(&loaded, &mut det),
                &want,
                "detections diverge at chunk {}", chunk
            );
        }
    }
}
