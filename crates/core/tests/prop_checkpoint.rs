//! Property tests for crash-safe checkpoint/restore (DESIGN.md §12).
//!
//! The invariant the whole subsystem rests on: **snapshot → restore →
//! continue ≡ uninterrupted**. For any rule set, any record feed, and
//! any split point, exporting a component's state, decoding it from its
//! sealed frame, restoring into a *fresh* instance, and feeding the
//! remaining records must land in exactly the state of an instance that
//! saw the whole feed — detections, active lines, and (for the
//! staleness monitor) bit-identical `f64` baselines, since the codec
//! carries floats as raw IEEE-754 bits and restore must not re-order
//! the decay folds.

use haystack_core::checkpoint::{
    DetectorSnapshot, DetectorState, StalenessState, UsageDelta, UsageState,
};
use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_core::staleness::StalenessMonitor;
use haystack_core::usage::{UsageConfig, UsageTracker};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, DayBin, HourBin, Prefix4};
use haystack_testbed::catalog::DetectionLevel;
use haystack_wild::WildRecord;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// A fixed class-name universe keeps generated rule sets comparable.
const CLASSES: [&str; 3] = ["R0", "R1", "R2"];
/// Small shared pools so rules overlap on IPs — the multi-entry case.
const PORTS: [u16; 2] = [443, 8883];

fn pool_ip(idx: u8) -> Ipv4Addr {
    Ipv4Addr::new(198, 18, 21, idx % 8)
}

/// One generated domain: (ip pool index, port pool index, usage flag).
type DomainSpec = (u8, u8, bool);

fn build_rules(specs: &[Vec<DomainSpec>]) -> RuleSet {
    let mut b = RuleSetBuilder::new();
    for (ri, domains) in specs.iter().enumerate() {
        b.rule(
            CLASSES[ri],
            DetectionLevel::Manufacturer,
            None,
            domains
                .iter()
                .enumerate()
                .map(|(di, &(ip, port, usage_indicator))| RuleDomain {
                    name: DomainName::parse(&format!("d{di}.r{ri}.example")).unwrap(),
                    ports: [PORTS[port as usize % PORTS.len()]].into_iter().collect(),
                    ips: [pool_ip(ip)].into_iter().collect(),
                    usage_indicator,
                })
                .collect(),
        );
    }
    b.build()
}

/// One generated record: (line, ip idx, port idx, packets, hour).
type RecordSpec = (u64, u8, u8, u64, u32);

fn build_record(&(line, ip, port, packets, hour): &RecordSpec) -> WildRecord {
    let src = Ipv4Addr::new(100, 64, 0, line as u8);
    WildRecord {
        line: AnonId(line),
        line_slash24: Prefix4::slash24_of(src),
        src_ip: src,
        dst: pool_ip(ip),
        dport: PORTS[port as usize % PORTS.len()],
        proto: Proto::Tcp,
        packets,
        bytes: packets * 500,
        established: true,
        hour: HourBin(hour),
    }
}

fn record_strategy() -> impl Strategy<Value = Vec<RecordSpec>> {
    prop::collection::vec((0u64..6, 0u8..8, 0u8..2, 1u64..30, 0u32..48), 0..120)
}

fn rules_strategy() -> impl Strategy<Value = Vec<Vec<DomainSpec>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..8, 0u8..2, any::<bool>()), 1..4),
        1..=3,
    )
}

proptest! {
    /// Detector: snapshot at any split, round-trip the frame bytes,
    /// restore into a fresh detector, continue — equals uninterrupted.
    #[test]
    fn detector_snapshot_restore_continue_equals_uninterrupted(
        specs in rules_strategy(),
        records in record_strategy(),
        split_frac in 0.0f64..=1.0,
        threshold_pick in 0usize..3,
    ) {
        let rules = build_rules(&specs);
        let threshold = [0.3f64, 0.5, 0.9][threshold_pick];
        let config = DetectorConfig { threshold, require_established: false };
        let records: Vec<WildRecord> = records.iter().map(build_record).collect();
        let split = ((records.len() as f64) * split_frac) as usize;

        let mut whole = Detector::new(&rules, HitList::whole_window(&rules), config);
        for r in &records {
            whole.observe_wild(r);
        }

        let mut first = Detector::new(&rules, HitList::whole_window(&rules), config);
        for r in &records[..split] {
            first.observe_wild(r);
        }
        // Through the sealed frame, as the checkpoint file would.
        let frame = first.export_state().encode();
        let state = DetectorState::decode(&frame).expect("own frame decodes");
        let mut resumed = Detector::new(&rules, HitList::whole_window(&rules), config);
        resumed.restore_state(&state).expect("same rule count");
        for r in &records[split..] {
            resumed.observe_wild(r);
        }

        prop_assert_eq!(resumed.export_state(), whole.export_state());
        for rule in &rules.rules {
            let class = rules.class_name(rule.class);
            prop_assert_eq!(
                resumed.detected_lines(class),
                whole.detected_lines(class),
                "class {} diverges after restore", class
            );
        }
        prop_assert_eq!(resumed.state_size(), whole.state_size());
    }

    /// UsageTracker: the same invariant over the hour window.
    #[test]
    fn usage_snapshot_restore_continue_equals_uninterrupted(
        specs in rules_strategy(),
        records in record_strategy(),
        split_frac in 0.0f64..=1.0,
        threshold in 1u64..40,
    ) {
        let rules = build_rules(&specs);
        let config = UsageConfig { packet_threshold: threshold };
        let records: Vec<WildRecord> = records.iter().map(build_record).collect();
        let split = ((records.len() as f64) * split_frac) as usize;

        let rules = std::sync::Arc::new(rules);
        let mut whole = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        for r in &records {
            whole.observe(r);
        }

        let mut first = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        for r in &records[..split] {
            first.observe(r);
        }
        let frame = first.export_state().encode();
        let state = UsageState::decode(&frame).expect("own frame decodes");
        let mut resumed = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        resumed.restore_state(&state).expect("same rule count");
        for r in &records[split..] {
            resumed.observe(r);
        }

        prop_assert_eq!(resumed.export_state(), whole.export_state());
        for rule in &rules.rules {
            let class = rules.class_name(rule.class);
            prop_assert_eq!(
                resumed.active_lines(class),
                whole.active_lines(class),
                "class {} diverges after restore", class
            );
        }
    }

    /// StalenessMonitor: multi-day feed with a snapshot at an arbitrary
    /// (day, position) point. Baselines are decayed `f64` folds — the
    /// restored monitor must continue from **bit-identical** values, so
    /// the states are compared exactly (raw-bits equality via
    /// `StalenessState`'s `PartialEq`), not approximately.
    #[test]
    fn staleness_snapshot_restore_is_bitwise_identical(
        specs in rules_strategy(),
        days in prop::collection::vec(record_strategy(), 1..4),
        split_day in 0usize..4,
        split_frac in 0.0f64..=1.0,
    ) {
        let rules = build_rules(&specs);
        let split_day = split_day.min(days.len() - 1);

        let run = |snapshot_at: Option<(usize, usize)>| -> StalenessState {
            let mut mon = StalenessMonitor::new(HitList::whole_window(&rules));
            let mut resumed: Option<StalenessMonitor> = None;
            for (d, day_specs) in days.iter().enumerate() {
                for (i, spec) in day_specs.iter().enumerate() {
                    let r = build_record(spec);
                    if let Some(m) = &mut resumed {
                        m.observe(&r);
                    } else {
                        mon.observe(&r);
                    }
                    if snapshot_at == Some((d, i)) {
                        // Through the sealed frame, into a fresh monitor.
                        let frame = mon.export_state().encode();
                        let state = StalenessState::decode(&frame).expect("own frame");
                        let mut m = StalenessMonitor::new(HitList::whole_window(&rules));
                        m.restore_state(&state);
                        resumed = Some(m);
                    }
                }
                let m = resumed.as_mut().unwrap_or(&mut mon);
                m.end_of_day(&rules, HitList::whole_window(&rules), DayBin(d as u32));
            }
            resumed.unwrap_or(mon).export_state()
        };

        let split = days[split_day]
            .len()
            .saturating_sub(1)
            .min(((days[split_day].len() as f64) * split_frac) as usize);
        let uninterrupted = run(None);
        if days[split_day].is_empty() {
            // No record to hook the snapshot on — nothing to compare.
            return Ok(());
        }
        let resumed = run(Some((split_day, split)));
        prop_assert_eq!(resumed, uninterrupted);
    }

    /// Detector delta chains: snapshot at arbitrary cut points (first
    /// full, then dirty-only deltas), replay the chain through sealed
    /// frame bytes — the reconstruction is **byte-identical** to a full
    /// snapshot taken at the same point, and a detector restored from it
    /// continues ≡ uninterrupted.
    #[test]
    fn detector_delta_chain_equals_full_snapshot_at_same_point(
        specs in rules_strategy(),
        records in record_strategy(),
        cut_fracs in prop::collection::vec(0.0f64..=1.0, 1..5),
        threshold_pick in 0usize..3,
    ) {
        let rules = build_rules(&specs);
        let threshold = [0.3f64, 0.5, 0.9][threshold_pick];
        let config = DetectorConfig { threshold, require_established: false };
        let records: Vec<WildRecord> = records.iter().map(build_record).collect();
        let mut cuts: Vec<usize> =
            cut_fracs.iter().map(|f| ((records.len() as f64) * f) as usize).collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut live = Detector::new(&rules, HitList::whole_window(&rules), config);
        let mut chained: Option<DetectorState> = None;
        let mut fed = 0usize;
        for &cut in &cuts {
            for r in &records[fed..cut] {
                live.observe_wild(r);
            }
            fed = cut;
            // Through the sealed frame, as the delta file would.
            let frame = live.take_snapshot_delta().encode();
            let snap = DetectorSnapshot::decode(&frame).expect("own frame decodes");
            match &mut chained {
                None => {
                    prop_assert!(snap.is_full(), "a fresh detector snapshots full");
                    let DetectorSnapshot::Full(s) = snap else { unreachable!() };
                    chained = Some(s);
                }
                Some(base) => snap.apply_to(base).expect("chain applies"),
            }
        }
        let chained = chained.expect("at least one cut");

        // Byte-identical to a full snapshot at the last cut point.
        let mut oracle = Detector::new(&rules, HitList::whole_window(&rules), config);
        for r in &records[..fed] {
            oracle.observe_wild(r);
        }
        prop_assert_eq!(chained.encode(), oracle.export_state().encode());

        // Continuing from the chain ≡ uninterrupted.
        let mut resumed = Detector::new(&rules, HitList::whole_window(&rules), config);
        resumed.restore_state(&chained).expect("same rule count");
        for r in &records[fed..] {
            resumed.observe_wild(r);
        }
        let mut whole = Detector::new(&rules, HitList::whole_window(&rules), config);
        for r in &records {
            whole.observe_wild(r);
        }
        prop_assert_eq!(resumed.export_state(), whole.export_state());
        for rule in &rules.rules {
            let class = rules.class_name(rule.class);
            prop_assert_eq!(
                resumed.detected_lines(class),
                whole.detected_lines(class),
                "class {} diverges after chain restore", class
            );
        }
    }

    /// UsageTracker delta chains: same invariant over the hour window.
    #[test]
    fn usage_delta_chain_equals_full_snapshot_at_same_point(
        specs in rules_strategy(),
        records in record_strategy(),
        cut_fracs in prop::collection::vec(0.0f64..=1.0, 1..5),
        threshold in 1u64..40,
    ) {
        let rules = std::sync::Arc::new(build_rules(&specs));
        let config = UsageConfig { packet_threshold: threshold };
        let records: Vec<WildRecord> = records.iter().map(build_record).collect();
        let mut cuts: Vec<usize> =
            cut_fracs.iter().map(|f| ((records.len() as f64) * f) as usize).collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut live = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        let mut chained: Option<UsageState> = None;
        let mut fed = 0usize;
        for &cut in &cuts {
            for r in &records[fed..cut] {
                live.observe(r);
            }
            fed = cut;
            match live.take_snapshot_delta() {
                Err(full) => {
                    prop_assert!(chained.is_none(), "full only at the chain head");
                    chained = Some(UsageState::decode(&full.encode()).expect("own frame"));
                }
                Ok(delta) => {
                    let delta = UsageDelta::decode(&delta.encode()).expect("own frame");
                    delta.apply(chained.as_mut().expect("delta follows a full")).expect("applies");
                }
            }
        }
        let chained = chained.expect("at least one cut");

        let mut oracle = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        for r in &records[..fed] {
            oracle.observe(r);
        }
        prop_assert_eq!(chained.encode(), oracle.export_state().encode());

        let mut resumed = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        resumed.restore_state(&chained).expect("same rule count");
        for r in &records[fed..] {
            resumed.observe(r);
        }
        let mut whole = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        for r in &records {
            whole.observe(r);
        }
        prop_assert_eq!(resumed.export_state(), whole.export_state());
        for rule in &rules.rules {
            let class = rules.class_name(rule.class);
            prop_assert_eq!(
                resumed.active_lines(class),
                whole.active_lines(class),
                "class {} diverges after chain restore", class
            );
        }
    }

    /// StalenessMonitor delta chains within one day (the day fold
    /// rewrites every baseline, forcing the next snapshot full — so a
    /// chain never spans it): byte-identical reconstruction, and the
    /// post-fold baselines of a chain-restored monitor are bit-identical
    /// to the uninterrupted run's.
    #[test]
    fn staleness_delta_chain_equals_full_snapshot_at_same_point(
        specs in rules_strategy(),
        records in record_strategy(),
        cut_fracs in prop::collection::vec(0.0f64..=1.0, 1..5),
    ) {
        let rules = build_rules(&specs);
        let records: Vec<WildRecord> = records.iter().map(build_record).collect();
        let mut cuts: Vec<usize> =
            cut_fracs.iter().map(|f| ((records.len() as f64) * f) as usize).collect();
        cuts.sort_unstable();
        cuts.dedup();

        let mut live = StalenessMonitor::new(HitList::whole_window(&rules));
        let mut chained: Option<StalenessState> = None;
        let mut fed = 0usize;
        for &cut in &cuts {
            for r in &records[fed..cut] {
                live.observe(r);
            }
            fed = cut;
            match live.take_snapshot_delta() {
                Err(full) => {
                    prop_assert!(chained.is_none(), "full only at the chain head");
                    chained = Some(StalenessState::decode(&full.encode()).expect("own frame"));
                }
                Ok(delta) => {
                    let delta = haystack_core::StalenessDelta::decode(&delta.encode())
                        .expect("own frame");
                    delta.apply(chained.as_mut().expect("delta follows a full"));
                }
            }
        }
        let chained = chained.expect("at least one cut");

        let mut oracle = StalenessMonitor::new(HitList::whole_window(&rules));
        for r in &records[..fed] {
            oracle.observe(r);
        }
        prop_assert_eq!(chained.encode(), oracle.export_state().encode());

        let mut resumed = StalenessMonitor::new(HitList::whole_window(&rules));
        resumed.restore_state(&chained);
        for r in &records[fed..] {
            resumed.observe(r);
        }
        resumed.end_of_day(&rules, HitList::whole_window(&rules), DayBin(0));
        let mut whole = StalenessMonitor::new(HitList::whole_window(&rules));
        for r in &records {
            whole.observe(r);
        }
        whole.end_of_day(&rules, HitList::whole_window(&rules), DayBin(0));
        prop_assert_eq!(resumed.export_state(), whole.export_state());
    }
}
