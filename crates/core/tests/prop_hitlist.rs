//! Property tests for the hitlist: whatever the rule set looks like, the
//! (IP, port) index must agree exactly with the rules it was built from.

use haystack_core::hitlist::HitList;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_dns::DomainName;
use haystack_testbed::catalog::DetectionLevel;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
struct DomainSpec {
    ips: BTreeSet<Ipv4Addr>,
    ports: BTreeSet<u16>,
}

fn arb_domain() -> impl Strategy<Value = DomainSpec> {
    (
        prop::collection::btree_set(1u8..250, 1..6),
        prop::collection::btree_set(
            prop_oneof![Just(443u16), Just(80), Just(8883), Just(123)],
            1..3,
        ),
    )
        .prop_map(|(last_octets, ports)| DomainSpec {
            ips: last_octets.into_iter().map(|o| Ipv4Addr::new(198, 18, 11, o)).collect(),
            ports,
        })
}

fn ruleset(domains_per_rule: &[Vec<DomainSpec>]) -> RuleSet {
    let classes: &[&str] = &["C0", "C1", "C2", "C3", "C4", "C5"];
    let mut b = RuleSetBuilder::new();
    for (ri, specs) in domains_per_rule.iter().enumerate() {
        b.rule(
            classes[ri],
            DetectionLevel::Manufacturer,
            None,
            specs
                .iter()
                .enumerate()
                .map(|(di, s)| RuleDomain {
                    name: DomainName::parse(&format!("d{di}.c{ri}.com")).unwrap(),
                    ports: s.ports.clone(),
                    ips: s.ips.clone(),
                    usage_indicator: false,
                })
                .collect(),
        );
    }
    b.build()
}

proptest! {
    #[test]
    fn whole_window_index_is_exact(
        rules in prop::collection::vec(prop::collection::vec(arb_domain(), 1..5), 1..6),
    ) {
        let rs = ruleset(&rules);
        let hl = HitList::whole_window(&rs);
        // Soundness + completeness: lookup(ip, port) contains (r, d) iff
        // rule r's domain d lists that combination.
        for (ri, rule) in rs.rules.iter().enumerate() {
            for (di, dom) in rule.domains.iter().enumerate() {
                for ip in &dom.ips {
                    for port in &dom.ports {
                        prop_assert!(
                            hl.lookup(*ip, *port).contains(&(ri as u16, di as u16)),
                            "missing entry for {ip}:{port}"
                        );
                    }
                }
            }
        }
        // No phantom entries.
        for o in 1u8..250 {
            let ip = Ipv4Addr::new(198, 18, 11, o);
            for port in [443u16, 80, 8883, 123] {
                for &(ri, di) in hl.lookup(ip, port) {
                    let dom = &rs.rules[ri as usize].domains[di as usize];
                    prop_assert!(dom.ips.contains(&ip) && dom.ports.contains(&port));
                }
            }
        }
    }

    #[test]
    fn unindexed_lookups_are_empty(
        rules in prop::collection::vec(prop::collection::vec(arb_domain(), 1..4), 1..4),
        probe_ip in any::<u32>(),
        probe_port in any::<u16>(),
    ) {
        let rs = ruleset(&rules);
        let hl = HitList::whole_window(&rs);
        let ip = Ipv4Addr::from(probe_ip);
        let in_rules = rs.rules.iter().any(|r| {
            r.domains.iter().any(|d| d.ips.contains(&ip) && d.ports.contains(&probe_port))
        });
        prop_assert_eq!(!hl.lookup(ip, probe_port).is_empty(), in_rules);
    }
}
