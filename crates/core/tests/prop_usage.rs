//! Property tests for the §7.1 usage tracker and the §7.3 staleness
//! monitor against naive per-(line, rule) reference models.
//!
//! Both production types share the hitlist index and in-place iteration
//! tricks of the detector hot path; the references here do none of that
//! — they scan every rule domain per record with plain set membership —
//! so any disagreement is a bug in the indexed fast path.

use haystack_core::hitlist::HitList;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_core::staleness::{StaleDomain, StalenessMonitor};
use haystack_core::usage::{UsageConfig, UsageTracker};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, DayBin, HourBin, Prefix4};
use haystack_testbed::catalog::DetectionLevel;
use haystack_wild::WildRecord;
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

/// A fixed class-name universe keeps generated rule sets comparable.
const CLASSES: [&str; 3] = ["R0", "R1", "R2"];
/// Small shared pools so rules overlap on IPs and ports — the
/// interesting case for the multi-entry hitlist lookups.
const PORTS: [u16; 2] = [443, 8883];

fn pool_ip(idx: u8) -> Ipv4Addr {
    Ipv4Addr::new(198, 18, 9, idx % 8)
}

/// One generated domain: (ip pool index, port pool index, usage flag).
type DomainSpec = (u8, u8, bool);

fn build_rules(specs: &[Vec<DomainSpec>]) -> RuleSet {
    let mut b = RuleSetBuilder::new();
    for (ri, domains) in specs.iter().enumerate() {
        b.rule(
            CLASSES[ri],
            DetectionLevel::Manufacturer,
            None,
            domains
                .iter()
                .enumerate()
                .map(|(di, &(ip, port, usage_indicator))| RuleDomain {
                    name: DomainName::parse(&format!("d{di}.r{ri}.example")).unwrap(),
                    ports: [PORTS[port as usize % PORTS.len()]].into_iter().collect(),
                    ips: [pool_ip(ip)].into_iter().collect(),
                    usage_indicator,
                })
                .collect(),
        );
    }
    b.build()
}

/// One generated record: (line, ip pool index, port pool index, packets).
type RecordSpec = (u64, u8, u8, u64);

fn build_record(&(line, ip, port, packets): &RecordSpec) -> WildRecord {
    let src = Ipv4Addr::new(100, 64, 0, line as u8);
    WildRecord {
        line: AnonId(line),
        line_slash24: Prefix4::slash24_of(src),
        src_ip: src,
        dst: pool_ip(ip),
        dport: PORTS[port as usize % PORTS.len()],
        proto: Proto::Tcp,
        packets,
        bytes: packets * 500,
        established: true,
        hour: HourBin(0),
    }
}

/// The reference: full scan of every rule domain per record.
fn matching_domains<'r>(
    rules: &'r RuleSet,
    r: &WildRecord,
) -> impl Iterator<Item = (usize, usize)> + 'r {
    let (dst, dport) = (r.dst, r.dport);
    rules.rules.iter().enumerate().flat_map(move |(ri, rule)| {
        rule.domains
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.ips.contains(&dst) && d.ports.contains(&dport))
            .map(move |(di, _)| (ri, di))
    })
}

proptest! {
    /// The tracker's active-lines verdicts equal a naive per-(line, rule)
    /// packet-sum / indicator-set model, and its hot-stats tallies equal
    /// the reference match counts.
    #[test]
    fn usage_tracker_matches_reference(
        specs in prop::collection::vec(
            prop::collection::vec((0u8..8, 0u8..2, any::<bool>()), 1..4),
            1..=3,
        ),
        records in prop::collection::vec((0u64..6, 0u8..8, 0u8..2, 1u64..30), 0..80),
        threshold in 1u64..40,
    ) {
        let rules = std::sync::Arc::new(build_rules(&specs));
        let mut tracker = UsageTracker::new(
            rules.clone(),
            HitList::whole_window(&rules),
            UsageConfig { packet_threshold: threshold },
        );

        // Reference state: (rule, line) → packets, plus indicator sets.
        let mut packets: BTreeMap<(usize, u64), u64> = BTreeMap::new();
        let mut indicator: BTreeSet<(usize, u64)> = BTreeSet::new();
        let mut ref_matches = 0u64;
        let mut ref_detections = 0u64;
        for spec in &records {
            let r = build_record(spec);
            tracker.observe(&r);
            for (ri, di) in matching_domains(&rules, &r) {
                ref_matches += 1;
                *packets.entry((ri, spec.0)).or_default() += r.packets;
                if rules.rules[ri].domains[di].usage_indicator {
                    ref_detections += 1;
                    indicator.insert((ri, spec.0));
                }
            }
        }

        for (ri, rule) in rules.rules.iter().enumerate() {
            let expected: BTreeSet<AnonId> = (0u64..6)
                .filter(|line| {
                    packets.get(&(ri, *line)).copied().unwrap_or(0) >= threshold
                        || indicator.contains(&(ri, *line))
                })
                .map(AnonId)
                .collect();
            prop_assert_eq!(
                tracker.active_lines(rules.class_name(rule.class)),
                expected,
                "class {} disagrees with the reference",
                rules.class_name(rule.class)
            );
        }

        let stats = tracker.hot_stats();
        prop_assert_eq!(stats.records, records.len() as u64);
        prop_assert_eq!(stats.probes, records.len() as u64);
        prop_assert_eq!(stats.matches, ref_matches);
        prop_assert_eq!(stats.detections, ref_detections);
    }

    /// Resetting at an hour boundary forgets exactly the first hour: the
    /// tracker equals a reference fed only the second hour's records.
    #[test]
    fn usage_reset_isolates_hours(
        specs in prop::collection::vec(
            prop::collection::vec((0u8..8, 0u8..2, any::<bool>()), 1..4),
            1..=2,
        ),
        hour_a in prop::collection::vec((0u64..6, 0u8..8, 0u8..2, 1u64..30), 0..40),
        hour_b in prop::collection::vec((0u64..6, 0u8..8, 0u8..2, 1u64..30), 0..40),
    ) {
        let rules = std::sync::Arc::new(build_rules(&specs));
        let config = UsageConfig::default();
        let mut tracker = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        let mut fresh = UsageTracker::new(rules.clone(), HitList::whole_window(&rules), config);
        for spec in &hour_a {
            tracker.observe(&build_record(spec));
        }
        tracker.reset();
        for spec in &hour_b {
            tracker.observe(&build_record(spec));
            fresh.observe(&build_record(spec));
        }
        for rule in &rules.rules {
            let class = rules.class_name(rule.class);
            prop_assert_eq!(
                tracker.active_lines(class),
                fresh.active_lines(class)
            );
        }
    }

    /// The staleness monitor's verdicts equal a naive reimplementation
    /// that replays the same per-day fold with plain maps — same keys,
    /// same float sequence, so verdicts must match *exactly*.
    #[test]
    fn staleness_matches_reference(
        specs in prop::collection::vec(
            prop::collection::vec((0u8..8, 0u8..2, any::<bool>()), 1..4),
            1..=3,
        ),
        days in prop::collection::vec(
            prop::collection::vec((0u64..6, 0u8..8, 0u8..2, 1u64..200), 0..30),
            1..8,
        ),
    ) {
        const DECAY: f64 = 0.85;
        const STALE_FRACTION: f64 = 0.2;
        const WARMUP_DAYS: u32 = 3;

        let rules = build_rules(&specs);
        let mut monitor = StalenessMonitor::new(HitList::whole_window(&rules));

        // Reference state, keyed like the monitor's internals.
        let mut baseline: BTreeMap<(usize, usize), f64> = BTreeMap::new();
        for (day, day_records) in days.iter().enumerate() {
            let mut today: BTreeMap<(usize, usize), u64> = BTreeMap::new();
            for spec in day_records {
                let r = build_record(spec);
                monitor.observe(&r);
                for key in matching_domains(&rules, &r) {
                    *today.entry(key).or_default() += r.packets;
                }
            }

            let mut expected: Vec<StaleDomain> = Vec::new();
            let days_seen = day as u32 + 1;
            for (ri, rule) in rules.rules.iter().enumerate() {
                for (di, dom) in rule.domains.iter().enumerate() {
                    let t = today.get(&(ri, di)).copied().unwrap_or(0);
                    let b = baseline.entry((ri, di)).or_insert(t as f64);
                    if days_seen > WARMUP_DAYS && *b > 10.0 && (t as f64) < STALE_FRACTION * *b {
                        expected.push(StaleDomain {
                            class: rules.class_name(rule.class).to_string(),
                            domain_index: di,
                            domain: dom.name.as_str().to_string(),
                            baseline: *b,
                            today: t,
                        });
                    }
                    *b = DECAY * *b + (1.0 - DECAY) * t as f64;
                }
            }

            let verdicts =
                monitor.end_of_day(&rules, HitList::whole_window(&rules), DayBin(day as u32));
            prop_assert_eq!(verdicts, expected, "day {} verdicts diverged", day);
            prop_assert_eq!(monitor.days_seen(), days_seen);
        }
    }
}
