//! Property tests for rule semantics: the §4.3.2 evidence formula and the
//! hierarchy-aware domain assignment.

use haystack_core::classes::ClassId;
use haystack_core::rules::{common_ancestor, DetectionRule, RuleDomain};
use haystack_dns::DomainName;
use haystack_testbed::catalog::data::standard_catalog;
use haystack_testbed::catalog::DetectionLevel;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn rule_with(n: usize) -> DetectionRule {
    DetectionRule {
        class: ClassId(0),
        level: DetectionLevel::Manufacturer,
        parent: None,
        domains: (0..n)
            .map(|i| RuleDomain {
                name: DomainName::parse(&format!("d{i}.x.com")).unwrap(),
                ports: [443u16].into_iter().collect(),
                ips: Default::default(),
                usage_indicator: false,
            })
            .collect(),
    }
}

proptest! {
    /// `required` is max(1, ⌊D·N⌋): bounded by [1, N], monotone in D, and
    /// exactly the paper's formula.
    #[test]
    fn required_matches_the_formula(n in 1usize..70, d1 in 0.0f64..=1.0, d2 in 0.0f64..=1.0) {
        let rule = rule_with(n);
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        let r_lo = rule.required(lo);
        let r_hi = rule.required(hi);
        prop_assert!(r_lo >= 1 && r_lo <= n);
        prop_assert!(r_lo <= r_hi, "monotonicity: D={lo} needs {r_lo}, D={hi} needs {r_hi}");
        prop_assert_eq!(r_lo, ((lo * n as f64).floor() as usize).max(1));
    }

    /// The common ancestor of any class set from one hierarchy is the
    /// shallowest member present; unrelated mixes have none.
    #[test]
    fn common_ancestor_semantics(pick in prop::collection::vec(0usize..3, 1..4), outsider in any::<bool>()) {
        let catalog = standard_catalog();
        let chain = ["Fire TV", "Amazon Product", "Alexa Enabled"];
        let mut classes: BTreeSet<&'static str> =
            pick.iter().map(|i| chain[*i]).collect();
        if outsider {
            classes.insert("Yi Camera");
            prop_assert_eq!(common_ancestor(&catalog, &classes), None);
        } else {
            // Expected: the *shallowest* picked class (closest to the root).
            let expected = chain
                .iter()
                .rev() // root-most first
                .find(|c| classes.contains(**c))
                .copied()
                .unwrap();
            prop_assert_eq!(common_ancestor(&catalog, &classes), Some(expected));
        }
    }
}
