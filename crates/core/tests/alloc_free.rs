//! Zero-allocation pin for the detector hot path.
//!
//! A counting global allocator wraps the system allocator; after warming
//! the detector (every (line, rule) state inserted, hitlist compiled),
//! re-observing the same record stream — the steady state an ISP-scale
//! deployment lives in — must perform **zero** heap allocations. This is
//! the acceptance gate for the `entries.to_vec()` removal: any defensive
//! clone or rehash on the matching path trips the counter.
//!
//! This file deliberately holds exactly one `#[test]`: the counter is
//! process-global, and a concurrently running test would pollute it.

use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::WildRecord;
use std::alloc::{GlobalAlloc, Layout, System};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator with an allocation counter in front.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(198, 18, 50, last)
}

/// Two-level ruleset with enough domains to exercise multi-entry slots.
fn ruleset() -> RuleSet {
    let dom = |ri: usize, di: usize, octets: &[u8]| RuleDomain {
        name: DomainName::parse(&format!("d{di}.r{ri}.test")).unwrap(),
        ports: [443u16].into_iter().collect(),
        ips: octets.iter().map(|o| ip(*o)).collect(),
        usage_indicator: false,
    };
    let mut b = RuleSetBuilder::new();
    // Octet 1 is shared with the child rule: one hitlist key carrying
    // entries for both rules.
    b.rule(
        "Parent",
        haystack_testbed::catalog::DetectionLevel::Manufacturer,
        None,
        vec![dom(0, 0, &[1, 2]), dom(0, 1, &[3]), dom(0, 2, &[4])],
    );
    b.rule(
        "Child",
        haystack_testbed::catalog::DetectionLevel::Product,
        Some("Parent"),
        vec![dom(1, 0, &[1]), dom(1, 1, &[5])],
    );
    b.build()
}

fn stream(lines: u64) -> Vec<WildRecord> {
    let src = Ipv4Addr::new(100, 64, 1, 1);
    let mut out = Vec::new();
    for line in 0..lines {
        for (i, octet) in [1u8, 2, 3, 4, 5, 1].into_iter().enumerate() {
            out.push(WildRecord {
                line: AnonId(line),
                line_slash24: Prefix4::slash24_of(src),
                src_ip: src,
                dst: ip(octet),
                dport: 443,
                proto: Proto::Tcp,
                packets: 1,
                bytes: 80,
                established: true,
                hour: HourBin(i as u32),
            });
        }
    }
    out
}

#[test]
fn steady_state_observe_allocates_nothing() {
    let rules = ruleset();
    let mut det = Detector::new(
        &rules,
        HitList::whole_window(&rules),
        DetectorConfig { threshold: 1.0, require_established: false },
    );
    let records = stream(512);

    // Warm-up: inserts every (line, rule) state the stream will touch
    // (map growth and rehashing happen here, legitimately).
    det.observe_chunk(&records);
    assert!(det.is_detected(AnonId(0), "Child"), "warm-up must fully detect");
    let states = det.state_size();

    // Steady state: identical records, every one down the matching path
    // (hitlist hit + existing state entry). Zero allocations allowed.
    let before = ALLOCS.load(Ordering::Relaxed);
    det.observe_chunk(&records);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state observe of {} records allocated {} times",
        records.len(),
        after - before
    );
    assert_eq!(det.state_size(), states, "steady state must not grow");

    // All-miss steady state: the miss-dominated wild mix, every
    // destination distinct and outside the rule space. The fingerprint
    // gate retires these before any probe — and the struct-of-arrays
    // scratch columns were sized during warm-up, so this pass must
    // also be allocation-free (the batched path's miss lane touches
    // only the fingerprint array and the survivor columns).
    let miss_records: Vec<WildRecord> = (0..4_096u32)
        .map(|i| WildRecord {
            line: AnonId(u64::from(i % 64)),
            line_slash24: Prefix4::slash24_of(Ipv4Addr::new(100, 64, 1, 1)),
            src_ip: Ipv4Addr::new(100, 64, 1, 1),
            dst: Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
            dport: 443,
            proto: Proto::Tcp,
            packets: 1,
            bytes: 80,
            established: true,
            hour: HourBin(0),
        })
        .collect();
    let miss_base = det.hot_stats().prefilter_misses;
    let before = ALLOCS.load(Ordering::Relaxed);
    det.observe_chunk(&miss_records);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "all-miss observe of {} records allocated {} times",
        miss_records.len(),
        after - before
    );
    assert_eq!(det.state_size(), states, "misses must not create state");
    assert!(
        det.hot_stats().prefilter_misses > miss_base,
        "the gate must have retired the miss records"
    );
}
