#![cfg(feature = "telemetry")]
//! Record-conservation invariants under chaos, asserted through the
//! telemetry snapshot alone (DESIGN.md §11): every record entering a
//! stage must be accounted for by the stage's emitted count plus its
//! per-reason drop counters — at 1 %, 5 %, and 20 % loss.
//!
//! * **Wire**: `Exporter → ChaosLink → Collector`;
//!   `records_sent == records_decoded + missed_records`.
//! * **Stream + pool**: `VecStream → DegradeStream → InstrumentedStream
//!   → DetectorPool`; `records_in == records_emitted + records_lost -
//!   records_duplicated`, and the pool's feeder count equals the sum of
//!   the per-shard worker counts.

use haystack_core::detector::DetectorConfig;
use haystack_core::hitlist::HitList;
use haystack_core::parallel::DetectorPool;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_core::telemetry::{self, InstrumentedStream};
use haystack_dns::DomainName;
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::{ChaosConfig, ChaosLink, Collector, FlowKey, FlowRecord, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4, SimTime};
use haystack_testbed::catalog::DetectionLevel;
use haystack_wild::{DegradeStream, RecordChunk, VecStream, WildRecord};
use std::net::Ipv4Addr;

const LOSS_RATES: [f64; 3] = [0.01, 0.05, 0.20];

fn flow_records(n: usize, seed: u64) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed);
            FlowRecord {
                key: FlowKey {
                    src: Ipv4Addr::new(100, 64, (x >> 8) as u8, x as u8),
                    dst: Ipv4Addr::new(198, 18, 0, (x >> 16) as u8),
                    sport: 40_000 + (i % 1_000) as u16,
                    dport: 443,
                    proto: Proto::Tcp,
                },
                packets: 1 + (x % 5),
                bytes: 60 * (1 + (x % 5)),
                tcp_flags: TcpFlags::ACK,
                first: SimTime(i as u64),
                last: SimTime(i as u64 + 30),
            }
        })
        .collect()
}

/// Sequence-gap accounting closes the books exactly: whatever the link
/// did to the datagrams, decoded + missed must equal what was exported.
#[test]
fn wire_records_are_conserved_under_loss() {
    telemetry::set_enabled(true);
    let records = flow_records(6_000, 3);
    for (i, &loss) in LOSS_RATES.iter().enumerate() {
        let scope = telemetry::Scope::named(&format!("cons.wire{i}"));
        let chaos = ChaosConfig { drop_probability: loss, seed: 7, ..ChaosConfig::off() };
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7);
        let mut link = ChaosLink::new(chaos);
        let mut collector = Collector::new();
        for (hour, chunk) in records.chunks(256).enumerate() {
            let msgs = exporter.export(chunk, 3_600 * hour as u32).expect("export");
            for d in link.transmit_all(msgs) {
                let _ = collector.feed_netflow_v9(d);
            }
        }
        for d in link.shutdown() {
            let _ = collector.feed_netflow_v9(d);
        }
        // A sentinel fed around the link: tail loss only registers as a
        // sequence gap once a later datagram arrives.
        let sentinel = flow_records(1, 999);
        for d in exporter.export(&sentinel, 90_000).expect("export") {
            let _ = collector.feed_netflow_v9(d);
        }
        let sent = (records.len() + sentinel.len()) as u64;

        telemetry::observe_collector(&scope, &collector);
        let snap = telemetry::global().snapshot();
        let decoded = snap.gauge(&format!("cons.wire{i}.records_decoded")).unwrap();
        let missed = snap.gauge(&format!("cons.wire{i}.missed_records")).unwrap();
        assert_eq!(
            decoded + missed,
            sent,
            "loss {loss}: decoded {decoded} + missed {missed} != sent {sent}"
        );
        if loss >= 0.05 {
            assert!(missed > 0, "loss {loss} should have cost something");
        }
    }
}

fn small_rules() -> RuleSet {
    let mut b = RuleSetBuilder::new();
    b.rule(
        "Conserved",
        DetectionLevel::Platform,
        None,
        vec![RuleDomain {
            name: DomainName::parse("svc.conserved.example").unwrap(),
            ports: [443u16].into_iter().collect(),
            ips: [Ipv4Addr::new(198, 18, 7, 1)].into_iter().collect(),
            usage_indicator: false,
        }],
    );
    b.build()
}

fn wild_records(n: usize, seed: u64) -> Vec<WildRecord> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed);
            // ~30 % rule hits, the rest background.
            let dst = if x % 10 < 3 {
                Ipv4Addr::new(198, 18, 7, 1)
            } else {
                Ipv4Addr::new(151, 64, (x >> 24) as u8, (x >> 32) as u8)
            };
            let src = Ipv4Addr::new(100, 64, (x >> 40) as u8, x as u8);
            WildRecord {
                line: AnonId(x % 1_024),
                line_slash24: Prefix4::slash24_of(src),
                src_ip: src,
                dst,
                dport: 443,
                proto: Proto::Tcp,
                packets: 1 + (x % 4),
                bytes: 400,
                established: true,
                hour: HourBin((i / 4_096) as u32),
            }
        })
        .collect()
}

/// Chunk accounting and pool feeder/worker counters agree with each
/// other and with the degrade adapter's per-reason drop counts.
#[test]
fn stream_and_pool_records_are_conserved_under_loss() {
    telemetry::set_enabled(true);
    let rules = small_rules();
    let hitlist = HitList::whole_window(&rules);
    let n = 20_000usize;
    for (i, &loss) in LOSS_RATES.iter().enumerate() {
        let scope = telemetry::Scope::named(&format!("cons.rec{i}"));
        let chaos = ChaosConfig { drop_probability: loss, seed: 11, ..ChaosConfig::off() };
        let mut pool = DetectorPool::new(&rules, &hitlist, DetectorConfig::default(), 3);
        pool.attach_telemetry(&scope.sub("pool")).unwrap();
        let mut stream = InstrumentedStream::new(
            DegradeStream::new(VecStream::new(wild_records(n, 5), 1_000), chaos, 5, 1_000),
            &scope.sub("stream"),
        );
        let mut chunk = RecordChunk::with_capacity(1_000);
        pool.observe_stream(&mut stream, &mut chunk).unwrap();
        pool.finish().unwrap();

        let snap = telemetry::global().snapshot();
        let c = |name: &str| {
            snap.counter(&format!("cons.rec{i}.{name}"))
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        let emitted = c("stream.records_emitted");
        let lost = c("stream.records_lost");
        let duplicated = c("stream.records_duplicated");
        assert_eq!(
            emitted,
            n as u64 - lost + duplicated,
            "loss {loss}: stream books don't balance"
        );
        let records_in = c("pool.records_in");
        assert_eq!(records_in, emitted, "loss {loss}: the pool saw what the stream emitted");
        let shard_sum: u64 = snap
            .counters
            .iter()
            .filter(|(k, _)| {
                k.starts_with(&format!("cons.rec{i}.pool.shard"))
                    && k.ends_with(".records_observed")
            })
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(
            shard_sum, records_in,
            "loss {loss}: worker shards must account for every fed record"
        );
        if loss >= 0.05 {
            assert!(lost > 0, "loss {loss} should have cost something");
        }
    }
}
