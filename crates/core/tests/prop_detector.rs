//! Property tests on the detector's core invariants.

use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin};
use haystack_testbed::catalog::DetectionLevel;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

/// Build a single rule with `n` domains, each on one distinct IP.
fn ruleset(n: usize) -> RuleSet {
    let mut b = RuleSetBuilder::new();
    b.rule(
        "X",
        DetectionLevel::Manufacturer,
        None,
        (0..n)
            .map(|i| RuleDomain {
                name: DomainName::parse(&format!("d{i}.x.com")).unwrap(),
                ports: [443u16].into_iter().collect(),
                ips: [Ipv4Addr::new(198, 18, 8, i as u8 + 1)].into_iter().collect(),
                usage_indicator: false,
            })
            .collect(),
    );
    b.build()
}

proptest! {
    /// Monotonicity in D: with identical evidence, a lower threshold
    /// never detects later (and whatever high-D detects, low-D detects).
    #[test]
    fn lower_threshold_detects_no_later(
        n in 1usize..20,
        mut hits in prop::collection::vec((0u8..20, 0u32..100), 1..60),
        d_low in 0.05f64..0.5,
        d_gap in 0.0f64..0.5,
    ) {
        // The detector is a *streaming* consumer: evidence arrives in
        // time order (the contract the vantage points uphold).
        hits.sort_by_key(|(_, h)| *h);
        let d_high = (d_low + d_gap).min(1.0);
        let rules = ruleset(n);
        let mk = |d: f64| {
            Detector::new(
                &rules,
                HitList::whole_window(&rules),
                DetectorConfig { threshold: d, require_established: false },
            )
        };
        let mut lo = mk(d_low);
        let mut hi = mk(d_high);
        let line = AnonId(1);
        for (ip_idx, hour) in &hits {
            let ip = Ipv4Addr::new(198, 18, 8, (*ip_idx as usize % n) as u8 + 1);
            lo.observe(line, ip, 443, Proto::Tcp, true, HourBin(*hour));
            hi.observe(line, ip, 443, Proto::Tcp, true, HourBin(*hour));
        }
        if hi.is_detected(line, "X") {
            prop_assert!(lo.is_detected(line, "X"));
            // Evidence is fed in the same order, so detection hours obey
            // the threshold ordering.
            let lo_h = lo.first_detection(line, "X").unwrap();
            let hi_h = hi.first_detection(line, "X").unwrap();
            prop_assert!(lo_h <= hi_h, "low D detected at {lo_h:?}, high D at {hi_h:?}");
        }
    }

    /// Evidence is per-line: traffic from other lines never affects a
    /// line's detection state.
    #[test]
    fn lines_are_independent(
        n in 2usize..10,
        noise in prop::collection::vec((1u64..50, 0u8..20), 0..100),
    ) {
        let rules = ruleset(n);
        let mut det = Detector::new(
            &rules,
            HitList::whole_window(&rules),
            DetectorConfig { threshold: 1.0, require_established: false },
        );
        // Noise from many other lines.
        for (line, ip_idx) in &noise {
            let ip = Ipv4Addr::new(198, 18, 8, (*ip_idx as usize % n) as u8 + 1);
            det.observe(AnonId(*line + 100), ip, 443, Proto::Tcp, true, HourBin(0));
        }
        prop_assert!(!det.is_detected(AnonId(1), "X"));
        // Now give line 1 full evidence.
        for i in 0..n {
            det.observe(AnonId(1), Ipv4Addr::new(198, 18, 8, i as u8 + 1), 443, Proto::Tcp, true, HourBin(1));
        }
        prop_assert!(det.is_detected(AnonId(1), "X"));
    }

    /// Repeating the same evidence is idempotent: state size and
    /// detection outcomes don't change.
    #[test]
    fn evidence_is_idempotent(
        n in 1usize..10,
        hits in prop::collection::vec(0u8..10, 1..30),
    ) {
        let rules = ruleset(n);
        let mut det = Detector::new(
            &rules,
            HitList::whole_window(&rules),
            DetectorConfig { threshold: 0.5, require_established: false },
        );
        let line = AnonId(7);
        let feed = |det: &mut Detector<'_>| {
            for (t, ip_idx) in hits.iter().enumerate() {
                let ip = Ipv4Addr::new(198, 18, 8, (*ip_idx as usize % n) as u8 + 1);
                det.observe(line, ip, 443, Proto::Tcp, true, HourBin(t as u32));
            }
        };
        feed(&mut det);
        let detected_once = det.is_detected(line, "X");
        let first_once = det.first_detection(line, "X");
        let size_once = det.state_size();
        feed(&mut det);
        prop_assert_eq!(det.is_detected(line, "X"), detected_once);
        prop_assert_eq!(det.first_detection(line, "X"), first_once);
        prop_assert_eq!(det.state_size(), size_once);
    }

    /// detected_lines returns exactly the lines whose evidence crossed
    /// the requirement.
    #[test]
    fn detected_lines_matches_is_detected(
        n in 1usize..8,
        hits in prop::collection::vec((0u64..20, 0u8..8), 1..80),
    ) {
        let rules = ruleset(n);
        let mut det = Detector::new(
            &rules,
            HitList::whole_window(&rules),
            DetectorConfig { threshold: 0.6, require_established: false },
        );
        for (line, ip_idx) in &hits {
            let ip = Ipv4Addr::new(198, 18, 8, (*ip_idx as usize % n) as u8 + 1);
            det.observe(AnonId(*line), ip, 443, Proto::Tcp, true, HourBin(0));
        }
        let listed: BTreeSet<AnonId> = det.detected_lines("X").into_iter().collect();
        for (line, _) in &hits {
            prop_assert_eq!(listed.contains(&AnonId(*line)), det.is_detected(AnonId(*line), "X"));
        }
    }
}
