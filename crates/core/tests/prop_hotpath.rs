//! Equivalence pin for the flattened hot path.
//!
//! The optimized structures — the compiled open-addressing
//! [`HitList`] and the per-rule fast-hash [`Detector`] — must be
//! observationally identical to the naive reference implementations they
//! replaced ([`MapHitList`], [`ReferenceDetector`]). These properties
//! drive random rulesets (flat and hierarchical, with shared IPs across
//! rules to exercise the spill arena) and random flow streams through
//! both sides and require identical `lookup`, `detected_lines`,
//! `first_detection`, and `confidence` — across chunk sizes too, since
//! `observe_chunk` is the entry point the shard workers use.

use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::fasthash::mix64;
use haystack_core::hitlist::{HitList, MapHitList};
use haystack_core::reference::ReferenceDetector;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::WildRecord;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Class names for generated rules.
const CLASSES: [&str; 6] = ["R0", "R1", "R2", "R3", "R4", "R5"];

/// Spec for one generated rule: domain count and, per domain, which IP
/// octets it resolves to (shared octets across rules collide in the
/// hitlist and exercise the spill arena).
type RuleSpec = Vec<Vec<u8>>;

/// Build a rule set from generated specs. Rule `i > 0` is optionally a
/// child of rule `i - 1` (chained hierarchy) when `chain` is set.
fn ruleset(specs: &[RuleSpec], chain: bool) -> RuleSet {
    let mut b = RuleSetBuilder::new();
    for (ri, doms) in specs.iter().enumerate() {
        b.rule(
            CLASSES[ri],
            haystack_testbed::catalog::DetectionLevel::Manufacturer,
            if chain && ri > 0 { Some(CLASSES[ri - 1]) } else { None },
            doms.iter()
                .enumerate()
                .map(|(di, ips)| RuleDomain {
                    name: DomainName::parse(&format!("d{di}.r{ri}.test")).unwrap(),
                    ports: [443u16, 8883].into_iter().collect(),
                    ips: ips.iter().map(|o| Ipv4Addr::new(198, 18, 40, *o)).collect(),
                    usage_indicator: false,
                })
                .collect(),
        );
    }
    b.build()
}

/// Turn generated (line, octet, port-choice, hour) tuples into records.
fn records(hits: &[(u64, u8, bool, u32)]) -> Vec<WildRecord> {
    let src = Ipv4Addr::new(100, 64, 9, 9);
    hits.iter()
        .map(|&(line, octet, alt_port, hour)| WildRecord {
            line: AnonId(line),
            line_slash24: Prefix4::slash24_of(src),
            src_ip: src,
            dst: Ipv4Addr::new(198, 18, 40, octet),
            dport: if alt_port { 8883 } else { 443 },
            proto: Proto::Tcp,
            packets: 1,
            bytes: 80,
            established: true,
            hour: HourBin(hour),
        })
        .collect()
}

/// Strategy: 1–6 rules × 1–4 domains × 1–3 IP octets each, octets drawn
/// from a small range so rules share IPs (spill-arena pressure).
fn specs() -> impl Strategy<Value = Vec<RuleSpec>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0u8..24, 1..4), 1..5),
        1..7,
    )
}

proptest! {
    /// The compiled hitlist answers every probe exactly like the map
    /// oracle — hits, misses, entry order, and spill-arena slices.
    #[test]
    fn compiled_hitlist_equals_map_oracle(
        sp in specs(),
        probes in prop::collection::vec((0u8..32, any::<bool>()), 0..64),
    ) {
        let rules = ruleset(&sp, false);
        let map = MapHitList::whole_window(&rules);
        let compiled = map.clone().compile();
        prop_assert_eq!(map.len(), compiled.len());
        prop_assert_eq!(map.is_empty(), compiled.is_empty());
        // Exhaustive over the octet range plus generated off-range probes.
        for octet in 0u8..32 {
            for port in [443u16, 8883, 80] {
                let ip = Ipv4Addr::new(198, 18, 40, octet);
                prop_assert_eq!(
                    compiled.lookup(ip, port),
                    map.lookup(ip, port),
                    "divergence at {}:{}", ip, port
                );
            }
        }
        for (octet, alt) in probes {
            let ip = Ipv4Addr::new(198, 18, 40, octet);
            let port = if alt { 8883 } else { 443 };
            prop_assert_eq!(compiled.lookup(ip, port), map.lookup(ip, port));
        }
    }

    /// The optimized detector matches the reference detector on every
    /// query surface, for flat and chained-hierarchy rulesets, and the
    /// answers are invariant to the chunk size records arrive in.
    #[test]
    fn detector_equals_reference_across_chunk_sizes(
        sp in specs(),
        chain in any::<bool>(),
        threshold in prop_oneof![Just(0.4), Just(0.6), Just(1.0)],
        hits in prop::collection::vec((0u64..12, 0u8..26, any::<bool>(), 0u32..48), 0..120),
        chunk_size in prop_oneof![Just(1usize), Just(7), Just(1024)],
    ) {
        let rules = ruleset(&sp, chain);
        let config = DetectorConfig { threshold, require_established: false };
        let recs = records(&hits);

        let mut reference = ReferenceDetector::new(&rules, MapHitList::whole_window(&rules), config);
        for r in &recs {
            reference.observe_wild(r);
        }
        let mut fast = Detector::new(&rules, MapHitList::whole_window(&rules).compile(), config);
        for chunk in recs.chunks(chunk_size.max(1)) {
            fast.observe_chunk(chunk);
        }

        prop_assert_eq!(fast.state_size(), reference.state_size());
        let lines: Vec<AnonId> = (0u64..12).map(AnonId).collect();
        for rule in &rules.rules {
            let class = rules.class_name(rule.class);
            prop_assert_eq!(
                fast.detected_lines(class),
                reference.detected_lines(class),
                "detected_lines({}) diverged", class
            );
            for &line in &lines {
                prop_assert_eq!(
                    fast.is_detected(line, class),
                    reference.is_detected(line, class)
                );
                prop_assert_eq!(
                    fast.first_detection(line, class),
                    reference.first_detection(line, class),
                    "first_detection({:?}, {}) diverged", line, class
                );
                let (cf, cr) = (
                    fast.confidence(line, class),
                    reference.confidence(line, class),
                );
                prop_assert!(
                    (cf - cr).abs() < 1e-12,
                    "confidence({:?}, {}): {} vs {}", line, class, cf, cr
                );
            }
        }
        // Unknown classes answer identically too.
        prop_assert_eq!(fast.detected_lines("NoSuchClass"), reference.detected_lines("NoSuchClass"));
    }

    /// The wild deployment profile, pinned across the fingerprint gate:
    /// streams at controlled miss rates (0 % / 50 % / 99 % / 100 % of
    /// records touching no rule key) flow through the batched gated
    /// path in every chunking — including whole-stream — and the
    /// answers match the reference detector record-for-record. The
    /// per-record tallies must also close: every record is either a
    /// gate pass (and then a probe) or a gate miss, at any miss rate.
    #[test]
    fn detector_equals_reference_at_controlled_miss_rates(
        sp in specs(),
        miss_pct in prop_oneof![Just(0u8), Just(50), Just(99), Just(100)],
        hits in prop::collection::vec((0u64..12, 0u8..26, any::<bool>(), 0u32..48, 0u8..100), 0..160),
        chunk_size in prop_oneof![Just(1usize), Just(7), Just(1024), Just(usize::MAX)],
    ) {
        let rules = ruleset(&sp, false);
        let config = DetectorConfig::default();
        // Misses live in 10/8 — disjoint from the 198.18.40/24 rule
        // space — and each gets a distinct destination, like real
        // traffic.
        let recs: Vec<WildRecord> = records(
            &hits.iter().map(|&(l, o, a, h, _)| (l, o, a, h)).collect::<Vec<_>>(),
        )
        .into_iter()
        .zip(&hits)
        .enumerate()
        .map(|(i, (mut r, &(line, octet, _, _, roll)))| {
            if roll < miss_pct {
                r.dst = Ipv4Addr::new(10, i as u8, octet, line as u8);
            }
            r
        })
        .collect();

        let mut reference = ReferenceDetector::new(&rules, MapHitList::whole_window(&rules), config);
        for r in &recs {
            reference.observe_wild(r);
        }
        let mut fast = Detector::new(&rules, HitList::whole_window(&rules), config);
        for chunk in recs.chunks(chunk_size.min(recs.len()).max(1)) {
            fast.observe_chunk(chunk);
        }

        prop_assert_eq!(fast.state_size(), reference.state_size());
        for rule in &rules.rules {
            let class = rules.class_name(rule.class);
            prop_assert_eq!(
                fast.detected_lines(class),
                reference.detected_lines(class),
                "detected_lines({}) diverged at miss_pct={}", class, miss_pct
            );
        }
        let stats = fast.hot_stats();
        prop_assert_eq!(stats.records, recs.len() as u64);
        prop_assert_eq!(stats.prefilter_hits + stats.prefilter_misses, stats.records);
        prop_assert_eq!(stats.probes, stats.prefilter_hits);
        // No false negatives: every indexed key the stream touched
        // must pass the gate (misses here can only be non-indexed
        // destinations — octets outside the generated rules, or the
        // 10/8 miss space).
        let map = MapHitList::whole_window(&rules);
        let hl = map.clone().compile();
        for r in &recs {
            if !map.lookup(r.dst, r.dport).is_empty() {
                let h = mix64(HitList::pack_key(r.dst, r.dport));
                prop_assert!(
                    hl.prefilter_pass(h),
                    "gate dropped an indexed key: {}:{}", r.dst, r.dport
                );
            }
        }
    }
}

/// Adversarial fingerprint collisions: keys that are *absent* from the
/// hitlist but pass the fingerprint front gate (hash-colliding tag
/// bits). These are the gate's false positives — the probe pass must
/// reject every one against the full key table, leaving detections,
/// matches, and state untouched, in both the scalar and the batched
/// path, at every chunking.
#[test]
fn fingerprint_collisions_are_rejected_by_the_probe() {
    let sp: Vec<RuleSpec> = vec![vec![vec![1, 2, 3], vec![4, 5]], vec![vec![2, 6], vec![7]]];
    let rules = ruleset(&sp, false);
    let map = MapHitList::whole_window(&rules);
    let hl = map.clone().compile();
    assert!(hl.prefilter_len().is_power_of_two());

    // Brute-force absent keys that collide with some indexed key's
    // fingerprint bit, through the same public hash pipeline the gate
    // uses. The fingerprint is small for this ruleset, so colliders are
    // dense enough to find quickly.
    let mut colliders: Vec<Ipv4Addr> = Vec::new();
    'scan: for a in 0u8..=255 {
        for b in 0u8..=255 {
            let ip = Ipv4Addr::new(10, 99, a, b);
            let h = mix64(HitList::pack_key(ip, 443));
            if hl.prefilter_pass(h) {
                assert!(map.lookup(ip, 443).is_empty(), "collider must be absent");
                assert!(hl.lookup(ip, 443).is_empty(), "probe must reject the collider");
                colliders.push(ip);
                if colliders.len() >= 16 {
                    break 'scan;
                }
            }
        }
    }
    assert!(!colliders.is_empty(), "no fingerprint collision found in a /16 scan");

    // An all-collider stream: every record passes the gate (worst-case
    // false-positive pressure) and every probe comes back empty.
    let src = Ipv4Addr::new(100, 64, 9, 9);
    let recs: Vec<WildRecord> = colliders
        .iter()
        .cycle()
        .take(colliders.len() * 13)
        .enumerate()
        .map(|(i, &dst)| WildRecord {
            line: AnonId(i as u64 % 5),
            line_slash24: Prefix4::slash24_of(src),
            src_ip: src,
            dst,
            dport: 443,
            proto: Proto::Tcp,
            packets: 1,
            bytes: 80,
            established: true,
            hour: HourBin(0),
        })
        .collect();
    for chunk_size in [1usize, 7, recs.len()] {
        let mut det =
            Detector::new(&rules, MapHitList::whole_window(&rules).compile(), DetectorConfig::default());
        for chunk in recs.chunks(chunk_size) {
            det.observe_chunk(chunk);
        }
        let stats = det.hot_stats();
        assert_eq!(stats.records, recs.len() as u64);
        assert_eq!(stats.prefilter_hits, recs.len() as u64, "colliders must pass the gate");
        assert_eq!(stats.probes, recs.len() as u64);
        assert_eq!(stats.matches, 0, "the probe must reject every collider");
        assert_eq!(stats.detections, 0);
        assert_eq!(det.state_size(), 0, "false positives must leave no state");
    }
}
