//! Equivalence pin for the flattened hot path.
//!
//! The optimized structures — the compiled open-addressing
//! [`HitList`] and the per-rule fast-hash [`Detector`] — must be
//! observationally identical to the naive reference implementations they
//! replaced ([`MapHitList`], [`ReferenceDetector`]). These properties
//! drive random rulesets (flat and hierarchical, with shared IPs across
//! rules to exercise the spill arena) and random flow streams through
//! both sides and require identical `lookup`, `detected_lines`,
//! `first_detection`, and `confidence` — across chunk sizes too, since
//! `observe_chunk` is the entry point the shard workers use.

use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::MapHitList;
use haystack_core::reference::ReferenceDetector;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::WildRecord;
use proptest::prelude::*;
use std::net::Ipv4Addr;

/// Class names for generated rules.
const CLASSES: [&str; 6] = ["R0", "R1", "R2", "R3", "R4", "R5"];

/// Spec for one generated rule: domain count and, per domain, which IP
/// octets it resolves to (shared octets across rules collide in the
/// hitlist and exercise the spill arena).
type RuleSpec = Vec<Vec<u8>>;

/// Build a rule set from generated specs. Rule `i > 0` is optionally a
/// child of rule `i - 1` (chained hierarchy) when `chain` is set.
fn ruleset(specs: &[RuleSpec], chain: bool) -> RuleSet {
    let mut b = RuleSetBuilder::new();
    for (ri, doms) in specs.iter().enumerate() {
        b.rule(
            CLASSES[ri],
            haystack_testbed::catalog::DetectionLevel::Manufacturer,
            if chain && ri > 0 { Some(CLASSES[ri - 1]) } else { None },
            doms.iter()
                .enumerate()
                .map(|(di, ips)| RuleDomain {
                    name: DomainName::parse(&format!("d{di}.r{ri}.test")).unwrap(),
                    ports: [443u16, 8883].into_iter().collect(),
                    ips: ips.iter().map(|o| Ipv4Addr::new(198, 18, 40, *o)).collect(),
                    usage_indicator: false,
                })
                .collect(),
        );
    }
    b.build()
}

/// Turn generated (line, octet, port-choice, hour) tuples into records.
fn records(hits: &[(u64, u8, bool, u32)]) -> Vec<WildRecord> {
    let src = Ipv4Addr::new(100, 64, 9, 9);
    hits.iter()
        .map(|&(line, octet, alt_port, hour)| WildRecord {
            line: AnonId(line),
            line_slash24: Prefix4::slash24_of(src),
            src_ip: src,
            dst: Ipv4Addr::new(198, 18, 40, octet),
            dport: if alt_port { 8883 } else { 443 },
            proto: Proto::Tcp,
            packets: 1,
            bytes: 80,
            established: true,
            hour: HourBin(hour),
        })
        .collect()
}

/// Strategy: 1–6 rules × 1–4 domains × 1–3 IP octets each, octets drawn
/// from a small range so rules share IPs (spill-arena pressure).
fn specs() -> impl Strategy<Value = Vec<RuleSpec>> {
    prop::collection::vec(
        prop::collection::vec(prop::collection::vec(0u8..24, 1..4), 1..5),
        1..7,
    )
}

proptest! {
    /// The compiled hitlist answers every probe exactly like the map
    /// oracle — hits, misses, entry order, and spill-arena slices.
    #[test]
    fn compiled_hitlist_equals_map_oracle(
        sp in specs(),
        probes in prop::collection::vec((0u8..32, any::<bool>()), 0..64),
    ) {
        let rules = ruleset(&sp, false);
        let map = MapHitList::whole_window(&rules);
        let compiled = map.clone().compile();
        prop_assert_eq!(map.len(), compiled.len());
        prop_assert_eq!(map.is_empty(), compiled.is_empty());
        // Exhaustive over the octet range plus generated off-range probes.
        for octet in 0u8..32 {
            for port in [443u16, 8883, 80] {
                let ip = Ipv4Addr::new(198, 18, 40, octet);
                prop_assert_eq!(
                    compiled.lookup(ip, port),
                    map.lookup(ip, port),
                    "divergence at {}:{}", ip, port
                );
            }
        }
        for (octet, alt) in probes {
            let ip = Ipv4Addr::new(198, 18, 40, octet);
            let port = if alt { 8883 } else { 443 };
            prop_assert_eq!(compiled.lookup(ip, port), map.lookup(ip, port));
        }
    }

    /// The optimized detector matches the reference detector on every
    /// query surface, for flat and chained-hierarchy rulesets, and the
    /// answers are invariant to the chunk size records arrive in.
    #[test]
    fn detector_equals_reference_across_chunk_sizes(
        sp in specs(),
        chain in any::<bool>(),
        threshold in prop_oneof![Just(0.4), Just(0.6), Just(1.0)],
        hits in prop::collection::vec((0u64..12, 0u8..26, any::<bool>(), 0u32..48), 0..120),
        chunk_size in prop_oneof![Just(1usize), Just(7), Just(1024)],
    ) {
        let rules = ruleset(&sp, chain);
        let config = DetectorConfig { threshold, require_established: false };
        let recs = records(&hits);

        let mut reference = ReferenceDetector::new(&rules, MapHitList::whole_window(&rules), config);
        for r in &recs {
            reference.observe_wild(r);
        }
        let mut fast = Detector::new(&rules, MapHitList::whole_window(&rules).compile(), config);
        for chunk in recs.chunks(chunk_size.max(1)) {
            fast.observe_chunk(chunk);
        }

        prop_assert_eq!(fast.state_size(), reference.state_size());
        let lines: Vec<AnonId> = (0u64..12).map(AnonId).collect();
        for rule in &rules.rules {
            let class = rules.class_name(rule.class);
            prop_assert_eq!(
                fast.detected_lines(class),
                reference.detected_lines(class),
                "detected_lines({}) diverged", class
            );
            for &line in &lines {
                prop_assert_eq!(
                    fast.is_detected(line, class),
                    reference.is_detected(line, class)
                );
                prop_assert_eq!(
                    fast.first_detection(line, class),
                    reference.first_detection(line, class),
                    "first_detection({:?}, {}) diverged", line, class
                );
                let (cf, cr) = (
                    fast.confidence(line, class),
                    reference.confidence(line, class),
                );
                prop_assert!(
                    (cf - cr).abs() < 1e-12,
                    "confidence({:?}, {}): {} vs {}", line, class, cf, cr
                );
            }
        }
        // Unknown classes answer identically too.
        prop_assert_eq!(fast.detected_lines("NoSuchClass"), reference.detected_lines("NoSuchClass"));
    }
}
