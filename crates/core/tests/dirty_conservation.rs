#![cfg(feature = "telemetry")]
//! Dirty-entry conservation for incremental checkpoints (DESIGN.md §12):
//! every dirty (line, rule) entry a component flushes must be accounted
//! for by the entries encoded into delta frames on disk —
//! `checkpoint.dirty_entries` equals the sum of per-frame entry counts,
//! and `checkpoint.delta_bytes` equals the sealed frame bytes written.
//!
//! One `#[test]` on purpose: the `checkpoint` telemetry scope is
//! process-global, and a sibling test writing frames concurrently would
//! break the exact equality this file asserts.

use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_core::telemetry;
use haystack_core::{CheckpointDir, DetectorSnapshot};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin};
use haystack_testbed::catalog::DetectionLevel;
use std::net::Ipv4Addr;

fn ruleset() -> RuleSet {
    let mut b = RuleSetBuilder::new();
    b.rule(
        "Cam",
        DetectionLevel::Manufacturer,
        None,
        (0..4)
            .map(|i| RuleDomain {
                name: DomainName::parse(&format!("d{i}.cam.com")).unwrap(),
                ports: [443u16].into_iter().collect(),
                ips: [Ipv4Addr::new(198, 18, 40, i as u8 + 1)].into_iter().collect(),
                usage_indicator: false,
            })
            .collect(),
    );
    b.build()
}

#[test]
fn dirty_entries_flushed_equal_entries_encoded() {
    telemetry::set_enabled(true);
    let rules = ruleset();
    let mut det = Detector::new(
        &rules,
        HitList::whole_window(&rules),
        DetectorConfig { threshold: 0.4, require_established: false },
    );
    let root = std::env::temp_dir()
        .join(format!("haystack-dirty-cons-{}", std::process::id()));
    let dir = CheckpointDir::open(&root).unwrap();

    let observe = |det: &mut Detector<'_>, line: u64, ip_last: u8| {
        det.observe(
            AnonId(line),
            Ipv4Addr::new(198, 18, 40, ip_last),
            443,
            Proto::Tcp,
            true,
            HourBin(0),
        );
    };

    // Anchor the chain: a full generation, then delta rounds of varying
    // dirty-set sizes (including an empty round — zero entries, but the
    // frame bytes still count).
    observe(&mut det, 1, 1);
    dir.write("det", &det.checkpoint_full().encode()).unwrap();

    let mut expected_entries = 0u64;
    let mut expected_bytes = 0u64;
    for round in 0..4u64 {
        // Fresh lines each round: repeated identical evidence takes the
        // mask early-out and must NOT count as dirty.
        for i in 0..round {
            let line = 10 * round + i;
            observe(&mut det, line, (line % 4) as u8 + 1);
            observe(&mut det, line, (line % 4) as u8 + 1);
        }
        let dirty = det.dirty_entries().expect("clean base exists") as u64;
        assert_eq!(dirty, round, "each round dirties `round` distinct lines");
        let snap = det.take_snapshot_delta();
        assert_eq!(snap.entry_count() as u64, dirty, "flushed == encoded");
        let frame = snap.encode();
        dir.write_delta("det", &frame, dirty).unwrap();
        expected_entries += dirty;
        expected_bytes += frame.len() as u64;
    }

    let snap = telemetry::global().snapshot();
    assert_eq!(
        snap.counter("checkpoint.dirty_entries"),
        Some(expected_entries),
        "dirty entries flushed must equal entries encoded into delta frames"
    );
    assert_eq!(
        snap.counter("checkpoint.delta_bytes"),
        Some(expected_bytes),
        "delta bytes must equal the sealed frames written"
    );

    // The chain those frames form restores to the live state.
    let restored = dir
        .load_latest_chain(
            "det",
            haystack_core::DetectorState::decode,
            DetectorSnapshot::decode,
            |base, d: DetectorSnapshot| d.apply_to(base),
        )
        .unwrap()
        .expect("chain present");
    assert_eq!(restored.1, det.export_state());
    let _ = std::fs::remove_dir_all(dir.root());
}
