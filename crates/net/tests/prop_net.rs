//! Property tests for the foundational types: prefix algebra, time
//! binning, anonymization.

use haystack_net::{Anonymizer, HourBin, Prefix4, PrefixAggregator, SimTime};
use proptest::prelude::*;
use std::net::Ipv4Addr;

proptest! {
    #[test]
    fn prefix_contains_its_own_addresses(addr in any::<u32>(), len in 0u8..=32) {
        let p = Prefix4::new(Ipv4Addr::from(addr), len).unwrap();
        prop_assert!(p.contains(p.network()));
        // The i-th address is inside (sample a few indexes).
        let size = p.size();
        for i in [0u32, size / 2, size - 1] {
            prop_assert!(p.contains(p.nth(i)));
        }
    }

    #[test]
    fn prefix_cover_is_a_partial_order(a in any::<u32>(), la in 8u8..=32, b in any::<u32>(), lb in 8u8..=32) {
        let pa = Prefix4::new(Ipv4Addr::from(a), la).unwrap();
        let pb = Prefix4::new(Ipv4Addr::from(b), lb).unwrap();
        // Antisymmetry: mutual cover ⇒ equality.
        if pa.covers(&pb) && pb.covers(&pa) {
            prop_assert_eq!(pa, pb);
        }
        // Covering implies containing the network address.
        if pa.covers(&pb) {
            prop_assert!(pa.contains(pb.network()));
        }
    }

    #[test]
    fn prefix_parse_round_trips(addr in any::<u32>(), len in 0u8..=32) {
        let p = Prefix4::new(Ipv4Addr::from(addr), len).unwrap();
        let reparsed: Prefix4 = p.to_string().parse().unwrap();
        prop_assert_eq!(p, reparsed);
    }

    #[test]
    fn slash24_aggregation_counts_are_consistent(addrs in prop::collection::vec(any::<u32>(), 1..200)) {
        let mut agg = PrefixAggregator::new();
        for a in &addrs {
            agg.observe(Ipv4Addr::from(*a));
        }
        prop_assert!(agg.unique_slash24s() <= agg.unique_addrs());
        prop_assert!(agg.unique_addrs() <= addrs.len());
        prop_assert!(agg.unique_slash24s() >= 1);
    }

    #[test]
    fn hour_binning_is_monotone(a in any::<u32>(), b in any::<u32>()) {
        let (lo, hi) = (a.min(b) as u64, a.max(b) as u64);
        prop_assert!(SimTime(lo).hour() <= SimTime(hi).hour());
        prop_assert!(SimTime(lo).day() <= SimTime(hi).day());
        // Hour bin start is never after the instant itself.
        prop_assert!(SimTime(hi).hour().start() <= SimTime(hi));
    }

    #[test]
    fn hour_bin_day_consistency(h in any::<u32>()) {
        let hb = HourBin(h);
        prop_assert_eq!(hb.day().0, h / 24);
        prop_assert_eq!(hb.day().first_hour().0 + hb.hour_of_day(), h);
    }

    #[test]
    fn anonymizer_is_injective_on_samples(k0 in any::<u64>(), k1 in any::<u64>(), addrs in prop::collection::btree_set(any::<u32>(), 2..100)) {
        let a = Anonymizer::new(k0, k1);
        let ids: std::collections::BTreeSet<_> =
            addrs.iter().map(|x| a.anonymize(Ipv4Addr::from(*x))).collect();
        prop_assert_eq!(ids.len(), addrs.len(), "collision under key ({}, {})", k0, k1);
    }
}
