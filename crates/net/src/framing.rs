//! Length-prefixed stream framing over the §12 snapshot codec
//! (DESIGN.md §15).
//!
//! A frame on the wire is exactly the sealed byte string produced by
//! [`crate::snapshot::seal`]: magic, version, payload length, payload,
//! trailing FNV-1a checksum. Reading a frame from a byte stream needs
//! no extra envelope — the fixed prefix carries enough to know how many
//! bytes remain, and the checksum at the tail proves the frame survived
//! the pipe intact. The process-isolated detector pool speaks this
//! protocol over child stdin/stdout pipes; a child killed mid-write
//! leaves a torn frame that fails validation instead of silently
//! corrupting the peer.

use crate::snapshot::{SnapError, MAGIC_LEN};
use std::fmt;
use std::io::{self, Read, Write};

/// Bytes of a sealed frame before the payload: magic + version + length.
pub const FRAME_HEADER: usize = MAGIC_LEN + 4 + 8;

/// A stream-framing failure: an I/O error on the pipe, a frame that
/// fails the codec's structural checks, or a declared payload length
/// over the reader's cap.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The frame failed the snapshot codec's validation (bad magic, or
    /// the stream ended mid-frame — the peer died with a frame half
    /// written).
    Snap(SnapError),
    /// The declared payload length exceeds the reader's cap — either a
    /// corrupt header or a peer speaking the wrong protocol. The frame
    /// is rejected before any allocation.
    TooLarge {
        /// The length the header declared.
        declared: u64,
        /// The reader's cap.
        max: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Snap(e) => write!(f, "frame codec: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame declares {declared} payload bytes (cap {max})")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> FrameError {
        FrameError::Io(e)
    }
}

impl From<SnapError> for FrameError {
    fn from(e: SnapError) -> FrameError {
        FrameError::Snap(e)
    }
}

/// Write one sealed frame and flush, so the peer's blocking read always
/// observes a complete frame once this returns.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)?;
    w.flush()
}

/// Read one sealed frame with the expected `magic` from a byte stream.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary (the peer closed
/// the stream between frames); a stream ending *inside* a frame is
/// [`SnapError::Truncated`]. Only the magic and the length cap are
/// validated here — call [`crate::snapshot::open`] on the returned
/// bytes to check the version and checksum.
pub fn read_frame(
    r: &mut impl Read,
    magic: &[u8; MAGIC_LEN],
    max_payload: u64,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; FRAME_HEADER];
    let mut got = 0usize;
    // Hand-rolled instead of `read_exact`: zero bytes before the first
    // header byte is a clean shutdown, not an error.
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Ok(None);
                }
                return Err(FrameError::Snap(SnapError::Truncated));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if &header[..MAGIC_LEN] != magic {
        return Err(FrameError::Snap(SnapError::BadMagic));
    }
    let len = u64::from_le_bytes(header[MAGIC_LEN + 4..FRAME_HEADER].try_into().expect("8 bytes"));
    if len > max_payload {
        return Err(FrameError::TooLarge { declared: len, max: max_payload });
    }
    // Payload plus the trailing checksum.
    let total = FRAME_HEADER + len as usize + 8;
    let mut frame = vec![0u8; total];
    frame[..FRAME_HEADER].copy_from_slice(&header);
    r.read_exact(&mut frame[FRAME_HEADER..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Snap(SnapError::Truncated)
        } else {
            FrameError::Io(e)
        }
    })?;
    Ok(Some(frame))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{open, seal};
    use std::io::Cursor;

    const MAGIC: &[u8; 8] = b"HAYTEST\0";

    #[test]
    fn frames_round_trip_back_to_back() {
        let a = seal(MAGIC, 1, b"first");
        let b = seal(MAGIC, 1, b"second payload");
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();

        let mut r = Cursor::new(buf);
        let fa = read_frame(&mut r, MAGIC, 1 << 20).unwrap().expect("first frame");
        assert_eq!(open(MAGIC, 1, &fa).unwrap(), b"first");
        let fb = read_frame(&mut r, MAGIC, 1 << 20).unwrap().expect("second frame");
        assert_eq!(open(MAGIC, 1, &fb).unwrap(), b"second payload");
        assert!(read_frame(&mut r, MAGIC, 1 << 20).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn torn_frame_is_truncated_not_a_hang_or_a_panic() {
        let a = seal(MAGIC, 1, b"whole payload bytes");
        for cut in 1..a.len() {
            let mut r = Cursor::new(a[..cut].to_vec());
            match read_frame(&mut r, MAGIC, 1 << 20) {
                Err(FrameError::Snap(SnapError::Truncated)) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_magic_is_rejected_before_the_body() {
        let a = seal(b"WRONGMG\0", 1, b"payload");
        let mut r = Cursor::new(a);
        assert!(matches!(
            read_frame(&mut r, MAGIC, 1 << 20),
            Err(FrameError::Snap(SnapError::BadMagic))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut frame = seal(MAGIC, 1, b"x");
        // Forge an absurd length into the header.
        frame[MAGIC_LEN + 4..MAGIC_LEN + 12].copy_from_slice(&u64::MAX.to_le_bytes());
        let mut r = Cursor::new(frame);
        assert!(matches!(
            read_frame(&mut r, MAGIC, 1 << 20),
            Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn corrupted_body_fails_the_checksum_at_open() {
        let mut a = seal(MAGIC, 1, b"payload under test");
        let mid = FRAME_HEADER + 3;
        a[mid] ^= 0xFF;
        let mut r = Cursor::new(a);
        let f = read_frame(&mut r, MAGIC, 1 << 20).unwrap().expect("frame reads");
        assert!(matches!(open(MAGIC, 1, &f), Err(SnapError::Checksum { .. })));
    }
}
