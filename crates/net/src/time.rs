//! Simulated time: the study window, hour bins, and day bins.
//!
//! The paper analyses two weeks of traffic — **November 15 through
//! November 28, 2019** — and reports everything in *per-hour* and *per-day*
//! aggregates (Figures 5, 10, 11, 13–15, 17, 18). We model time as seconds
//! since an arbitrary simulation epoch placed at `Nov 15 2019 00:00` local
//! ISP time, so hour bin `0` is the first hour of Figure 11(a) and day bin
//! `0` is "Nov-15".
//!
//! All simulation components share this clock; nothing in the workspace ever
//! consults wall-clock time, which keeps every experiment bit-reproducible.

use crate::error::NetError;
use std::fmt;

/// Seconds in one simulated hour.
pub const SECS_PER_HOUR: u64 = 3_600;
/// Seconds in one simulated day.
pub const SECS_PER_DAY: u64 = 86_400;

/// A point in simulated time, in seconds since the simulation epoch
/// (Nov 15 2019 00:00, ISP timezone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (Nov 15 2019 00:00).
    pub const EPOCH: SimTime = SimTime(0);

    /// Build a time from whole days, hours, and seconds past the epoch.
    ///
    /// `SimTime::from_dhs(1, 2, 3)` is Nov 16, 02:00:03.
    pub fn from_dhs(days: u64, hours: u64, secs: u64) -> Self {
        SimTime(days * SECS_PER_DAY + hours * SECS_PER_HOUR + secs)
    }

    /// The hour bin this instant falls into.
    pub fn hour(self) -> HourBin {
        HourBin((self.0 / SECS_PER_HOUR) as u32)
    }

    /// The day bin this instant falls into.
    pub fn day(self) -> DayBin {
        DayBin((self.0 / SECS_PER_DAY) as u32)
    }

    /// Hour of day in `0..24` (the ISP's timezone), used by the diurnal
    /// activity model (§6.2 reports Samsung peaks around 18:00).
    pub fn hour_of_day(self) -> u32 {
        ((self.0 % SECS_PER_DAY) / SECS_PER_HOUR) as u32
    }

    /// Advance by `secs` seconds.
    #[must_use]
    pub fn plus_secs(self, secs: u64) -> Self {
        SimTime(self.0 + secs)
    }

    /// Saturating difference in seconds (`self - earlier`).
    pub fn secs_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.0 / SECS_PER_DAY;
        let rem = self.0 % SECS_PER_DAY;
        write!(
            f,
            "{}T{:02}:{:02}:{:02}",
            DayBin(d as u32),
            rem / SECS_PER_HOUR,
            (rem % SECS_PER_HOUR) / 60,
            rem % 60
        )
    }
}

/// An hour-granularity bin; bin `0` is Nov 15 2019, 00:00–01:00.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HourBin(pub u32);

impl HourBin {
    /// The instant at which this bin starts.
    pub fn start(self) -> SimTime {
        SimTime(u64::from(self.0) * SECS_PER_HOUR)
    }

    /// The day this hour belongs to.
    pub fn day(self) -> DayBin {
        DayBin(self.0 / 24)
    }

    /// Hour of day in `0..24`.
    pub fn hour_of_day(self) -> u32 {
        self.0 % 24
    }

    /// The next hour bin.
    #[must_use]
    pub fn next(self) -> HourBin {
        HourBin(self.0 + 1)
    }
}

impl fmt::Display for HourBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:02}h", self.day(), self.hour_of_day())
    }
}

/// A day-granularity bin; bin `0` is "Nov-15" in the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DayBin(pub u32);

/// Calendar labels for the 14 study days, matching the x axes of
/// Figures 11–15.
const DAY_LABELS: [&str; 14] = [
    "Nov-15", "Nov-16", "Nov-17", "Nov-18", "Nov-19", "Nov-20", "Nov-21", "Nov-22", "Nov-23",
    "Nov-24", "Nov-25", "Nov-26", "Nov-27", "Nov-28",
];

impl DayBin {
    /// First hour bin of this day.
    pub fn first_hour(self) -> HourBin {
        HourBin(self.0 * 24)
    }

    /// Whether this study day is a weekend. Nov 15 2019 (day 0) was a
    /// Friday, so days 1, 2, 8, 9 are the two weekends — §7.1 notes the
    /// usage peak "during the day and weekends (Nov. 23-24)", i.e. days
    /// 8 and 9.
    pub fn is_weekend(self) -> bool {
        matches!(self.0 % 7, 1 | 2)
    }

    /// Iterate over the 24 hour bins of this day.
    pub fn hours(self) -> impl Iterator<Item = HourBin> {
        let first = self.first_hour().0;
        (first..first + 24).map(HourBin)
    }
}

impl fmt::Display for DayBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match DAY_LABELS.get(self.0 as usize) {
            Some(l) => f.write_str(l),
            None => write!(f, "Day+{}", self.0),
        }
    }
}

/// A half-open interval of simulated time, e.g. the idle-experiment window
/// (Nov 22–25) or the full two-week study period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StudyWindow {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl StudyWindow {
    /// The full two-week study period, Nov 15 00:00 – Nov 29 00:00.
    pub const FULL: StudyWindow = StudyWindow {
        start: SimTime(0),
        end: SimTime(14 * SECS_PER_DAY),
    };

    /// The active ground-truth experiment window, Nov 15 – Nov 19 (§2.3:
    /// "9,810 active experiments between November 15th and 18th" — the
    /// window covers through the end of the 18th).
    pub const ACTIVE_GT: StudyWindow = StudyWindow {
        start: SimTime(0),
        end: SimTime(4 * SECS_PER_DAY),
    };

    /// The idle ground-truth experiment window, Nov 22 – Nov 25 (§2.3:
    /// "idle traffic for three days, November 23th-25th" plus the startup
    /// day; Figure 5 plots Nov 22–25).
    pub const IDLE_GT: StudyWindow = StudyWindow {
        start: SimTime(7 * SECS_PER_DAY),
        end: SimTime(10 * SECS_PER_DAY),
    };

    /// Construct a window spanning whole days `[start_day, end_day)`.
    pub fn days(start_day: u32, end_day: u32) -> Self {
        StudyWindow {
            start: DayBin(start_day).first_hour().start(),
            end: DayBin(end_day).first_hour().start(),
        }
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Number of whole hours in the window.
    pub fn num_hours(&self) -> u32 {
        ((self.end.0 - self.start.0) / SECS_PER_HOUR) as u32
    }

    /// Number of whole days in the window.
    pub fn num_days(&self) -> u32 {
        ((self.end.0 - self.start.0) / SECS_PER_DAY) as u32
    }

    /// Iterate over the hour bins covered by the window.
    pub fn hour_bins(&self) -> impl Iterator<Item = HourBin> {
        let first = (self.start.0 / SECS_PER_HOUR) as u32;
        let last = (self.end.0 / SECS_PER_HOUR) as u32;
        (first..last).map(HourBin)
    }

    /// Iterate over the day bins covered by the window.
    pub fn day_bins(&self) -> impl Iterator<Item = DayBin> {
        let first = (self.start.0 / SECS_PER_DAY) as u32;
        let last = (self.end.0 / SECS_PER_DAY) as u32;
        (first..last).map(DayBin)
    }

    /// Validate that `t` lies inside the window.
    pub fn check(&self, t: SimTime) -> Result<(), NetError> {
        if self.contains(t) {
            Ok(())
        } else {
            Err(NetError::OutOfWindow { ts: t.0, start: self.start.0, end: self.end.0 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hour_and_day_binning() {
        let t = SimTime::from_dhs(3, 17, 59);
        assert_eq!(t.hour(), HourBin(3 * 24 + 17));
        assert_eq!(t.day(), DayBin(3));
        assert_eq!(t.hour_of_day(), 17);
        assert_eq!(t.hour().day(), DayBin(3));
        assert_eq!(t.hour().hour_of_day(), 17);
    }

    #[test]
    fn hour_bin_boundaries_are_half_open() {
        let end_of_hour = SimTime(SECS_PER_HOUR - 1);
        let start_of_next = SimTime(SECS_PER_HOUR);
        assert_eq!(end_of_hour.hour(), HourBin(0));
        assert_eq!(start_of_next.hour(), HourBin(1));
    }

    #[test]
    fn study_window_constants_cover_paper_periods() {
        assert_eq!(StudyWindow::FULL.num_days(), 14);
        assert_eq!(StudyWindow::FULL.num_hours(), 336);
        assert_eq!(StudyWindow::ACTIVE_GT.num_days(), 4);
        assert_eq!(StudyWindow::IDLE_GT.num_days(), 3);
        assert!(StudyWindow::IDLE_GT.contains(SimTime::from_dhs(8, 0, 0)));
        assert!(!StudyWindow::IDLE_GT.contains(SimTime::from_dhs(10, 0, 0)));
    }

    #[test]
    fn day_labels_match_figures() {
        assert_eq!(DayBin(0).to_string(), "Nov-15");
        assert_eq!(DayBin(13).to_string(), "Nov-28");
        assert_eq!(DayBin(20).to_string(), "Day+20");
    }

    #[test]
    fn weekends_fall_on_nov_16_17_and_23_24() {
        // Nov 15 2019 was a Friday.
        for (day, weekend) in
            [(0u32, false), (1, true), (2, true), (3, false), (8, true), (9, true), (10, false)]
        {
            assert_eq!(DayBin(day).is_weekend(), weekend, "day {day}");
        }
    }

    #[test]
    fn window_iterators_agree_with_counts() {
        let w = StudyWindow::days(2, 5);
        assert_eq!(w.hour_bins().count() as u32, w.num_hours());
        assert_eq!(w.day_bins().count() as u32, w.num_days());
        assert_eq!(w.day_bins().next(), Some(DayBin(2)));
        assert_eq!(w.day_bins().last(), Some(DayBin(4)));
    }

    #[test]
    fn check_rejects_out_of_window() {
        let w = StudyWindow::days(0, 1);
        assert!(w.check(SimTime(10)).is_ok());
        assert!(w.check(SimTime(SECS_PER_DAY)).is_err());
    }

    #[test]
    fn day_hours_iterates_24_bins() {
        let hours: Vec<_> = DayBin(2).hours().collect();
        assert_eq!(hours.len(), 24);
        assert_eq!(hours[0], HourBin(48));
        assert_eq!(hours[23], HourBin(71));
    }

    #[test]
    fn display_round_trips_key_instants() {
        assert_eq!(SimTime::from_dhs(0, 0, 0).to_string(), "Nov-15T00:00:00");
        assert_eq!(SimTime::from_dhs(13, 23, 3599).to_string(), "Nov-28T23:59:59");
    }
}
