//! IPv4 address helpers and the user-vs-server IP split.
//!
//! The vantage points never export raw subscriber addresses: §2.1 states
//! *"We distinguish user IPs from server IPs and anonymize by hashing all
//! user IPs. We call an IP a server IP if it receives or transmits traffic
//! on well-known ports or if it belongs to ASes of cloud or CDN
//! providers."* This module implements exactly that decision rule; the
//! hashing itself lives in [`crate::anonymize`].

use crate::asn::{AsCategory, AsRegistry};
use crate::ports::is_well_known_server_port;
use std::net::Ipv4Addr;

/// Extension helpers on [`std::net::Ipv4Addr`] used throughout the
/// workspace. IPv4 is sufficient for the reproduction: the paper's flow
/// analysis is address-family agnostic and the testbed devices are v4-only.
pub trait Ipv4AddrExt {
    /// The address as a big-endian `u32` (how it is carried in NetFlow).
    fn to_u32(self) -> u32;
    /// Inverse of [`Ipv4AddrExt::to_u32`].
    fn from_u32(v: u32) -> Self;
    /// The enclosing /24 network address, used for the Figure 13 prefix
    /// aggregation.
    fn slash24(self) -> Ipv4Addr;
}

impl Ipv4AddrExt for Ipv4Addr {
    fn to_u32(self) -> u32 {
        u32::from(self)
    }

    fn from_u32(v: u32) -> Self {
        Ipv4Addr::from(v)
    }

    fn slash24(self) -> Ipv4Addr {
        Ipv4Addr::from(u32::from(self) & 0xFFFF_FF00)
    }
}

/// Result of the §2.1 user/server classification of one flow endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpClass {
    /// A subscriber-side address — must be anonymized before leaving the
    /// vantage point.
    User,
    /// A service-side address — kept in the clear; these are what the
    /// detection rules index.
    Server,
}

/// Classify one endpoint of a flow.
///
/// An endpoint is a *server* if (a) its port is well-known
/// ([`crate::ports::WELL_KNOWN_SERVER_PORTS`]) or (b) its address belongs to
/// an AS registered as a cloud or CDN provider. Everything else is treated
/// as a user endpoint.
pub fn classify_endpoint(ip: Ipv4Addr, port: u16, registry: &AsRegistry) -> IpClass {
    if is_well_known_server_port(port) {
        return IpClass::Server;
    }
    match registry.lookup(ip).map(|a| a.category) {
        Some(AsCategory::Cloud) | Some(AsCategory::Cdn) => IpClass::Server,
        _ => IpClass::User,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asn::{AsCategory, AsRegistry, Asn};
    use crate::prefix::Prefix4;

    fn registry() -> AsRegistry {
        let mut r = AsRegistry::new();
        r.register(Asn(64500), "cloudco", AsCategory::Cloud, vec![Prefix4::new(Ipv4Addr::new(198, 18, 0, 0), 16).unwrap()]);
        r.register(Asn(64501), "eyeball", AsCategory::Eyeball, vec![Prefix4::new(Ipv4Addr::new(100, 64, 0, 0), 10).unwrap()]);
        r.finalize();
        r
    }

    #[test]
    fn u32_round_trip() {
        let ip = Ipv4Addr::new(192, 0, 2, 77);
        assert_eq!(Ipv4Addr::from_u32(ip.to_u32()), ip);
    }

    #[test]
    fn slash24_masks_low_octet() {
        assert_eq!(Ipv4Addr::new(10, 1, 2, 200).slash24(), Ipv4Addr::new(10, 1, 2, 0));
    }

    #[test]
    fn well_known_port_makes_server() {
        let r = registry();
        // Even an eyeball-space IP on port 443 is a server endpoint.
        assert_eq!(classify_endpoint(Ipv4Addr::new(100, 64, 1, 1), 443, &r), IpClass::Server);
    }

    #[test]
    fn cloud_as_makes_server_regardless_of_port() {
        let r = registry();
        assert_eq!(classify_endpoint(Ipv4Addr::new(198, 18, 5, 5), 49152, &r), IpClass::Server);
    }

    #[test]
    fn eyeball_high_port_is_user() {
        let r = registry();
        assert_eq!(classify_endpoint(Ipv4Addr::new(100, 64, 1, 1), 49152, &r), IpClass::User);
        // Unregistered space on a high port is also user by default.
        assert_eq!(classify_endpoint(Ipv4Addr::new(203, 0, 113, 9), 40000, &r), IpClass::User);
    }
}
