//! Error type for the foundational network layer.

use std::fmt;

/// Errors produced while parsing or validating network-layer values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A CIDR prefix length outside `0..=32` was supplied.
    InvalidPrefixLen(u8),
    /// A textual prefix could not be parsed.
    InvalidPrefixSyntax(String),
    /// A timestamp fell outside the study window it was binned against.
    OutOfWindow {
        /// The offending timestamp (seconds since the simulation epoch).
        ts: u64,
        /// Start of the window (inclusive).
        start: u64,
        /// End of the window (exclusive).
        end: u64,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::InvalidPrefixLen(l) => write!(f, "invalid IPv4 prefix length /{l}"),
            NetError::InvalidPrefixSyntax(s) => write!(f, "invalid prefix syntax: {s:?}"),
            NetError::OutOfWindow { ts, start, end } => {
                write!(f, "timestamp {ts} outside study window [{start}, {end})")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        assert_eq!(
            NetError::InvalidPrefixLen(40).to_string(),
            "invalid IPv4 prefix length /40"
        );
        let e = NetError::OutOfWindow { ts: 7, start: 10, end: 20 };
        assert!(e.to_string().contains("outside study window"));
    }
}
