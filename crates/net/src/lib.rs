//! # haystack-net
//!
//! Foundational network types shared by every other `haystack` crate:
//!
//! * [`time`] — a simulated clock with the paper's study window
//!   (Nov 15 – Nov 28, 2019) and hour/day binning used by all figures.
//! * [`addr`] — IPv4 address helpers and the ISP's *user IP vs server IP*
//!   distinction (§2.1, "Ethical considerations ISP/IXP").
//! * [`ports`] — the port-class taxonomy of §3 (Web / NTP / DNS / Other).
//! * [`prefix`] — CIDR prefixes and the /24 aggregation used by Figure 13.
//! * [`asn`] — autonomous-system numbers and the eyeball/content/cloud
//!   taxonomy needed for the IXP analysis (§6.3, Figure 16).
//! * [`anonymize`] — the keyed one-way anonymization applied to user IPs
//!   before any record leaves a vantage point.
//! * [`snapshot`] — the versioned, checksummed binary snapshot codec the
//!   crash-safe checkpoint/restore machinery shares (DESIGN.md §12).
//! * [`framing`] — length-prefixed stream framing over the snapshot
//!   codec, used by the process-isolated detector pool (DESIGN.md §15).
//!
//! Everything here is deterministic and allocation-light; these types sit on
//! the hot path of the flow pipeline (millions of records per simulated
//! hour).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod anonymize;
pub mod asn;
pub mod error;
pub mod framing;
pub mod ports;
pub mod prefix;
pub mod snapshot;
pub mod time;

pub use addr::{IpClass, Ipv4AddrExt};
pub use anonymize::{AnonId, Anonymizer};
pub use asn::{AsCategory, AsRegistry, Asn};
pub use error::NetError;
pub use ports::{PortClass, WELL_KNOWN_SERVER_PORTS};
pub use prefix::{Prefix4, PrefixAggregator};
pub use time::{DayBin, HourBin, SimTime, StudyWindow};
