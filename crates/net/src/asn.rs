//! Autonomous systems and the AS taxonomy used at the IXP vantage point.
//!
//! §6.3 / Figure 16: *"While the IXP offers network connectivity for every
//! AS, only a few member ASes are large eyeballs … a small number of member
//! ASes are responsible for a large fraction of the IoT activity. Manual
//! checks showed that these are all eyeball ASes."* The reproduction needs
//! (a) an AS registry mapping prefixes to member ASes and (b) a category
//! per AS so the ECDF of Figure 16 can be grouped and so the user/server IP
//! split can recognize cloud/CDN space (§2.1).
//!
//! Lookup is by longest-prefix match over the registered prefixes, backed
//! by a sorted interval table — O(log n) per lookup, no per-lookup
//! allocation, which matters because the IXP pipeline classifies both ends
//! of every sampled flow.

use crate::prefix::Prefix4;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// An autonomous system number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Coarse category of an AS, following the paper's discussion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsCategory {
    /// Residential access network ("eyeball AS", [29] in the paper).
    Eyeball,
    /// Cloud/hosting provider (AWS-like); dedicated IoT backends often rent
    /// VMs here with exclusive public IPs (§4.2.1).
    Cloud,
    /// Content delivery network (Akamai-like); *shared* infrastructure that
    /// defeats IP-level attribution (§4.2.3).
    Cdn,
    /// Enterprise/content network running its own servers — the dedicated
    /// IoT-operator backends of Figure 1.
    Enterprise,
    /// Transit / other networks.
    Transit,
}

impl AsCategory {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            AsCategory::Eyeball => "eyeball",
            AsCategory::Cloud => "cloud",
            AsCategory::Cdn => "cdn",
            AsCategory::Enterprise => "enterprise",
            AsCategory::Transit => "transit",
        }
    }
}

/// Metadata for one registered AS.
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// The AS number.
    pub asn: Asn,
    /// Human-readable name ("org" field).
    pub name: String,
    /// Category used by the IXP analysis and the endpoint classifier.
    pub category: AsCategory,
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    start: u32,
    /// Inclusive end of the covered range.
    end: u32,
    len: u8,
    asn: Asn,
}

/// A registry of ASes and their originated prefixes with longest-prefix
/// match lookup.
///
/// ```
/// use haystack_net::{AsCategory, AsRegistry, Asn, Prefix4};
///
/// let mut reg = AsRegistry::new();
/// reg.register(Asn(64500), "cdn-co", AsCategory::Cdn, vec!["23.0.0.0/10".parse().unwrap()]);
/// reg.finalize();
/// let hit = reg.lookup("23.1.2.3".parse().unwrap()).unwrap();
/// assert_eq!(hit.asn, Asn(64500));
/// assert_eq!(hit.category, AsCategory::Cdn);
/// assert!(reg.lookup("24.0.0.1".parse().unwrap()).is_none());
/// ```
#[derive(Debug, Default, Clone)]
pub struct AsRegistry {
    info: HashMap<Asn, AsInfo>,
    intervals: Vec<Interval>,
    sorted: bool,
}

impl AsRegistry {
    /// New, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an AS with the prefixes it originates. Registering the same
    /// ASN again extends its prefix set and overwrites its metadata.
    pub fn register(
        &mut self,
        asn: Asn,
        name: impl Into<String>,
        category: AsCategory,
        prefixes: Vec<Prefix4>,
    ) {
        self.info.insert(asn, AsInfo { asn, name: name.into(), category });
        for p in prefixes {
            let start = u32::from(p.network());
            let end = start + (p.size() - 1);
            self.intervals.push(Interval { start, end, len: p.len(), asn });
        }
        self.sorted = false;
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // Sort by start, then by descending length so that for equal
            // starts the most specific prefix comes first.
            self.intervals
                .sort_by(|a, b| a.start.cmp(&b.start).then(b.len.cmp(&a.len)));
            self.sorted = true;
        }
    }

    /// Freeze the registry for lookups. Called automatically by the
    /// builder-style constructors in higher layers; exposed for callers
    /// that interleave registration and lookup.
    pub fn finalize(&mut self) {
        self.ensure_sorted();
    }

    /// Longest-prefix match. Returns the AS metadata of the most specific
    /// registered prefix covering `ip`, or `None` for unregistered space.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<&AsInfo> {
        debug_assert!(self.sorted || self.intervals.is_empty(), "AsRegistry::finalize not called");
        let v = u32::from(ip);
        // Partition point: first interval with start > v. Candidates are
        // before it; walk backwards until intervals can no longer cover v.
        let idx = self.intervals.partition_point(|i| i.start <= v);
        let mut best: Option<&Interval> = None;
        for i in self.intervals[..idx].iter().rev() {
            if i.end >= v {
                // CIDR prefixes are nested or disjoint, so any
                // earlier-starting interval that also covers `v` is wider
                // (less specific); keeping the max length is sufficient.
                match best {
                    Some(b) if b.len >= i.len => {}
                    _ => best = Some(i),
                }
            } else if best.is_some() {
                // A gap below the current match: every earlier covering
                // interval would be wider than the match we already hold.
                break;
            }
        }
        best.and_then(|i| self.info.get(&i.asn))
    }

    /// All registered ASes.
    pub fn ases(&self) -> impl Iterator<Item = &AsInfo> {
        self.info.values()
    }

    /// Metadata for a specific ASN.
    pub fn get(&self, asn: Asn) -> Option<&AsInfo> {
        self.info.get(&asn)
    }

    /// Number of registered ASes.
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// Whether no AS is registered.
    pub fn is_empty(&self) -> bool {
        self.info.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix4 {
        s.parse().unwrap()
    }

    fn registry() -> AsRegistry {
        let mut r = AsRegistry::new();
        r.register(Asn(100), "eyeball-a", AsCategory::Eyeball, vec![p("100.64.0.0/10")]);
        r.register(Asn(200), "cloud-x", AsCategory::Cloud, vec![p("198.18.0.0/16"), p("198.19.0.0/16")]);
        r.register(Asn(300), "cdn-y", AsCategory::Cdn, vec![p("198.18.128.0/17")]);
        r.finalize();
        r
    }

    #[test]
    fn basic_lookup() {
        let r = registry();
        assert_eq!(r.lookup(Ipv4Addr::new(100, 64, 3, 4)).unwrap().asn, Asn(100));
        assert_eq!(r.lookup(Ipv4Addr::new(198, 19, 0, 1)).unwrap().asn, Asn(200));
        assert!(r.lookup(Ipv4Addr::new(203, 0, 113, 1)).is_none());
    }

    #[test]
    fn longest_prefix_wins() {
        let r = registry();
        // 198.18.128.0/17 (CDN) is more specific than 198.18.0.0/16 (cloud).
        assert_eq!(r.lookup(Ipv4Addr::new(198, 18, 200, 1)).unwrap().asn, Asn(300));
        assert_eq!(r.lookup(Ipv4Addr::new(198, 18, 1, 1)).unwrap().asn, Asn(200));
    }

    #[test]
    fn boundaries_are_inclusive() {
        let r = registry();
        assert_eq!(r.lookup(Ipv4Addr::new(100, 64, 0, 0)).unwrap().asn, Asn(100));
        assert_eq!(r.lookup(Ipv4Addr::new(100, 127, 255, 255)).unwrap().asn, Asn(100));
        assert!(r.lookup(Ipv4Addr::new(100, 128, 0, 0)).is_none());
    }

    #[test]
    fn reregistering_extends_prefixes() {
        let mut r = registry();
        r.register(Asn(100), "eyeball-a", AsCategory::Eyeball, vec![p("203.0.113.0/24")]);
        r.finalize();
        assert_eq!(r.lookup(Ipv4Addr::new(203, 0, 113, 50)).unwrap().asn, Asn(100));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(Asn(64500).to_string(), "AS64500");
    }
}
