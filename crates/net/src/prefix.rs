//! CIDR prefixes and prefix-level aggregation.
//!
//! Two uses in the paper:
//!
//! * the Home-VP is a **/28 inside a /22 reserved for residential users**
//!   (§2.1), so the simulation needs prefix containment and sub-allocation;
//! * Figure 13's churn analysis aggregates detected subscriber lines to
//!   **/24 granularity** because subscriber identifiers rotate but their
//!   /24s are far more stable.

use crate::error::NetError;
use std::collections::HashSet;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix, stored in canonical form (host bits zeroed).
///
/// ```
/// use haystack_net::Prefix4;
/// use std::net::Ipv4Addr;
///
/// let p: Prefix4 = "100.64.4.0/22".parse().unwrap();
/// assert!(p.contains(Ipv4Addr::new(100, 64, 7, 255)));
/// let home_vp = p.subnet(28, 3).unwrap(); // the paper's /28 out of a /22
/// assert_eq!(home_vp.to_string(), "100.64.4.48/28");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix4 {
    net: u32,
    len: u8,
}

impl Prefix4 {
    /// Build a prefix from an address and length; host bits are masked off,
    /// so `Prefix4::new(10.0.0.7, 24)` is `10.0.0.0/24`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Result<Self, NetError> {
        if len > 32 {
            return Err(NetError::InvalidPrefixLen(len));
        }
        Ok(Prefix4 { net: u32::from(addr) & Self::mask(len), len })
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// Network address.
    pub fn network(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.net)
    }

    /// Prefix length.
    #[allow(clippy::len_without_is_empty)] // a /32 is a 1-address prefix, never "empty"
    pub fn len(&self) -> u8 {
        self.len
    }

    /// Number of addresses covered (saturates at `u32::MAX` for /0).
    pub fn size(&self) -> u32 {
        if self.len == 0 {
            u32::MAX
        } else {
            1u32 << (32 - u32::from(self.len))
        }
    }

    /// Whether `ip` falls inside this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask(self.len) == self.net
    }

    /// Whether `other` is fully contained in `self`.
    pub fn covers(&self, other: &Prefix4) -> bool {
        other.len >= self.len && (other.net & Self::mask(self.len)) == self.net
    }

    /// The `i`-th address of the prefix (panics if `i >= size()`), used by
    /// the population model to hand out subscriber addresses.
    pub fn nth(&self, i: u32) -> Ipv4Addr {
        debug_assert!(i < self.size(), "address index {i} out of /{} prefix", self.len);
        Ipv4Addr::from(self.net + i)
    }

    /// Carve the `i`-th sub-prefix of length `sub_len` out of this prefix,
    /// e.g. the /28 assigned to the Home-VP out of the residential /22.
    pub fn subnet(&self, sub_len: u8, i: u32) -> Result<Prefix4, NetError> {
        if sub_len > 32 || sub_len < self.len {
            return Err(NetError::InvalidPrefixLen(sub_len));
        }
        let step = 1u32 << (32 - u32::from(sub_len));
        Prefix4::new(Ipv4Addr::from(self.net + i * step), sub_len)
    }

    /// The enclosing /24 of an address — Figure 13's aggregation level.
    pub fn slash24_of(ip: Ipv4Addr) -> Prefix4 {
        Prefix4 { net: u32::from(ip) & 0xFFFF_FF00, len: 24 }
    }
}

impl fmt::Display for Prefix4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.len)
    }
}

impl FromStr for Prefix4 {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::InvalidPrefixSyntax(s.to_string()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| NetError::InvalidPrefixSyntax(s.to_string()))?;
        let len: u8 = len
            .parse()
            .map_err(|_| NetError::InvalidPrefixSyntax(s.to_string()))?;
        Prefix4::new(addr, len)
    }
}

/// Accumulates unique addresses and reports unique /24 counts — the Figure
/// 13 lower panel ("/24 Subscribers") in streaming form.
#[derive(Debug, Default, Clone)]
pub struct PrefixAggregator {
    addrs: HashSet<u32>,
    slash24s: HashSet<u32>,
}

impl PrefixAggregator {
    /// New, empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed subscriber address.
    pub fn observe(&mut self, ip: Ipv4Addr) {
        let v = u32::from(ip);
        self.addrs.insert(v);
        self.slash24s.insert(v & 0xFFFF_FF00);
    }

    /// Unique addresses observed so far (Figure 13 upper panel).
    pub fn unique_addrs(&self) -> usize {
        self.addrs.len()
    }

    /// Unique /24s observed so far (Figure 13 lower panel).
    pub fn unique_slash24s(&self) -> usize {
        self.slash24s.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_host_bits() {
        let p = Prefix4::new(Ipv4Addr::new(10, 0, 0, 7), 24).unwrap();
        assert_eq!(p.network(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(p.to_string(), "10.0.0.0/24");
    }

    #[test]
    fn rejects_bad_lengths() {
        assert!(Prefix4::new(Ipv4Addr::UNSPECIFIED, 33).is_err());
        assert!("10.0.0.0/33".parse::<Prefix4>().is_err());
        assert!("notanip/8".parse::<Prefix4>().is_err());
        assert!("10.0.0.0".parse::<Prefix4>().is_err());
    }

    #[test]
    fn containment() {
        let p: Prefix4 = "192.0.2.0/24".parse().unwrap();
        assert!(p.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!p.contains(Ipv4Addr::new(192, 0, 3, 0)));
        let slash22: Prefix4 = "192.0.0.0/22".parse().unwrap();
        assert!(slash22.covers(&p));
        assert!(!p.covers(&slash22));
        assert!(p.covers(&p));
    }

    #[test]
    fn home_vp_slash28_out_of_slash22() {
        // §2.1: a /28 reserved out of a /22 residential prefix.
        let residential: Prefix4 = "100.64.4.0/22".parse().unwrap();
        let home = residential.subnet(28, 3).unwrap();
        assert_eq!(home.to_string(), "100.64.4.48/28");
        assert_eq!(home.size(), 16);
        assert!(residential.covers(&home));
    }

    #[test]
    fn subnet_rejects_shorter_than_parent() {
        let p: Prefix4 = "10.0.0.0/16".parse().unwrap();
        assert!(p.subnet(8, 0).is_err());
    }

    #[test]
    fn nth_enumerates_addresses() {
        let p: Prefix4 = "198.51.100.16/28".parse().unwrap();
        assert_eq!(p.nth(0), Ipv4Addr::new(198, 51, 100, 16));
        assert_eq!(p.nth(15), Ipv4Addr::new(198, 51, 100, 31));
    }

    #[test]
    fn aggregator_counts_slash24s() {
        let mut agg = PrefixAggregator::new();
        agg.observe(Ipv4Addr::new(10, 0, 0, 1));
        agg.observe(Ipv4Addr::new(10, 0, 0, 2));
        agg.observe(Ipv4Addr::new(10, 0, 1, 1));
        agg.observe(Ipv4Addr::new(10, 0, 0, 1)); // duplicate
        assert_eq!(agg.unique_addrs(), 3);
        assert_eq!(agg.unique_slash24s(), 2);
    }

    #[test]
    fn size_of_zero_len_saturates() {
        let p = Prefix4::new(Ipv4Addr::UNSPECIFIED, 0).unwrap();
        assert_eq!(p.size(), u32::MAX);
        assert!(p.contains(Ipv4Addr::new(255, 255, 255, 255)));
    }
}
