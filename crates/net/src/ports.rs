//! Port-class taxonomy.
//!
//! §3 of the paper separates observable activity into **Web services**
//! (ports 443, 80, 8080), **NTP services** (port 123), and **other
//! services** (everything else) — Figure 5(c) plots cumulative service IPs
//! per class. §2.1 additionally uses a list of *well-known server ports*
//! (web, NTP, DNS, …) to tell server IPs apart from user IPs before
//! anonymization.

/// Transport protocol of a flow. NetFlow/IPFIX report this as IANA protocol
/// numbers; we only distinguish the two that matter for the methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    /// TCP (protocol 6). The IXP pipeline requires established TCP (§6.3).
    Tcp,
    /// UDP (protocol 17) — NTP, DNS, and several device heartbeats.
    Udp,
}

impl Proto {
    /// IANA protocol number, as carried in NetFlow v9 / IPFIX records.
    pub fn number(self) -> u8 {
        match self {
            Proto::Tcp => 6,
            Proto::Udp => 17,
        }
    }

    /// Parse an IANA protocol number; anything that is not TCP/UDP is
    /// rejected (the methodology only consumes TCP and UDP flows).
    pub fn from_number(n: u8) -> Option<Proto> {
        match n {
            6 => Some(Proto::Tcp),
            17 => Some(Proto::Udp),
            _ => None,
        }
    }
}

/// The paper's §3 port classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortClass {
    /// Ports 80, 443, 8080.
    Web,
    /// Port 123.
    Ntp,
    /// Port 53. DNS traffic is *excluded* from the §3 visibility analysis
    /// ("We explicitly exclude DNS traffic, since it is not IoT-specific"),
    /// so it gets its own class rather than folding into `Other`.
    Dns,
    /// Every other port.
    Other,
}

impl PortClass {
    /// Classify a server-side port.
    pub fn of(port: u16) -> PortClass {
        match port {
            80 | 443 | 8080 => PortClass::Web,
            123 => PortClass::Ntp,
            53 => PortClass::Dns,
            _ => PortClass::Other,
        }
    }

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            PortClass::Web => "Web",
            PortClass::Ntp => "NTP",
            PortClass::Dns => "DNS",
            PortClass::Other => "Other",
        }
    }
}

/// Well-known server ports used by the vantage points to classify an IP as a
/// *server IP* (§2.1: "e.g., web ports (80, 443, 8080), NTP (123), DNS
/// (53)"), extended with the common IoT service ports seen in the ground
/// truth (MQTT 1883/8883, XMPP 5222/5223, CoAP 5683).
pub const WELL_KNOWN_SERVER_PORTS: &[u16] =
    &[80, 443, 8080, 123, 53, 1883, 8883, 5222, 5223, 5683, 8443];

/// Whether `port` marks the owning endpoint as a server for the purposes of
/// the user-vs-server IP split.
pub fn is_well_known_server_port(port: u16) -> bool {
    WELL_KNOWN_SERVER_PORTS.contains(&port)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn web_class_matches_paper() {
        for p in [80u16, 443, 8080] {
            assert_eq!(PortClass::of(p), PortClass::Web);
        }
        assert_eq!(PortClass::of(123), PortClass::Ntp);
        assert_eq!(PortClass::of(53), PortClass::Dns);
        assert_eq!(PortClass::of(8883), PortClass::Other);
        assert_eq!(PortClass::of(0), PortClass::Other);
    }

    #[test]
    fn proto_numbers_round_trip() {
        assert_eq!(Proto::from_number(Proto::Tcp.number()), Some(Proto::Tcp));
        assert_eq!(Proto::from_number(Proto::Udp.number()), Some(Proto::Udp));
        assert_eq!(Proto::from_number(1), None); // ICMP is out of scope
    }

    #[test]
    fn well_known_ports_include_paper_examples() {
        for p in [80u16, 443, 8080, 123, 53] {
            assert!(is_well_known_server_port(p), "port {p} must be well-known");
        }
        assert!(!is_well_known_server_port(51234));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(PortClass::Web.label(), "Web");
        assert_eq!(PortClass::Ntp.label(), "NTP");
        assert_eq!(PortClass::Dns.label(), "DNS");
        assert_eq!(PortClass::Other.label(), "Other");
    }
}
