//! The binary snapshot codec every crash-safe component shares.
//!
//! Long-lived pipeline state — detector line maps, collector template
//! caches, stream watermarks — is persisted as *framed* snapshots:
//! an 8-byte magic, a format version, a length-prefixed payload, and a
//! trailing FNV-1a checksum over everything before it. [`seal`] builds a
//! frame, [`open`] verifies one; a truncated or bit-flipped frame is a
//! typed [`SnapError`], never a panic, so checkpoint loaders can fall
//! back to an older generation (DESIGN.md §12).
//!
//! [`SnapWriter`] / [`SnapReader`] are the little-endian payload codec.
//! Every integer is fixed-width, every byte string is length-prefixed,
//! and floats travel as raw IEEE-754 bits ([`SnapWriter::put_f64_bits`])
//! so a restore replays *bit-identical* state — the staleness monitor's
//! decayed baselines depend on exact float fold order, and a snapshot
//! must not launder them through a decimal representation.

use std::fmt;

/// Length of a frame magic, in bytes.
pub const MAGIC_LEN: usize = 8;

/// Fixed frame overhead: magic + version + payload length + checksum.
pub const FRAME_OVERHEAD: usize = MAGIC_LEN + 4 + 8 + 8;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the announced content did.
    Truncated,
    /// The frame's magic does not match the expected component magic.
    BadMagic,
    /// The frame's format version is not the one this build reads.
    BadVersion {
        /// Version found in the frame.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// The trailing checksum does not match the frame contents.
    Checksum {
        /// Checksum recorded in the frame.
        stored: u64,
        /// Checksum computed over the frame contents.
        computed: u64,
    },
    /// Structurally invalid payload (impossible count, bad tag, …).
    Malformed(&'static str),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::BadMagic => write!(f, "snapshot magic mismatch"),
            SnapError::BadVersion { found, expected } => {
                write!(f, "snapshot version {found} (this build reads {expected})")
            }
            SnapError::Checksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapError::Malformed(what) => write!(f, "snapshot malformed: {what}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// FNV-1a 64-bit over `bytes` — the frame checksum. Not cryptographic;
/// it detects truncation and bit rot, which is the fault model here
/// (local disk, not an adversary).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Wrap `payload` in a checksummed frame.
pub fn seal(magic: &[u8; MAGIC_LEN], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Verify a frame and return its payload slice. Checks, in order:
/// length, magic, version, payload length, checksum.
pub fn open<'a>(
    magic: &[u8; MAGIC_LEN],
    version: u32,
    frame: &'a [u8],
) -> Result<&'a [u8], SnapError> {
    if frame.len() < FRAME_OVERHEAD {
        return Err(SnapError::Truncated);
    }
    if &frame[..MAGIC_LEN] != magic {
        return Err(SnapError::BadMagic);
    }
    let found = u32::from_le_bytes(frame[MAGIC_LEN..MAGIC_LEN + 4].try_into().unwrap());
    if found != version {
        return Err(SnapError::BadVersion { found, expected: version });
    }
    let len =
        u64::from_le_bytes(frame[MAGIC_LEN + 4..MAGIC_LEN + 12].try_into().unwrap()) as usize;
    if frame.len() != FRAME_OVERHEAD + len {
        return Err(SnapError::Truncated);
    }
    let body_end = frame.len() - 8;
    let stored = u64::from_le_bytes(frame[body_end..].try_into().unwrap());
    let computed = fnv1a64(&frame[..body_end]);
    if stored != computed {
        return Err(SnapError::Checksum { stored, computed });
    }
    Ok(&frame[MAGIC_LEN + 12..body_end])
}

/// Whether a frame's trailing checksum matches its contents, regardless
/// of magic or version. [`open`] checks the version *before* the
/// checksum, so a `BadVersion` alone cannot distinguish "written by a
/// different build" from "bit rot that happened to land on the version
/// word". Loaders that want to report version skew precisely (resume
/// validation, daemon restarts) call this first: checksum-valid +
/// `BadVersion` is genuine skew worth a targeted error; checksum-invalid
/// is corruption and falls back to an older generation.
pub fn checksum_ok(frame: &[u8]) -> bool {
    if frame.len() < FRAME_OVERHEAD {
        return false;
    }
    let body_end = frame.len() - 8;
    let stored = u64::from_le_bytes(frame[body_end..].try_into().unwrap());
    stored == fnv1a64(&frame[..body_end])
}

/// The version word of a frame, without verifying anything else.
/// Returns `None` when the buffer is too short to even carry one.
pub fn peek_version(frame: &[u8]) -> Option<u32> {
    if frame.len() < MAGIC_LEN + 4 {
        return None;
    }
    Some(u32::from_le_bytes(frame[MAGIC_LEN..MAGIC_LEN + 4].try_into().unwrap()))
}

/// Little-endian payload writer. All methods append; call
/// [`SnapWriter::into_bytes`] to take the buffer.
#[derive(Debug, Default)]
pub struct SnapWriter {
    buf: Vec<u8>,
}

impl SnapWriter {
    /// An empty writer.
    pub fn new() -> SnapWriter {
        SnapWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its raw IEEE-754 bits (exact round trip).
    pub fn put_f64_bits(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Take the accumulated payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Little-endian payload reader over a borrowed buffer. Every read is
/// bounds-checked and returns [`SnapError::Truncated`] instead of
/// panicking.
#[derive(Debug)]
pub struct SnapReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapReader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> SnapReader<'a> {
        SnapReader { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Read a `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Read a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its raw bits.
    pub fn f64_bits(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.u64()? as usize;
        self.take(len)
    }

    /// Read a count field, rejecting values that could not possibly fit
    /// in the remaining buffer (defends against allocating from a
    /// corrupted length before the checksum is consulted).
    pub fn count(&mut self, min_item_bytes: usize) -> Result<usize, SnapError> {
        let n = self.u64()? as usize;
        if min_item_bytes > 0 && n > self.remaining() / min_item_bytes {
            return Err(SnapError::Malformed("impossible element count"));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"HAYTEST\0";

    #[test]
    fn payload_round_trips() {
        let mut w = SnapWriter::new();
        w.put_u8(7);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 3);
        w.put_f64_bits(-0.0);
        w.put_f64_bits(f64::from_bits(0x7FF0_0000_0000_0001)); // a signaling NaN pattern
        w.put_bytes(b"hello");
        w.put_str("wörld");
        let bytes = w.into_bytes();
        let mut r = SnapReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.f64_bits().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64_bits().unwrap().to_bits(), 0x7FF0_0000_0000_0001);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.bytes().unwrap(), "wörld".as_bytes());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn sealed_frame_opens() {
        let frame = seal(MAGIC, 3, b"payload");
        assert_eq!(open(MAGIC, 3, &frame).unwrap(), b"payload");
    }

    #[test]
    fn truncation_is_detected() {
        let frame = seal(MAGIC, 1, &[9u8; 100]);
        for cut in [0usize, 5, FRAME_OVERHEAD, frame.len() - 1] {
            assert_eq!(open(MAGIC, 1, &frame[..cut]), Err(SnapError::Truncated), "cut {cut}");
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let frame = seal(MAGIC, 1, b"some state worth protecting");
        for i in 0..frame.len() {
            for bit in 0..8 {
                let mut bad = frame.clone();
                bad[i] ^= 1 << bit;
                assert!(open(MAGIC, 1, &bad).is_err(), "flip byte {i} bit {bit} not caught");
            }
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let frame = seal(MAGIC, 2, b"x");
        assert_eq!(open(b"OTHERMAG", 2, &frame), Err(SnapError::BadMagic));
        assert_eq!(
            open(MAGIC, 3, &frame),
            Err(SnapError::BadVersion { found: 2, expected: 3 })
        );
    }

    #[test]
    fn reader_never_panics_on_garbage() {
        let garbage = [0xFFu8; 16];
        let mut r = SnapReader::new(&garbage);
        // A corrupted length prefix must not trigger a huge allocation
        // or a slice panic.
        assert!(r.bytes().is_err());
        let mut r = SnapReader::new(&garbage);
        assert!(r.count(4).is_err());
    }

    #[test]
    fn checksum_ok_separates_skew_from_rot() {
        let frame = seal(MAGIC, 2, b"state");
        // Intact frame from a different version: checksum holds, version peeks.
        assert!(checksum_ok(&frame));
        assert_eq!(peek_version(&frame), Some(2));
        assert_eq!(open(MAGIC, 3, &frame), Err(SnapError::BadVersion { found: 2, expected: 3 }));
        // Flip a bit in the version word: open still says BadVersion, but
        // the checksum now betrays corruption.
        let mut rotten = frame.clone();
        rotten[MAGIC_LEN] ^= 0x04;
        assert!(matches!(open(MAGIC, 2, &rotten), Err(SnapError::BadVersion { .. })));
        assert!(!checksum_ok(&rotten));
        // Too-short buffers are never checksum-valid.
        assert!(!checksum_ok(&frame[..4]));
        assert_eq!(peek_version(&frame[..4]), None);
    }

    #[test]
    fn empty_payload_is_legal() {
        let frame = seal(MAGIC, 1, &[]);
        assert_eq!(open(MAGIC, 1, &frame).unwrap(), b"");
    }
}
