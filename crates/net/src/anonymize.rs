//! Keyed one-way anonymization of user IPs.
//!
//! §2.1: *"We distinguish user IPs from server IPs and anonymize by hashing
//! all user IPs."* The hash must be
//!
//! * **one-way** — the raw subscriber address never leaves the vantage
//!   point;
//! * **keyed** — so two deployments (or two days, if the operator rotates
//!   keys) cannot be joined offline;
//! * **stable within a deployment** — the detector must recognize the same
//!   anonymized subscriber across the whole study window to accumulate
//!   evidence (§4.3.2) and count unique lines (Figure 11).
//!
//! We implement a small, dependency-free 64-bit keyed permutation-based
//! hash (xorshift-multiply rounds seeded by a 128-bit key, in the spirit of
//! SplitMix64). It is *not* meant to resist cryptanalytic attack — for a
//! production deployment substitute a keyed SipHash/BLAKE2 — but it is
//! uniform, deterministic, and collision-free in practice for the ≤2³²
//! possible IPv4 inputs under a fixed key.

use std::net::Ipv4Addr;

/// An anonymized subscriber-line identifier.
///
/// This is what the detector uses as its per-line key; the raw address is
/// only retained inside the vantage point for /24 aggregation (Figure 13),
/// which the paper's setup also keeps on-premises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AnonId(pub u64);

/// A keyed anonymizer.
#[derive(Debug, Clone, Copy)]
pub struct Anonymizer {
    k0: u64,
    k1: u64,
}

impl Anonymizer {
    /// Create an anonymizer from a 128-bit key.
    pub fn new(k0: u64, k1: u64) -> Self {
        Anonymizer { k0, k1 }
    }

    /// Anonymize one user IP.
    pub fn anonymize(&self, ip: Ipv4Addr) -> AnonId {
        let mut z = u64::from(u32::from(ip)) ^ self.k0;
        // Three SplitMix64-style mixing rounds keyed on both halves.
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15 ^ self.k1);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= self.k1.rotate_left(17);
        z = (z ^ (z >> 31)).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        AnonId(z ^ (z >> 29))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic_under_same_key() {
        let a = Anonymizer::new(1, 2);
        let ip = Ipv4Addr::new(100, 64, 9, 9);
        assert_eq!(a.anonymize(ip), a.anonymize(ip));
    }

    #[test]
    fn different_keys_give_different_ids() {
        let a = Anonymizer::new(1, 2);
        let b = Anonymizer::new(3, 4);
        let ip = Ipv4Addr::new(100, 64, 9, 9);
        assert_ne!(a.anonymize(ip), b.anonymize(ip));
    }

    #[test]
    fn no_collisions_on_dense_block() {
        // 2^16 consecutive subscriber addresses must map to distinct ids —
        // a collision would merge two subscriber lines in every figure.
        let a = Anonymizer::new(0xDEAD_BEEF, 0xFEED_FACE);
        let mut seen = HashSet::with_capacity(1 << 16);
        for i in 0..(1u32 << 16) {
            let ip = Ipv4Addr::from(0x6440_0000 + i); // 100.64.0.0 block
            assert!(seen.insert(a.anonymize(ip)), "collision at index {i}");
        }
    }

    #[test]
    fn output_is_well_spread() {
        // Crude uniformity check: high bit set for roughly half the inputs.
        let a = Anonymizer::new(7, 11);
        let n = 10_000u32;
        let high = (0..n)
            .filter(|i| a.anonymize(Ipv4Addr::from(0x0A00_0000 + i)).0 >> 63 == 1)
            .count();
        let frac = high as f64 / n as f64;
        assert!((0.45..0.55).contains(&frac), "high-bit fraction {frac}");
    }
}
