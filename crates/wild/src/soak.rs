//! Wild-scale soak traffic — the §6 deployment regime in miniature.
//!
//! The paper's collector watches ~15 M subscriber lines where almost
//! every sampled flow is irrelevant to the hitlist: the detector's hot
//! path is a ~99% *miss* path. [`SoakStream`] reproduces that shape at
//! configurable scale: a deterministic, stateless generator of hours of
//! per-line flow records in which a tunable fraction (default 1%) hits
//! a supplied (service IP, port) target set and the rest lands in
//! TEST-NET-3 (`203.0.113.0/24`), guaranteed disjoint from any rule's
//! service IPs.
//!
//! *Stateless* is the load-bearing property: record `i` of hour
//! `(day, hour)` is a pure function of `(seed, day, hour, i)`, so a
//! resumed soak positions the stream with a watermark ([`crate::
//! skip_chunks`]) and regenerates byte-identical traffic — the same
//! contract the ISP vantage gives `detect --resume`, without paying for
//! a materialized world at 10⁶ lines.

use crate::record::WildRecord;
use crate::stream::{RecordChunk, RecordStream};
use haystack_net::{AnonId, HourBin, Prefix4};
use std::net::Ipv4Addr;

/// Shape of a soak run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoakConfig {
    /// Subscriber-line population (the paper's unit of detection).
    pub lines: u32,
    /// Generator seed.
    pub seed: u64,
    /// Hit probability in parts per million (10 000 ppm = 1% — i.e. the
    /// realistic ~99% miss rate).
    pub hit_rate_ppm: u32,
    /// Records generated per simulated hour.
    pub records_per_hour: u64,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            lines: 1_000_000,
            seed: 42,
            hit_rate_ppm: 10_000,
            records_per_hour: 1_000_000,
        }
    }
}

/// splitmix64 — the statelessness workhorse: one multiply-xor cascade
/// per record, no table state to checkpoint.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One simulated hour of soak traffic as a [`RecordStream`].
///
/// Misses (the overwhelming majority) go to `203.0.113.x:443`; hits are
/// drawn uniformly from `targets`. An empty target set degrades to a
/// 100% miss stream.
#[derive(Debug)]
pub struct SoakStream<'a> {
    targets: &'a [(Ipv4Addr, u16)],
    config: SoakConfig,
    day: u32,
    hour: u32,
    chunk_records: usize,
    /// Next record index within the hour.
    next: u64,
}

impl<'a> SoakStream<'a> {
    /// Stream hour `(day, hour)` in chunks of `chunk_records`.
    pub fn hour(
        targets: &'a [(Ipv4Addr, u16)],
        config: SoakConfig,
        day: u32,
        hour: u32,
        chunk_records: usize,
    ) -> Self {
        SoakStream { targets, config, day, hour, chunk_records: chunk_records.max(1), next: 0 }
    }

    /// The record at index `i` of this hour — a pure function of
    /// `(seed, day, hour, i)`.
    fn record(&self, i: u64) -> WildRecord {
        let c = &self.config;
        let h = splitmix64(
            c.seed
                ^ (u64::from(self.day) << 37)
                ^ (u64::from(self.hour) << 32)
                ^ i.wrapping_mul(0x2545_F491_4F6C_DD1D),
        );
        let line = h % u64::from(c.lines.max(1));
        let src = Ipv4Addr::new(100, 64, (line >> 8) as u8, line as u8);
        let hit = !self.targets.is_empty()
            && (h >> 8) % 1_000_000 < u64::from(c.hit_rate_ppm);
        let (dst, dport) = if hit {
            self.targets[(h >> 32) as usize % self.targets.len()]
        } else {
            (Ipv4Addr::new(203, 0, 113, (h >> 40) as u8), 443)
        };
        let packets = 1 + (h >> 48) % 8;
        WildRecord {
            line: AnonId(line),
            line_slash24: Prefix4::slash24_of(src),
            src_ip: src,
            dst,
            dport,
            proto: haystack_net::ports::Proto::Tcp,
            packets,
            bytes: packets * 420,
            established: true,
            hour: HourBin(self.day * 24 + self.hour),
        }
    }
}

impl RecordStream for SoakStream<'_> {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        out.clear();
        if self.next >= self.config.records_per_hour {
            return false;
        }
        let end = self
            .next
            .saturating_add(self.chunk_records as u64)
            .min(self.config.records_per_hour);
        out.records.reserve((end - self.next) as usize);
        for i in self.next..end {
            let r = self.record(i);
            out.sampled_packets += r.packets;
            out.records.push(r);
        }
        self.next = end;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{materialize, skip_chunks};

    fn targets() -> Vec<(Ipv4Addr, u16)> {
        vec![
            (Ipv4Addr::new(198, 18, 8, 1), 443),
            (Ipv4Addr::new(198, 18, 8, 2), 8883),
        ]
    }

    fn config() -> SoakConfig {
        SoakConfig { lines: 50_000, seed: 7, hit_rate_ppm: 10_000, records_per_hour: 40_000 }
    }

    #[test]
    fn generation_is_deterministic_and_chunking_invariant() {
        let t = targets();
        let a = materialize(&mut SoakStream::hour(&t, config(), 1, 3, 512));
        let b = materialize(&mut SoakStream::hour(&t, config(), 1, 3, 4096));
        assert_eq!(a.records, b.records, "chunk size must not change the traffic");
        assert_eq!(a.sampled_packets, b.sampled_packets);
        assert_eq!(a.records.len() as u64, config().records_per_hour);
    }

    #[test]
    fn hit_rate_is_approximately_one_percent_and_misses_are_disjoint() {
        let t = targets();
        let hour = materialize(&mut SoakStream::hour(&t, config(), 0, 0, 8_192));
        let hits = hour
            .records
            .iter()
            .filter(|r| t.iter().any(|&(ip, port)| r.dst == ip && r.dport == port))
            .count();
        let rate = hits as f64 / hour.records.len() as f64;
        assert!((0.005..0.02).contains(&rate), "hit rate {rate} far from 1%");
        // Every non-hit lands in TEST-NET-3, never on a target IP.
        for r in &hour.records {
            let on_target = t.iter().any(|&(ip, _)| r.dst == ip);
            assert!(on_target || r.dst.octets()[..3] == [203, 0, 113]);
        }
    }

    #[test]
    fn watermark_skip_lands_mid_hour_exactly() {
        let t = targets();
        let whole = materialize(&mut SoakStream::hour(&t, config(), 2, 5, 1_000));
        let mut resumed = SoakStream::hour(&t, config(), 2, 5, 1_000);
        let skipped = skip_chunks(&mut resumed, 7);
        assert_eq!(skipped, 7);
        let tail = materialize(&mut resumed);
        assert_eq!(&whole.records[7_000..], &tail.records[..]);
    }

    #[test]
    fn distinct_hours_produce_distinct_traffic() {
        let t = targets();
        let a = materialize(&mut SoakStream::hour(&t, config(), 0, 0, 8_192));
        let b = materialize(&mut SoakStream::hour(&t, config(), 0, 1, 8_192));
        assert_ne!(a.records, b.records);
    }
}
