//! The flow record a wild vantage point hands to the detector.
//!
//! The testbed pipeline carries real NetFlow v9 / IPFIX datagrams through
//! `haystack-flow`'s codecs; at population scale, re-encoding tens of
//! millions of records buys nothing analytically, so the wild vantage
//! points emit this decoded form directly (the codecs are exercised
//! end-to-end by the ground-truth pipeline and its integration tests; see
//! DESIGN.md). Fields mirror exactly what §2.1's setup exposes: an
//! anonymized subscriber identity, the /24 kept on-premises for Figure 13,
//! and the server side in the clear.

use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use std::net::Ipv4Addr;

/// One hour-aggregated, sampled flow observation at a wild vantage point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WildRecord {
    /// Anonymized subscriber line (ISP) or remote client identity (IXP).
    pub line: AnonId,
    /// The /24 of the subscriber address (retained on-premises only).
    pub line_slash24: Prefix4,
    /// Raw client address — used by the IXP pipeline, which counts unique
    /// IPs (it has no subscriber-line notion); the ISP pipeline must not
    /// use it (and its reports only consume `line`).
    pub src_ip: Ipv4Addr,
    /// Service address.
    pub dst: Ipv4Addr,
    /// Service port.
    pub dport: u16,
    /// Transport protocol.
    pub proto: Proto,
    /// Sampled packet count within the hour.
    pub packets: u64,
    /// Sampled byte count within the hour.
    pub bytes: u64,
    /// §6.3 anti-spoofing evidence: at least one sampled TCP packet
    /// carried no SYN/FIN/RST (always true for UDP).
    pub established: bool,
    /// The hour bin.
    pub hour: HourBin,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_compact() {
        // The wild pipeline holds millions of these per simulated hour;
        // guard against accidental growth.
        assert!(std::mem::size_of::<WildRecord>() <= 72);
    }
}
