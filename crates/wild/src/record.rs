//! The flow record a wild vantage point hands to the detector.
//!
//! The testbed pipeline carries real NetFlow v9 / IPFIX datagrams through
//! `haystack-flow`'s codecs; at population scale, re-encoding tens of
//! millions of records buys nothing analytically, so the wild vantage
//! points emit this decoded form directly (the codecs are exercised
//! end-to-end by the ground-truth pipeline and its integration tests; see
//! DESIGN.md). Fields mirror exactly what §2.1's setup exposes: an
//! anonymized subscriber identity, the /24 kept on-premises for Figure 13,
//! and the server side in the clear.

use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use std::net::Ipv4Addr;

/// One hour-aggregated, sampled flow observation at a wild vantage point.
///
/// `repr(C)` with a hand-chosen field order: the detector's fingerprint
/// gate (DESIGN.md §10) touches exactly `dst` + `dport` per record, and
/// the fixed layout keeps them adjacent — one cache-line touch per
/// record in the gate loop — while packing the struct to 48 bytes (no
/// padding anywhere but the tail of `line_slash24`; the wild pipeline
/// holds millions of records per simulated hour, so a stray
/// rustc-chosen layout regressing either property would cost real
/// throughput and memory).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct WildRecord {
    /// Anonymized subscriber line (ISP) or remote client identity (IXP).
    pub line: AnonId,
    /// Sampled packet count within the hour.
    pub packets: u64,
    /// Sampled byte count within the hour.
    pub bytes: u64,
    /// The /24 of the subscriber address (retained on-premises only).
    pub line_slash24: Prefix4,
    /// Raw client address — used by the IXP pipeline, which counts unique
    /// IPs (it has no subscriber-line notion); the ISP pipeline must not
    /// use it (and its reports only consume `line`).
    pub src_ip: Ipv4Addr,
    /// Service address.
    pub dst: Ipv4Addr,
    /// Service port.
    pub dport: u16,
    /// Transport protocol.
    pub proto: Proto,
    /// §6.3 anti-spoofing evidence: at least one sampled TCP packet
    /// carried no SYN/FIN/RST (always true for UDP).
    pub established: bool,
    /// The hour bin.
    pub hour: HourBin,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_compact() {
        // Guard the layout properties the hot path banks on (see
        // struct docs): 48 bytes flat, detector-read fields adjacent.
        assert_eq!(std::mem::size_of::<WildRecord>(), 48);
        assert_eq!(
            std::mem::offset_of!(WildRecord, dport),
            std::mem::offset_of!(WildRecord, dst) + 4,
        );
    }
}
