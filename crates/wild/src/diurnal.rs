//! Human-activity curves.
//!
//! §6.2: *"during the day, network activity increases as the users
//! interact with the IoT devices while it decreases during the night …
//! Samsung IoT devices have a small spike in the mornings before
//! gradually reaching their peak around 18:00"* and Alexa-enabled devices
//! keep *"a significant baseline during the night"*. The curves here feed
//! the wild generator's per-hour active-use probability; idle chatter is
//! flat by construction (devices heartbeat around the clock).

use haystack_testbed::catalog::Category;

/// Usage-intensity shape by hour of day, in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsageShape {
    /// Evening-heavy entertainment (smart speakers, TVs): strong 18–22 h
    /// peak, small morning shoulder.
    Entertainment,
    /// Morning + evening household routine (appliances, thermostats).
    Household,
    /// Mostly flat with a mild daytime lift (cameras, hubs, sensors).
    Ambient,
}

impl UsageShape {
    /// Pick a shape for a device category.
    pub fn for_category(c: Category) -> UsageShape {
        match c {
            Category::Audio | Category::Video => UsageShape::Entertainment,
            Category::Appliances | Category::HomeAutomation => UsageShape::Household,
            Category::Surveillance | Category::SmartHubs => UsageShape::Ambient,
        }
    }

    /// Relative usage intensity at `hour_of_day` (0..24), normalized so
    /// the daily peak is 1.0.
    pub fn intensity(self, hour_of_day: u32) -> f64 {
        let h = f64::from(hour_of_day % 24);
        let bump = |center: f64, width: f64| -> f64 {
            // Wrap-around Gaussian bump.
            let mut d = (h - center).abs();
            if d > 12.0 {
                d = 24.0 - d;
            }
            (-d * d / (2.0 * width * width)).exp()
        };
        match self {
            UsageShape::Entertainment => (bump(20.0, 2.5) + 0.25 * bump(7.5, 1.5)).min(1.0),
            UsageShape::Household => (0.8 * bump(18.5, 2.5) + 0.55 * bump(7.0, 1.5)).min(1.0),
            UsageShape::Ambient => 0.35 + 0.25 * bump(15.0, 5.0),
        }
    }
}

/// Probability that an owner actively uses a device of `shape` during a
/// given hour, scaled by the device's `peak_use` propensity.
pub fn active_use_probability(shape: UsageShape, peak_use: f64, hour_of_day: u32) -> f64 {
    (peak_use * shape.intensity(hour_of_day)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entertainment_peaks_in_the_evening() {
        let s = UsageShape::Entertainment;
        let evening = s.intensity(20);
        assert!(evening > s.intensity(3) * 5.0, "evening {evening} vs night");
        assert!(evening > s.intensity(12));
        let peak_hour = (0..24).max_by(|a, b| {
            s.intensity(*a).partial_cmp(&s.intensity(*b)).unwrap()
        });
        assert!((18..=22).contains(&peak_hour.unwrap()));
    }

    #[test]
    fn household_has_morning_shoulder() {
        let s = UsageShape::Household;
        assert!(s.intensity(7) > s.intensity(12), "morning bump beats midday");
        assert!(s.intensity(18) > s.intensity(7), "evening peak beats morning");
    }

    #[test]
    fn ambient_is_flat_ish() {
        let s = UsageShape::Ambient;
        let vals: Vec<f64> = (0..24).map(|h| s.intensity(h)).collect();
        let max = vals.iter().cloned().fold(0.0, f64::max);
        let min = vals.iter().cloned().fold(1.0, f64::min);
        assert!(max / min < 2.0, "ambient spread too wide: {min}..{max}");
    }

    #[test]
    fn probabilities_are_clamped() {
        for h in 0..24 {
            let p = active_use_probability(UsageShape::Entertainment, 5.0, h);
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn category_mapping() {
        assert_eq!(UsageShape::for_category(Category::Audio), UsageShape::Entertainment);
        assert_eq!(UsageShape::for_category(Category::Appliances), UsageShape::Household);
        assert_eq!(UsageShape::for_category(Category::Surveillance), UsageShape::Ambient);
    }
}
