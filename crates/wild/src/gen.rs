//! The population-scale flow generator.
//!
//! For one hour it produces the **sampled** flow records a vantage point
//! would export, without materializing individual packets:
//!
//! 1. For each (owning line, product), the line's total packet rate this
//!    hour is `Λ = idle + [active-use] · surplus`; under 1-in-`s` packet
//!    sampling the sampled count is `Poisson(Λ/s)` (Poisson thinning).
//! 2. Each sampled packet is attributed to a domain by the plan's weight
//!    table (exact Poisson splitting), then to one of the addresses the
//!    domain resolves to *this hour* (live DNS rotation).
//! 3. Sampled packets aggregate into per-(line, dst, port) records; a
//!    record earns `established` evidence if any of its sampled TCP
//!    packets was a non-SYN segment (probability `1 − 1/session_len`),
//!    reproducing what cumulative flags look like under sparse sampling.
//!
//! The procedure is distribution-identical to generating every packet and
//! sampling 1-in-`s` (see `benches/sampling_equivalence`), but costs
//! O(lines·products + sampled packets) instead of O(all packets).

use crate::diurnal::active_use_probability;
use crate::plan::{ContactPlan, ProductPlan};
use crate::population::Population;
use crate::record::WildRecord;
use crate::stream::{RecordChunk, RecordStream};
use haystack_dns::Resolver;
use haystack_net::ports::Proto;
use haystack_net::{Anonymizer, HourBin, Prefix4};
use haystack_testbed::catalog::DomainSpec;
use haystack_testbed::materialize::MaterializedWorld;
use haystack_testbed::traffic::poisson;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Probability that a sampled TCP packet is the session-opening SYN.
const P_SYN: f64 = 0.06;

/// One hour of sampled traffic at a vantage point.
#[derive(Debug, Default)]
pub struct HourTraffic {
    /// The exported records.
    pub records: Vec<WildRecord>,
    /// Total sampled packets (≥ records).
    pub sampled_packets: u64,
    /// What an impaired export feed cost this hour (all-zero when the
    /// vantage point runs without chaos).
    pub degradation: crate::degrade::FeedDegradation,
}

/// Resolve the live address set of every plan domain for this hour.
fn live_sets(plan: &ContactPlan, world: &MaterializedWorld, hour: HourBin) -> Vec<Vec<Ipv4Addr>> {
    let resolver: Resolver<'_> = world.resolver();
    plan.domains
        .iter()
        .map(|d| {
            resolver
                .resolve(&d.name, hour.start())
                .map(|r| r.ips)
                .unwrap_or_default()
        })
        .collect()
}

#[derive(Debug)]
struct Acc {
    packets: u64,
    bytes: u64,
    established: bool,
    proto: Proto,
}

/// Sample one (line, product-plan) cell of the hour: the active-use
/// coin, the Poisson sampled-packet count, and per-packet domain/address
/// attribution. `touch(dst, spec, established_evidence)` is called once
/// per attributed packet; the return value is the *sampled* packet count
/// (attributed or not).
///
/// Both the product-major materialized path ([`generate_hour`]) and the
/// line-major streaming path ([`HourStream`]) run their packets through
/// this one function with identical per-cell RNG seeding, which is what
/// keeps the two paths record-for-record identical.
#[allow(clippy::too_many_arguments)]
fn sample_line_plan<F>(
    p: &ProductPlan,
    plan: &ContactPlan,
    live: &[Vec<Ipv4Addr>],
    hod: u32,
    weekend_boost: f64,
    s: f64,
    rng: &mut SmallRng,
    mut touch: F,
) -> u64
where
    F: FnMut(Ipv4Addr, &DomainSpec, bool),
{
    let active = p.active_extra_lambda > 0.0
        && rng.gen::<f64>() < active_use_probability(p.shape, p.peak_use * weekend_boost, hod);
    let lambda = (p.idle_lambda + if active { p.active_extra_lambda } else { 0.0 }) / s;
    let k = poisson(lambda, rng);
    if k == 0 {
        return 0;
    }
    // Split the k sampled packets between the idle and active-surplus
    // components proportionally to their rates.
    let idle_share = if active {
        p.idle_lambda / (p.idle_lambda + p.active_extra_lambda)
    } else {
        1.0
    };
    for _ in 0..k {
        let di = if rng.gen::<f64>() < idle_share {
            p.pick_idle(rng.gen::<f64>() * p.idle_lambda)
        } else {
            p.pick_active(rng.gen::<f64>() * p.active_extra_lambda)
        };
        let domain_id = p.domain_ids[di] as usize;
        let ips = &live[domain_id];
        if ips.is_empty() {
            continue;
        }
        let spec = &plan.domains[domain_id];
        let dst = ips[rng.gen_range(0..ips.len())];
        let syn = spec.proto == Proto::Tcp && rng.gen::<f64>() < P_SYN;
        touch(dst, spec, spec.proto == Proto::Udp || !syn);
    }
    k
}

/// Generate one vantage-point hour for `pop`.
///
/// `sampling` is the 1-in-N packet sampling denominator; `seed` must
/// differ between vantage points so the ISP and IXP draw independent
/// samples of the same underlying population behaviour.
#[allow(clippy::too_many_arguments)]
pub fn generate_hour(
    pop: &Population,
    plan: &ContactPlan,
    world: &MaterializedWorld,
    hour: HourBin,
    sampling: u64,
    seed: u64,
    anonymizer: &Anonymizer,
    include_background: bool,
) -> HourTraffic {
    assert!(sampling >= 1, "sampling denominator must be >= 1");
    let live = live_sets(plan, world, hour);
    let day = hour.day().0;
    let slots = pop.slots_for_day(day);
    let hod = hour.hour_of_day();
    let s = sampling as f64;

    let mut acc: HashMap<(u32, Ipv4Addr, u16), Acc> = HashMap::new();
    let mut sampled_packets = 0u64;

    // §7.1/Figure 18: usage peaks "during the day and weekends".
    let weekend_boost = if hour.day().is_weekend() { 1.35 } else { 1.0 };
    let mut emit_line_plan = |line: u32, p: &ProductPlan, rng: &mut SmallRng| {
        sampled_packets +=
            sample_line_plan(p, plan, &live, hod, weekend_boost, s, rng, |dst, spec, est| {
                let e = acc.entry((line, dst, spec.port)).or_insert(Acc {
                    packets: 0,
                    bytes: 0,
                    established: false,
                    proto: spec.proto,
                });
                e.packets += 1;
                e.bytes += u64::from(spec.bytes_per_pkt);
                e.established |= est;
            });
    };

    for p in &plan.products {
        for &line in pop.owners_of(p.product) {
            let mut rng = SmallRng::seed_from_u64(
                seed ^ (u64::from(line) << 24) ^ ((p.product as u64) << 8) ^ u64::from(hour.0),
            );
            emit_line_plan(line, p, &mut rng);
        }
    }
    if include_background {
        for line in 0..pop.lines() {
            let mut rng = SmallRng::seed_from_u64(
                seed ^ 0xBACC ^ (u64::from(line) << 24) ^ u64::from(hour.0),
            );
            emit_line_plan(line, &plan.background, &mut rng);
        }
    }

    let mut records = Vec::with_capacity(acc.len());
    for ((line, dst, dport), a) in acc {
        let src_ip = pop.addr_of_slot(slots[line as usize]);
        let proto = a.proto;
        records.push(WildRecord {
            line: anonymizer.anonymize(src_ip),
            line_slash24: Prefix4::slash24_of(src_ip),
            src_ip,
            dst,
            dport,
            proto,
            packets: a.packets,
            bytes: a.bytes,
            established: a.established,
            hour,
        });
    }
    records.sort_by_key(|r| (r.line, r.dst, r.dport));
    HourTraffic { records, sampled_packets, degradation: Default::default() }
}

/// The streaming, line-major twin of [`generate_hour`].
///
/// Emits the exact records [`generate_hour`] would, in the exact same
/// order, but incrementally: one subscriber line at a time, packed into
/// bounded [`RecordChunk`]s. Peak resident state is one line's record
/// set plus one chunk — never the hour.
///
/// Equivalence rests on three invariants (pinned by the
/// `stream_equivalence` tests):
///
/// 1. **Same draws** — every (line, product) cell seeds its own RNG from
///    `(seed, line, product, hour)` and samples through
///    [`sample_line_plan`], so iteration order (product-major there,
///    line-major here) cannot change any draw.
/// 2. **Same aggregation** — per-line accumulation keyed by
///    `(dst, dport)` with plans visited in plan order (background last)
///    reproduces `generate_hour`'s first-writer-wins `proto` and
///    commutative packet/byte/established folds.
/// 3. **Same order** — `generate_hour` sorts globally by
///    `(AnonId, dst, dport)`; here lines are visited in ascending
///    [`AnonId`](haystack_net::AnonId) order and each line's records are
///    sorted by `(dst, dport)`, so the concatenation is that same global
///    order.
#[derive(Debug)]
pub struct HourStream<'a> {
    pop: &'a Population,
    plan: &'a ContactPlan,
    live: Vec<Vec<Ipv4Addr>>,
    slots: Rc<Vec<u32>>,
    hour: HourBin,
    hod: u32,
    weekend_boost: f64,
    s: f64,
    seed: u64,
    anonymizer: Anonymizer,
    include_background: bool,
    chunk_records: usize,
    /// Subscriber lines in ascending anonymized-id order — the global
    /// record order of the materialized path.
    order: Vec<u32>,
    next_line: usize,
    staged: Vec<WildRecord>,
    staged_pos: usize,
    pending_packets: u64,
    acc: HashMap<(Ipv4Addr, u16), Acc>,
}

impl<'a> HourStream<'a> {
    /// Open one vantage-point hour as a stream. Arguments mirror
    /// [`generate_hour`]; `chunk_records` bounds the emitted chunks.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        pop: &'a Population,
        plan: &'a ContactPlan,
        world: &MaterializedWorld,
        hour: HourBin,
        sampling: u64,
        seed: u64,
        anonymizer: &Anonymizer,
        include_background: bool,
        chunk_records: usize,
    ) -> Self {
        assert!(sampling >= 1, "sampling denominator must be >= 1");
        let live = live_sets(plan, world, hour);
        let slots = pop.slots_for_day(hour.day().0);
        // Background traffic reaches every line; without it only owners
        // of at least one product can emit records.
        let mut order: Vec<u32> = (0..pop.lines())
            .filter(|&l| include_background || !pop.products_of(l).is_empty())
            .collect();
        order.sort_by_key(|&l| anonymizer.anonymize(pop.addr_of_slot(slots[l as usize])));
        HourStream {
            pop,
            plan,
            live,
            slots,
            hour,
            hod: hour.hour_of_day(),
            weekend_boost: if hour.day().is_weekend() { 1.35 } else { 1.0 },
            s: sampling as f64,
            seed,
            anonymizer: *anonymizer,
            include_background,
            chunk_records: chunk_records.max(1),
            order,
            next_line: 0,
            staged: Vec::new(),
            staged_pos: 0,
            pending_packets: 0,
            acc: HashMap::new(),
        }
    }

    /// Generate one line's records into the staging buffer (sorted by
    /// `(dst, dport)`; the line id is constant).
    fn generate_line(&mut self, line: u32) {
        let plan = self.plan;
        let pop = self.pop;
        let mut packets = 0u64;
        {
            let live = &self.live;
            let acc = &mut self.acc;
            let mut touch = |dst: Ipv4Addr, spec: &DomainSpec, est: bool| {
                let e = acc.entry((dst, spec.port)).or_insert(Acc {
                    packets: 0,
                    bytes: 0,
                    established: false,
                    proto: spec.proto,
                });
                e.packets += 1;
                e.bytes += u64::from(spec.bytes_per_pkt);
                e.established |= est;
            };
            for &pi in pop.products_of(line) {
                let p = &plan.products[pi as usize];
                let mut rng = SmallRng::seed_from_u64(
                    self.seed
                        ^ (u64::from(line) << 24)
                        ^ ((p.product as u64) << 8)
                        ^ u64::from(self.hour.0),
                );
                packets += sample_line_plan(
                    p,
                    plan,
                    live,
                    self.hod,
                    self.weekend_boost,
                    self.s,
                    &mut rng,
                    &mut touch,
                );
            }
            if self.include_background {
                let mut rng = SmallRng::seed_from_u64(
                    self.seed ^ 0xBACC ^ (u64::from(line) << 24) ^ u64::from(self.hour.0),
                );
                packets += sample_line_plan(
                    &plan.background,
                    plan,
                    live,
                    self.hod,
                    self.weekend_boost,
                    self.s,
                    &mut rng,
                    &mut touch,
                );
            }
        }
        self.pending_packets += packets;
        let src_ip = pop.addr_of_slot(self.slots[line as usize]);
        let anon = self.anonymizer.anonymize(src_ip);
        let slash24 = Prefix4::slash24_of(src_ip);
        let base = self.staged.len();
        for ((dst, dport), a) in self.acc.drain() {
            self.staged.push(WildRecord {
                line: anon,
                line_slash24: slash24,
                src_ip,
                dst,
                dport,
                proto: a.proto,
                packets: a.packets,
                bytes: a.bytes,
                established: a.established,
                hour: self.hour,
            });
        }
        self.staged[base..].sort_by_key(|r| (r.dst, r.dport));
    }
}

impl RecordStream for HourStream<'_> {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        out.clear();
        loop {
            while out.records.len() < self.chunk_records && self.staged_pos < self.staged.len() {
                out.records.push(self.staged[self.staged_pos]);
                self.staged_pos += 1;
            }
            if self.staged_pos >= self.staged.len() {
                self.staged.clear();
                self.staged_pos = 0;
            }
            if out.records.len() == self.chunk_records {
                out.sampled_packets = std::mem::take(&mut self.pending_packets);
                return true;
            }
            if self.next_line >= self.order.len() {
                if out.records.is_empty() && self.pending_packets == 0 {
                    return false;
                }
                out.sampled_packets = std::mem::take(&mut self.pending_packets);
                return true;
            }
            let line = self.order[self.next_line];
            self.next_line += 1;
            self.generate_line(line);
        }
    }
}

/// One resolver-side query observation: which line asked for which plan
/// domain this hour. The §7.4 DNS-assisted analysis consumes these.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnsQueryEvent {
    /// Anonymized line identity (resolver logs are anonymized the same
    /// way flow exports are).
    pub line: haystack_net::AnonId,
    /// Index into the plan's domain table.
    pub domain_id: u32,
    /// The hour.
    pub hour: HourBin,
}

/// Generate the ISP resolver's query log for one hour.
///
/// Devices re-resolve a backend domain roughly once per connection setup
/// — we model P(query in hour) = 1 − exp(−rate/200) per owned domain.
/// `resolver_share` is §7.4's caveat: the fraction of lines still using
/// the ISP resolver (the rest run DoT/DoH or public resolvers and are
/// invisible here).
pub fn generate_dns_hour(
    pop: &Population,
    plan: &ContactPlan,
    hour: HourBin,
    resolver_share: f64,
    seed: u64,
    anonymizer: &Anonymizer,
) -> Vec<DnsQueryEvent> {
    let day = hour.day().0;
    let slots = pop.slots_for_day(day);
    let hod = hour.hour_of_day();
    let mut out = Vec::new();
    for p in &plan.products {
        for &line in pop.owners_of(p.product) {
            // Which resolver a household uses is a stable property of the
            // household, not a per-hour coin: gate on (seed, line) only.
            let mut gate = SmallRng::seed_from_u64(seed ^ 0x6A7E ^ u64::from(line));
            if gate.gen::<f64>() >= resolver_share {
                continue; // this household uses DoH / a public resolver
            }
            let mut rng = SmallRng::seed_from_u64(
                seed ^ 0xD2D2 ^ (u64::from(line) << 24) ^ ((p.product as u64) << 8)
                    ^ u64::from(hour.0),
            );
            let active = p.active_extra_lambda > 0.0
                && rng.gen::<f64>() < active_use_probability(p.shape, p.peak_use, hod);
            for (di, &domain_id) in p.domain_ids.iter().enumerate() {
                let idle = p.idle_cum[di] - if di == 0 { 0.0 } else { p.idle_cum[di - 1] };
                let surplus = if active && !p.active_cum.is_empty() {
                    p.active_cum[di] - if di == 0 { 0.0 } else { p.active_cum[di - 1] }
                } else {
                    0.0
                };
                let p_query = 1.0 - (-(idle + surplus) / 200.0).exp();
                if rng.gen::<f64>() < p_query {
                    let src = pop.addr_of_slot(slots[line as usize]);
                    out.push(DnsQueryEvent {
                        line: anonymizer.anonymize(src),
                        domain_id,
                        hour,
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use haystack_testbed::catalog::data::standard_catalog;
    use haystack_testbed::materialize::materialize;

    fn setup() -> (Population, ContactPlan, MaterializedWorld) {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let plan = ContactPlan::new(&catalog);
        let pop = Population::new(&catalog, PopulationConfig::isp(20_000, 3));
        (pop, plan, world)
    }

    #[test]
    fn hour_generation_is_deterministic() {
        let (pop, plan, world) = setup();
        let anon = Anonymizer::new(1, 2);
        let a = generate_hour(&pop, &plan, &world, HourBin(10), 1_000, 7, &anon, false);
        let b = generate_hour(&pop, &plan, &world, HourBin(10), 1_000, 7, &anon, false);
        assert_eq!(a.records, b.records);
        assert!(!a.records.is_empty());
    }

    #[test]
    fn hour_stream_matches_generate_hour_for_any_chunking() {
        let (pop, plan, world) = setup();
        let anon = Anonymizer::new(1, 2);
        for background in [false, true] {
            let want =
                generate_hour(&pop, &plan, &world, HourBin(10), 1_000, 7, &anon, background);
            for chunk in [1usize, 7, 1024, usize::MAX] {
                let mut s = HourStream::new(
                    &pop,
                    &plan,
                    &world,
                    HourBin(10),
                    1_000,
                    7,
                    &anon,
                    background,
                    chunk,
                );
                let got = crate::stream::materialize(&mut s);
                assert_eq!(got.records, want.records, "background {background} chunk {chunk}");
                assert_eq!(got.sampled_packets, want.sampled_packets);
            }
        }
    }

    #[test]
    fn sampling_rate_scales_volume() {
        let (pop, plan, world) = setup();
        let anon = Anonymizer::new(1, 2);
        let dense = generate_hour(&pop, &plan, &world, HourBin(10), 100, 7, &anon, false);
        let sparse = generate_hour(&pop, &plan, &world, HourBin(10), 1_000, 7, &anon, false);
        let ratio = dense.sampled_packets as f64 / sparse.sampled_packets.max(1) as f64;
        assert!((7.0..14.0).contains(&ratio), "10× sampling ratio, got {ratio:.1}");
    }

    #[test]
    fn evening_hours_are_busier_than_night() {
        let (pop, plan, world) = setup();
        let anon = Anonymizer::new(1, 2);
        // Hour 20 (evening) vs hour 3 (night) of day 1.
        let evening =
            generate_hour(&pop, &plan, &world, HourBin(24 + 20), 1_000, 7, &anon, false);
        let night = generate_hour(&pop, &plan, &world, HourBin(24 + 3), 1_000, 7, &anon, false);
        assert!(
            evening.sampled_packets > night.sampled_packets,
            "evening {} <= night {}",
            evening.sampled_packets,
            night.sampled_packets
        );
    }

    #[test]
    fn records_point_at_live_service_ips() {
        let (pop, plan, world) = setup();
        let anon = Anonymizer::new(1, 2);
        let t = generate_hour(&pop, &plan, &world, HourBin(10), 500, 7, &anon, false);
        let live = live_sets(&plan, &world, HourBin(10));
        let all_live: std::collections::HashSet<_> =
            live.iter().flatten().copied().collect();
        assert!(t.records.iter().all(|r| all_live.contains(&r.dst)));
    }

    #[test]
    fn background_adds_generic_traffic_from_deviceless_lines() {
        let (pop, plan, world) = setup();
        let anon = Anonymizer::new(1, 2);
        let without = generate_hour(&pop, &plan, &world, HourBin(10), 1_000, 7, &anon, false);
        let with = generate_hour(&pop, &plan, &world, HourBin(10), 1_000, 7, &anon, true);
        assert!(with.records.len() > without.records.len());
        let lines_with: std::collections::HashSet<_> =
            with.records.iter().map(|r| r.line).collect();
        let lines_without: std::collections::HashSet<_> =
            without.records.iter().map(|r| r.line).collect();
        assert!(lines_with.len() > lines_without.len() * 2, "background reaches most lines");
    }

    #[test]
    fn most_tcp_records_carry_established_evidence() {
        let (pop, plan, world) = setup();
        let anon = Anonymizer::new(1, 2);
        let t = generate_hour(&pop, &plan, &world, HourBin(10), 1_000, 7, &anon, false);
        let tcp: Vec<_> = t.records.iter().filter(|r| r.proto == Proto::Tcp).collect();
        let established = tcp.iter().filter(|r| r.established).count();
        let frac = established as f64 / tcp.len().max(1) as f64;
        assert!(frac > 0.85, "established fraction {frac:.2}");
    }

    #[test]
    fn dns_log_respects_resolver_share() {
        let (pop, plan, _world) = setup();
        let anon = Anonymizer::new(1, 2);
        let full = generate_dns_hour(&pop, &plan, HourBin(10), 1.0, 7, &anon);
        let half = generate_dns_hour(&pop, &plan, HourBin(10), 0.5, 7, &anon);
        let none = generate_dns_hour(&pop, &plan, HourBin(10), 0.0, 7, &anon);
        assert!(!full.is_empty());
        assert!(none.is_empty());
        let ratio = half.len() as f64 / full.len() as f64;
        assert!((0.3..0.7).contains(&ratio), "resolver share ratio {ratio:.2}");
    }

    #[test]
    fn dns_log_covers_shared_domains_too() {
        // Unlike flows, DNS sees CDN-hosted domains — the §7.4 point.
        let (pop, plan, _world) = setup();
        let anon = Anonymizer::new(1, 2);
        let events = generate_dns_hour(&pop, &plan, HourBin(20), 1.0, 7, &anon);
        use haystack_testbed::catalog::HostingKind;
        let shared_queried = events.iter().any(|e| {
            matches!(plan.domains[e.domain_id as usize].hosting, HostingKind::Cdn)
        });
        assert!(shared_queried, "CDN-hosted domains must appear in the resolver log");
    }

    #[test]
    fn anonymization_is_stable_across_hours_same_day() {
        let (pop, plan, world) = setup();
        let anon = Anonymizer::new(1, 2);
        let a = generate_hour(&pop, &plan, &world, HourBin(10), 200, 7, &anon, false);
        let b = generate_hour(&pop, &plan, &world, HourBin(11), 200, 7, &anon, false);
        let la: std::collections::HashSet<_> = a.records.iter().map(|r| r.line).collect();
        let lb: std::collections::HashSet<_> = b.records.iter().map(|r| r.line).collect();
        let overlap = la.intersection(&lb).count();
        assert!(overlap > la.len() / 3, "line identities unstable: {overlap}/{}", la.len());
    }
}
