//! Contact plans: the catalog compiled into per-product sampling tables.
//!
//! The wild generator needs, per product, (a) the total idle packet rate
//! and the per-domain weights to split sampled packets across domains,
//! and (b) the same for the *active-use surplus* (what an owner's
//! interaction hour adds — including the §7.1 active-only domains). Both
//! are precomputed here as cumulative weight tables for O(log d) packet
//! attribution.

use crate::diurnal::UsageShape;
use haystack_testbed::catalog::{Catalog, Category, DomainSpec};
use std::collections::HashMap;

/// Per-product compiled plan.
#[derive(Debug, Clone)]
pub struct ProductPlan {
    /// Index into the catalog's product list.
    pub product: usize,
    /// Usage curve shape.
    pub shape: UsageShape,
    /// Peak probability that an owner actively uses the device in an hour.
    pub peak_use: f64,
    /// Domain ids this product contacts.
    pub domain_ids: Vec<u32>,
    /// Σ idle packets/hour across domains.
    pub idle_lambda: f64,
    /// Cumulative idle weights (same length as `domain_ids`).
    pub idle_cum: Vec<f64>,
    /// Σ additional packets/hour contributed by one active-use hour.
    pub active_extra_lambda: f64,
    /// Cumulative active-surplus weights.
    pub active_cum: Vec<f64>,
}

impl ProductPlan {
    /// Pick a domain index (into `domain_ids`) for one sampled idle
    /// packet, given a uniform draw in `[0, idle_lambda)`.
    pub fn pick_idle(&self, u: f64) -> usize {
        cum_pick(&self.idle_cum, u)
    }

    /// Pick a domain index for one sampled active-surplus packet.
    pub fn pick_active(&self, u: f64) -> usize {
        cum_pick(&self.active_cum, u)
    }
}

fn cum_pick(cum: &[f64], u: f64) -> usize {
    match cum.binary_search_by(|x| x.partial_cmp(&u).expect("finite weights")) {
        Ok(i) => (i + 1).min(cum.len() - 1),
        Err(i) => i.min(cum.len() - 1),
    }
}

/// The compiled contact plan for a catalog.
#[derive(Debug, Clone)]
pub struct ContactPlan {
    /// Global domain table; plan entries index into it.
    pub domains: Vec<DomainSpec>,
    /// One plan per catalog product (same indexing as the catalog).
    pub products: Vec<ProductPlan>,
    /// Background browsing pseudo-plan applied to *every* line (generic
    /// domains only; keeps the §4.1 generic-domain filter honest).
    pub background: ProductPlan,
}

impl ContactPlan {
    /// Compile the plan.
    pub fn new(catalog: &Catalog) -> Self {
        let mut domains: Vec<DomainSpec> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut intern = |spec: &DomainSpec, domains: &mut Vec<DomainSpec>| -> u32 {
            if let Some(&id) = index.get(spec.name.as_str()) {
                return id;
            }
            let id = domains.len() as u32;
            index.insert(spec.name.as_str().to_string(), id);
            domains.push(spec.clone());
            id
        };

        let mut products = Vec::with_capacity(catalog.products.len());
        for (pi, prod) in catalog.products.iter().enumerate() {
            let specs = catalog.effective_domains(prod.class);
            let mut domain_ids = Vec::with_capacity(specs.len() + 3);
            let mut idle = Vec::with_capacity(specs.len() + 3);
            let mut active = Vec::with_capacity(specs.len() + 3);
            for s in &specs {
                domain_ids.push(intern(s, &mut domains));
                idle.push(s.rate_with_interactions(0));
                active.push(s.rate_with_interactions(1) - s.rate_with_interactions(0));
            }
            // Light generic chatter (NTP + one web property) so wild IoT
            // lines also produce non-IoT flows.
            let g = &catalog.generic_domains;
            for gi in [pi % 6, 18 + (pi * 7) % 62] {
                let s = &g[gi];
                domain_ids.push(intern(s, &mut domains));
                idle.push(s.idle_pph * 0.3);
                active.push(0.0);
            }
            let peak_use = match prod.category {
                Category::Audio | Category::Video => 0.35,
                Category::HomeAutomation | Category::Appliances => 0.15,
                Category::Surveillance | Category::SmartHubs => 0.08,
            };
            products.push(ProductPlan {
                product: pi,
                shape: UsageShape::for_category(prod.category),
                peak_use,
                domain_ids,
                idle_lambda: idle.iter().sum(),
                idle_cum: cumsum(&idle),
                active_extra_lambda: active.iter().sum(),
                active_cum: cumsum(&active),
            });
        }

        // Background browsing: a light touch of the generic universe per
        // line (real subscriber traffic is far heavier, but only flows to
        // rule IPs matter to the detector — see DESIGN.md).
        let mut bg_ids = Vec::new();
        let mut bg_rates = Vec::new();
        for (gi, s) in catalog.generic_domains.iter().enumerate() {
            if gi % 3 == 0 {
                bg_ids.push(intern(s, &mut domains));
                bg_rates.push(s.idle_pph);
            }
        }
        let background = ProductPlan {
            product: usize::MAX,
            shape: UsageShape::Entertainment,
            peak_use: 0.5,
            domain_ids: bg_ids,
            idle_lambda: bg_rates.iter().sum(),
            idle_cum: cumsum(&bg_rates),
            active_extra_lambda: 0.0,
            active_cum: Vec::new(),
        };

        ContactPlan { domains, products, background }
    }
}

fn cumsum(v: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    v.iter()
        .map(|x| {
            acc += x;
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_testbed::catalog::data::standard_catalog;

    #[test]
    fn plans_cover_all_products() {
        let c = standard_catalog();
        let plan = ContactPlan::new(&c);
        assert_eq!(plan.products.len(), c.products.len());
        for p in &plan.products {
            assert!(p.idle_lambda > 0.0, "product {} has zero idle rate", p.product);
            assert_eq!(p.domain_ids.len(), p.idle_cum.len());
        }
    }

    #[test]
    fn pick_respects_weights() {
        let c = standard_catalog();
        let plan = ContactPlan::new(&c);
        // Echo Dot's plan: the AVS endpoint dominates → picking with small
        // u lands on a hot domain; u near λ lands later in the list.
        let echo = c.products.iter().position(|p| p.name == "Echo Dot").unwrap();
        let p = &plan.products[echo];
        let first = p.pick_idle(0.0);
        let last = p.pick_idle(p.idle_lambda - 1e-9);
        assert_eq!(first, 0);
        assert_eq!(last, p.domain_ids.len() - 1);
    }

    #[test]
    fn active_surplus_positive_for_interactive_products() {
        let c = standard_catalog();
        let plan = ContactPlan::new(&c);
        let fire = c.products.iter().position(|p| p.name == "Fire TV").unwrap();
        assert!(plan.products[fire].active_extra_lambda > 100.0);
    }

    #[test]
    fn background_touches_only_generic_domains() {
        let c = standard_catalog();
        let plan = ContactPlan::new(&c);
        let generic_names: std::collections::HashSet<_> =
            c.generic_domains.iter().map(|d| d.name.clone()).collect();
        for &id in &plan.background.domain_ids {
            assert!(generic_names.contains(&plan.domains[id as usize].name));
        }
        assert!(plan.background.idle_lambda > 0.0);
    }

    #[test]
    fn domain_table_has_no_duplicates() {
        let c = standard_catalog();
        let plan = ContactPlan::new(&c);
        let mut seen = std::collections::HashSet::new();
        for d in &plan.domains {
            assert!(seen.insert(d.name.clone()), "duplicate {}", d.name);
        }
    }
}
