//! Record-level feed degradation for the population-scale vantage points.
//!
//! At population scale the vantage points hand decoded [`WildRecord`]s to
//! the detector directly (see [`crate::record`]); the wire path
//! (exporter → UDP → collector) is exercised separately by
//! `haystack-flow`'s [`chaos`](haystack_flow::chaos) module. To study how
//! *detection quality* degrades under an impaired feed, this module
//! re-interprets the same [`ChaosConfig`] at the record level: records
//! are grouped into exporter-sized datagram batches and the impairments
//! a collector cannot repair are applied to those batches.
//!
//! The mapping is deliberately conservative — only effects that survive a
//! hardened collector reach the detector:
//!
//! * **Datagram loss** drops whole batches (the collector counts the gap
//!   but the records are gone).
//! * **Template withholding** makes every batch until the next template
//!   refresh undecodable.
//! * **Truncation / corruption** costs the tail of a batch (truncated
//!   sets) or the whole batch (header corruption), matching the
//!   collector's malformed-set handling.
//! * **Exporter restart** loses the in-flight batch; the collector's
//!   template flush-and-relearn is already covered by the refresh model.
//! * **Duplication** re-delivers a batch; downstream hour-level evidence
//!   is naturally idempotent, so this mostly tests that nothing
//!   double-counts.
//! * **Reordering** within an hour batch is invisible to the detector
//!   (evidence is per-hour) and is therefore not modelled here.

use crate::record::WildRecord;
use haystack_flow::ChaosConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Records per simulated export datagram (the exporter's default batch).
pub const BATCH_RECORDS: usize = 30;

/// Batches between template re-announcements (the exporter's refresh
/// period).
pub const TEMPLATE_REFRESH_BATCHES: usize = 20;

/// What an impaired feed cost one captured hour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedDegradation {
    /// Simulated export batches the hour was split into.
    pub batches: u64,
    /// Batches lost entirely (drop, withholding, restart, corruption).
    pub batches_dropped: u64,
    /// Records lost with them (plus truncated tails).
    pub records_lost: u64,
    /// Records delivered twice by duplication.
    pub records_duplicated: u64,
    /// Exporter restarts simulated.
    pub restarts: u64,
}

impl FeedDegradation {
    /// Fold another hour's (or member's) degradation into this one.
    pub fn absorb(&mut self, other: FeedDegradation) {
        self.batches += other.batches;
        self.batches_dropped += other.batches_dropped;
        self.records_lost += other.records_lost;
        self.records_duplicated += other.records_duplicated;
        self.restarts += other.restarts;
    }

    /// Fraction of records that survived (1.0 for a clean feed).
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.batches * BATCH_RECORDS as u64;
        if total == 0 {
            return 1.0;
        }
        1.0 - (self.records_lost as f64 / total as f64).min(1.0)
    }
}

/// Degrade one hour's records under `chaos`, deterministically in
/// `(chaos.seed, salt)`. Pass the hour number (and any per-member
/// distinguisher) as `salt` so every captured hour draws an independent
/// but reproducible impairment pattern.
pub fn degrade_records(
    records: Vec<WildRecord>,
    chaos: &ChaosConfig,
    salt: u64,
) -> (Vec<WildRecord>, FeedDegradation) {
    let mut deg = FeedDegradation::default();
    if chaos.is_noop() || records.is_empty() {
        deg.batches = records.len().div_ceil(BATCH_RECORDS) as u64;
        return (records, deg);
    }
    let mut rng = SmallRng::seed_from_u64(
        chaos.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDE64_ADE5,
    );
    let mut out = Vec::with_capacity(records.len());
    // Template state: refreshed every TEMPLATE_REFRESH_BATCHES batches;
    // a withheld refresh leaves every batch until the next one
    // undecodable.
    let mut templates_known = true;
    for (index, batch) in records.chunks(BATCH_RECORDS).enumerate() {
        deg.batches += 1;
        if index % TEMPLATE_REFRESH_BATCHES == 0 {
            templates_known = rng.gen::<f64>() >= chaos.template_withhold_probability;
        }
        if chaos.restart_after.is_some_and(|n| index as u64 == n) {
            deg.restarts += 1;
            deg.batches_dropped += 1;
            deg.records_lost += batch.len() as u64;
            // The restarted exporter re-announces templates immediately.
            templates_known = true;
            continue;
        }
        if !templates_known || rng.gen::<f64>() < chaos.drop_probability {
            deg.batches_dropped += 1;
            deg.records_lost += batch.len() as u64;
            continue;
        }
        if rng.gen::<f64>() < chaos.corrupt_probability {
            // Header corruption: the collector rejects the datagram.
            deg.batches_dropped += 1;
            deg.records_lost += batch.len() as u64;
            continue;
        }
        if rng.gen::<f64>() < chaos.truncate_probability && batch.len() > 1 {
            // Truncated datagram: a suffix of records never decodes.
            let keep = rng.gen_range(1..batch.len());
            deg.records_lost += (batch.len() - keep) as u64;
            out.extend_from_slice(&batch[..keep]);
            continue;
        }
        out.extend_from_slice(batch);
        if rng.gen::<f64>() < chaos.duplicate_probability {
            deg.records_duplicated += batch.len() as u64;
            out.extend_from_slice(batch);
        }
    }
    (out, deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_net::ports::Proto;
    use haystack_net::{AnonId, HourBin, Prefix4};
    use std::net::Ipv4Addr;

    fn recs(n: usize) -> Vec<WildRecord> {
        (0..n)
            .map(|i| {
                let src_ip = Ipv4Addr::new(100, 64, (i / 250) as u8, (i % 250) as u8);
                WildRecord {
                    line: AnonId(i as u64),
                    line_slash24: Prefix4::slash24_of(src_ip),
                    src_ip,
                    dst: Ipv4Addr::new(198, 18, 0, 1),
                    dport: 443,
                    proto: Proto::Tcp,
                    packets: 3,
                    bytes: 300,
                    established: true,
                    hour: HourBin(12),
                }
            })
            .collect()
    }

    #[test]
    fn noop_chaos_is_identity() {
        let records = recs(100);
        let (out, deg) = degrade_records(records.clone(), &ChaosConfig::off(), 7);
        assert_eq!(out, records);
        assert_eq!(deg.batches_dropped, 0);
        assert_eq!(deg.records_lost, 0);
        assert!((deg.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_degradation() {
        let records = recs(500);
        let chaos = ChaosConfig::at_severity(0.6, 99);
        let (a, da) = degrade_records(records.clone(), &chaos, 3);
        let (b, db) = degrade_records(records, &chaos, 3);
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn loss_is_proportionate_not_total() {
        let records = recs(3_000);
        let chaos = ChaosConfig { drop_probability: 0.3, ..ChaosConfig::off() };
        let (out, deg) = degrade_records(records, &chaos, 11);
        assert!(deg.records_lost > 0);
        assert!(!out.is_empty(), "moderate loss must not empty the feed");
        let ratio = deg.delivery_ratio();
        assert!((0.5..0.95).contains(&ratio), "delivery ratio {ratio:.2}");
    }

    #[test]
    fn withholding_loses_whole_refresh_periods() {
        let records = recs(3_000); // 100 batches, 5 refresh periods
        let chaos =
            ChaosConfig { template_withhold_probability: 1.0, ..ChaosConfig::off() };
        let (out, deg) = degrade_records(records, &chaos, 1);
        assert!(out.is_empty(), "all refreshes withheld ⇒ nothing decodes");
        assert_eq!(deg.batches_dropped, 100);
    }

    #[test]
    fn restart_costs_one_batch() {
        let records = recs(300);
        let chaos = ChaosConfig { restart_after: Some(4), ..ChaosConfig::off() };
        let (out, deg) = degrade_records(records, &chaos, 1);
        assert_eq!(deg.restarts, 1);
        assert_eq!(out.len(), 300 - BATCH_RECORDS);
    }

    #[test]
    fn duplication_grows_but_preserves_membership() {
        let records = recs(300);
        let chaos = ChaosConfig { duplicate_probability: 1.0, ..ChaosConfig::off() };
        let (out, deg) = degrade_records(records.clone(), &chaos, 1);
        assert_eq!(out.len(), 600);
        assert_eq!(deg.records_duplicated, 300);
        for r in &records {
            assert!(out.contains(r));
        }
    }
}
