//! Record-level feed degradation for the population-scale vantage points.
//!
//! At population scale the vantage points hand decoded [`WildRecord`]s to
//! the detector directly (see [`crate::record`]); the wire path
//! (exporter → UDP → collector) is exercised separately by
//! `haystack-flow`'s [`chaos`](haystack_flow::chaos) module. To study how
//! *detection quality* degrades under an impaired feed, this module
//! re-interprets the same [`ChaosConfig`] at the record level: records
//! are grouped into exporter-sized datagram batches and the impairments
//! a collector cannot repair are applied to those batches.
//!
//! The mapping is deliberately conservative — only effects that survive a
//! hardened collector reach the detector:
//!
//! * **Datagram loss** drops whole batches (the collector counts the gap
//!   but the records are gone).
//! * **Template withholding** makes every batch until the next template
//!   refresh undecodable.
//! * **Truncation / corruption** costs the tail of a batch (truncated
//!   sets) or the whole batch (header corruption), matching the
//!   collector's malformed-set handling.
//! * **Exporter restart** loses the in-flight batch; the collector's
//!   template flush-and-relearn is already covered by the refresh model.
//! * **Duplication** re-delivers a batch; downstream hour-level evidence
//!   is naturally idempotent, so this mostly tests that nothing
//!   double-counts.
//! * **Reordering** within an hour batch is invisible to the detector
//!   (evidence is per-hour) and is therefore not modelled here.

use crate::record::WildRecord;
use crate::stream::{RecordChunk, RecordStream};
use haystack_flow::ChaosConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Records per simulated export datagram (the exporter's default batch).
pub const BATCH_RECORDS: usize = 30;

/// Batches between template re-announcements (the exporter's refresh
/// period).
pub const TEMPLATE_REFRESH_BATCHES: usize = 20;

/// What an impaired feed cost one captured hour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FeedDegradation {
    /// Simulated export batches the hour was split into.
    pub batches: u64,
    /// Batches lost entirely (drop, withholding, restart, corruption).
    pub batches_dropped: u64,
    /// Records lost with them (plus truncated tails).
    pub records_lost: u64,
    /// Records delivered twice by duplication.
    pub records_duplicated: u64,
    /// Exporter restarts simulated.
    pub restarts: u64,
}

impl FeedDegradation {
    /// Fold another hour's (or member's) degradation into this one.
    pub fn absorb(&mut self, other: FeedDegradation) {
        self.batches += other.batches;
        self.batches_dropped += other.batches_dropped;
        self.records_lost += other.records_lost;
        self.records_duplicated += other.records_duplicated;
        self.restarts += other.restarts;
    }

    /// Fraction of records that survived (1.0 for a clean feed).
    pub fn delivery_ratio(&self) -> f64 {
        let total = self.batches * BATCH_RECORDS as u64;
        if total == 0 {
            return 1.0;
        }
        1.0 - (self.records_lost as f64 / total as f64).min(1.0)
    }
}

/// SplitMix64-style mix used to derive independent per-batch RNG seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether the refresh period containing `index` announced its
/// templates. Drawn per refresh period (not sequentially), so the
/// answer only depends on `(chaos, salt, index)` — never on how the
/// hour was chunked upstream. A configured exporter restart re-announces
/// templates immediately, repairing the remainder of its refresh period.
fn templates_known(chaos: &ChaosConfig, salt: u64, index: u64) -> bool {
    let refresh = index / TEMPLATE_REFRESH_BATCHES as u64;
    if chaos
        .restart_after
        .is_some_and(|n| n / TEMPLATE_REFRESH_BATCHES as u64 == refresh && index > n)
    {
        return true;
    }
    let mut rng = SmallRng::seed_from_u64(mix(
        chaos.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ mix(refresh ^ 0x7E4A_11CE),
    ));
    rng.gen::<f64>() >= chaos.template_withhold_probability
}

/// Apply the fate of export batch `index` to `batch`, appending
/// survivors to `out` and accounting into `deg`.
///
/// The fate is a pure function of `(chaos, salt, index, batch.len())`:
/// every batch draws from its own seeded RNG. This is what makes
/// degradation *chunking-invariant* — [`degrade_records`] over a whole
/// hour and [`DegradeStream`] over any chunking of the same hour produce
/// byte-identical survivors and identical accounting.
fn apply_batch(
    batch: &[WildRecord],
    chaos: &ChaosConfig,
    salt: u64,
    index: u64,
    out: &mut Vec<WildRecord>,
    deg: &mut FeedDegradation,
) {
    deg.batches += 1;
    if chaos.is_noop() {
        out.extend_from_slice(batch);
        return;
    }
    if chaos.restart_after.is_some_and(|n| index == n) {
        // The in-flight batch dies with the restarting exporter.
        deg.restarts += 1;
        deg.batches_dropped += 1;
        deg.records_lost += batch.len() as u64;
        return;
    }
    if !templates_known(chaos, salt, index) {
        deg.batches_dropped += 1;
        deg.records_lost += batch.len() as u64;
        return;
    }
    let mut rng = SmallRng::seed_from_u64(mix(
        chaos.seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ mix(index ^ 0xDE64_ADE5),
    ));
    if rng.gen::<f64>() < chaos.drop_probability {
        deg.batches_dropped += 1;
        deg.records_lost += batch.len() as u64;
        return;
    }
    if rng.gen::<f64>() < chaos.corrupt_probability {
        // Header corruption: the collector rejects the datagram.
        deg.batches_dropped += 1;
        deg.records_lost += batch.len() as u64;
        return;
    }
    if rng.gen::<f64>() < chaos.truncate_probability && batch.len() > 1 {
        // Truncated datagram: a suffix of records never decodes.
        let keep = rng.gen_range(1..batch.len());
        deg.records_lost += (batch.len() - keep) as u64;
        out.extend_from_slice(&batch[..keep]);
        return;
    }
    out.extend_from_slice(batch);
    if rng.gen::<f64>() < chaos.duplicate_probability {
        deg.records_duplicated += batch.len() as u64;
        out.extend_from_slice(batch);
    }
}

/// Degrade one hour's records under `chaos`, deterministically in
/// `(chaos.seed, salt)`. Pass the hour number (and any per-member
/// distinguisher) as `salt` so every captured hour draws an independent
/// but reproducible impairment pattern.
pub fn degrade_records(
    records: Vec<WildRecord>,
    chaos: &ChaosConfig,
    salt: u64,
) -> (Vec<WildRecord>, FeedDegradation) {
    let mut deg = FeedDegradation::default();
    if chaos.is_noop() || records.is_empty() {
        deg.batches = records.len().div_ceil(BATCH_RECORDS) as u64;
        return (records, deg);
    }
    let mut out = Vec::with_capacity(records.len());
    for (index, batch) in records.chunks(BATCH_RECORDS).enumerate() {
        apply_batch(batch, chaos, salt, index as u64, &mut out, &mut deg);
    }
    (out, deg)
}

/// A stream adapter that applies feed degradation per export batch.
///
/// Records pulled from the inner stream are re-grouped into exact
/// [`BATCH_RECORDS`]-sized export batches (carrying remainders across
/// chunk boundaries), each batch meets the fate [`degrade_records`]
/// would hand it at the same position in the hour, and survivors are
/// re-chunked for the consumer. Because batch fates are independent
/// per batch index, the surviving record sequence and the degradation
/// accounting are identical to materializing the hour and calling
/// [`degrade_records`] — for *any* inner or outer chunk size.
#[derive(Debug)]
pub struct DegradeStream<S> {
    inner: S,
    chaos: ChaosConfig,
    salt: u64,
    chunk_records: usize,
    /// Next export-batch index within the hour.
    index: u64,
    /// Records awaiting a full export batch.
    carry: Vec<WildRecord>,
    /// Degraded survivors awaiting emission.
    staged: Vec<WildRecord>,
    staged_pos: usize,
    /// Accounting accrued since the last emitted chunk.
    pending_deg: FeedDegradation,
    pending_packets: u64,
    scratch: RecordChunk,
    inner_done: bool,
    flushed: bool,
}

impl<S: RecordStream> DegradeStream<S> {
    /// Wrap `inner`, degrading under `chaos` with the given per-hour
    /// `salt`, emitting chunks of at most `chunk_records`.
    pub fn new(inner: S, chaos: ChaosConfig, salt: u64, chunk_records: usize) -> Self {
        DegradeStream {
            inner,
            chaos,
            salt,
            chunk_records: chunk_records.max(1),
            index: 0,
            carry: Vec::with_capacity(BATCH_RECORDS),
            staged: Vec::new(),
            staged_pos: 0,
            pending_deg: FeedDegradation::default(),
            pending_packets: 0,
            scratch: RecordChunk::default(),
            inner_done: false,
            flushed: false,
        }
    }

    /// Slice every complete export batch out of `carry`.
    fn drain_full_batches(&mut self) {
        let mut start = 0;
        while self.carry.len() - start >= BATCH_RECORDS {
            apply_batch(
                &self.carry[start..start + BATCH_RECORDS],
                &self.chaos,
                self.salt,
                self.index,
                &mut self.staged,
                &mut self.pending_deg,
            );
            self.index += 1;
            start += BATCH_RECORDS;
        }
        if start > 0 {
            self.carry.drain(..start);
        }
    }
}

impl<S: RecordStream> RecordStream for DegradeStream<S> {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        out.clear();
        loop {
            // Emit staged survivors first.
            while out.records.len() < self.chunk_records && self.staged_pos < self.staged.len() {
                out.records.push(self.staged[self.staged_pos]);
                self.staged_pos += 1;
            }
            if self.staged_pos >= self.staged.len() {
                self.staged.clear();
                self.staged_pos = 0;
            }
            if out.records.len() == self.chunk_records {
                out.sampled_packets = std::mem::take(&mut self.pending_packets);
                out.degradation = std::mem::take(&mut self.pending_deg);
                return true;
            }
            if self.inner_done {
                if !self.flushed {
                    // The hour ended mid-batch: the exporter flushes the
                    // final short datagram.
                    self.flushed = true;
                    if !self.carry.is_empty() {
                        let last: Vec<WildRecord> = std::mem::take(&mut self.carry);
                        apply_batch(
                            &last,
                            &self.chaos,
                            self.salt,
                            self.index,
                            &mut self.staged,
                            &mut self.pending_deg,
                        );
                        self.index += 1;
                        continue;
                    }
                }
                if self.staged_pos < self.staged.len() {
                    continue;
                }
                let accounting =
                    self.pending_packets > 0 || self.pending_deg != FeedDegradation::default();
                if out.records.is_empty() && !accounting {
                    return false;
                }
                out.sampled_packets = std::mem::take(&mut self.pending_packets);
                out.degradation = std::mem::take(&mut self.pending_deg);
                return true;
            }
            // Pull more input.
            let mut scratch = std::mem::take(&mut self.scratch);
            if self.inner.next_chunk(&mut scratch) {
                self.pending_packets += scratch.sampled_packets;
                self.pending_deg.absorb(scratch.degradation);
                self.carry.extend_from_slice(&scratch.records);
                self.scratch = scratch;
                self.drain_full_batches();
            } else {
                self.scratch = scratch;
                self.inner_done = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_net::ports::Proto;
    use haystack_net::{AnonId, HourBin, Prefix4};
    use std::net::Ipv4Addr;

    fn recs(n: usize) -> Vec<WildRecord> {
        (0..n)
            .map(|i| {
                let src_ip = Ipv4Addr::new(100, 64, (i / 250) as u8, (i % 250) as u8);
                WildRecord {
                    line: AnonId(i as u64),
                    line_slash24: Prefix4::slash24_of(src_ip),
                    src_ip,
                    dst: Ipv4Addr::new(198, 18, 0, 1),
                    dport: 443,
                    proto: Proto::Tcp,
                    packets: 3,
                    bytes: 300,
                    established: true,
                    hour: HourBin(12),
                }
            })
            .collect()
    }

    #[test]
    fn noop_chaos_is_identity() {
        let records = recs(100);
        let (out, deg) = degrade_records(records.clone(), &ChaosConfig::off(), 7);
        assert_eq!(out, records);
        assert_eq!(deg.batches_dropped, 0);
        assert_eq!(deg.records_lost, 0);
        assert!((deg.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_seed_same_degradation() {
        let records = recs(500);
        let chaos = ChaosConfig::at_severity(0.6, 99);
        let (a, da) = degrade_records(records.clone(), &chaos, 3);
        let (b, db) = degrade_records(records, &chaos, 3);
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn loss_is_proportionate_not_total() {
        let records = recs(3_000);
        let chaos = ChaosConfig { drop_probability: 0.3, ..ChaosConfig::off() };
        let (out, deg) = degrade_records(records, &chaos, 11);
        assert!(deg.records_lost > 0);
        assert!(!out.is_empty(), "moderate loss must not empty the feed");
        let ratio = deg.delivery_ratio();
        assert!((0.5..0.95).contains(&ratio), "delivery ratio {ratio:.2}");
    }

    #[test]
    fn withholding_loses_whole_refresh_periods() {
        let records = recs(3_000); // 100 batches, 5 refresh periods
        let chaos =
            ChaosConfig { template_withhold_probability: 1.0, ..ChaosConfig::off() };
        let (out, deg) = degrade_records(records, &chaos, 1);
        assert!(out.is_empty(), "all refreshes withheld ⇒ nothing decodes");
        assert_eq!(deg.batches_dropped, 100);
    }

    #[test]
    fn restart_costs_one_batch() {
        let records = recs(300);
        let chaos = ChaosConfig { restart_after: Some(4), ..ChaosConfig::off() };
        let (out, deg) = degrade_records(records, &chaos, 1);
        assert_eq!(deg.restarts, 1);
        assert_eq!(out.len(), 300 - BATCH_RECORDS);
    }

    #[test]
    fn degrade_stream_matches_degrade_records_for_any_chunking() {
        use crate::stream::{materialize, VecStream};
        let records = recs(1_234);
        for severity in [0.0, 0.4, 0.9] {
            let chaos = if severity == 0.0 {
                ChaosConfig::off()
            } else {
                ChaosConfig::at_severity(severity, 42)
            };
            let (want, want_deg) = degrade_records(records.clone(), &chaos, 5);
            for inner_chunk in [1usize, 7, 30, 1024, 10_000] {
                for outer_chunk in [1usize, 64, 10_000] {
                    let inner = VecStream::new(records.clone(), inner_chunk);
                    let mut s = DegradeStream::new(inner, chaos.clone(), 5, outer_chunk);
                    let got = materialize(&mut s);
                    assert_eq!(
                        got.records, want,
                        "severity {severity} inner {inner_chunk} outer {outer_chunk}"
                    );
                    assert_eq!(
                        got.degradation, want_deg,
                        "severity {severity} inner {inner_chunk} outer {outer_chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn duplication_grows_but_preserves_membership() {
        let records = recs(300);
        let chaos = ChaosConfig { duplicate_probability: 1.0, ..ChaosConfig::off() };
        let (out, deg) = degrade_records(records.clone(), &chaos, 1);
        assert_eq!(out.len(), 600);
        assert_eq!(deg.records_duplicated, 300);
        for r in &records {
            assert!(out.contains(r));
        }
    }
}
