//! The ISP vantage point (§2.1, Figure 3).
//!
//! All border routers sample at one consistent rate (default 1-in-1000)
//! and export NetFlow; user addresses are anonymized before anything
//! leaves the vantage point. At population scale the vantage point hands
//! the detector decoded [`WildRecord`]s directly (see
//! [`crate::record`] for why), one batch per hour.

use crate::degrade::{degrade_records, DegradeStream};
use crate::gen::{generate_hour, HourStream, HourTraffic};
use crate::plan::ContactPlan;
use crate::population::{Population, PopulationConfig};
use crate::stream::{RecordStream, VantagePoint};
use haystack_flow::ChaosConfig;
use haystack_net::{Anonymizer, HourBin};
use haystack_testbed::catalog::Catalog;
use haystack_testbed::materialize::MaterializedWorld;

/// ISP vantage-point configuration.
#[derive(Debug, Clone)]
pub struct IspConfig {
    /// Subscriber lines (the paper's ISP has 15 M; simulate what your
    /// machine affords — results are reported as percentages).
    pub lines: u32,
    /// 1-in-N packet sampling (the paper's rate is undisclosed; 1/1000 is
    /// the common NetFlow deployment and calibrates §3's 16 % service-IP
    /// visibility).
    pub sampling: u64,
    /// RNG seed.
    pub seed: u64,
    /// Include the non-IoT background browsing component.
    pub background: bool,
}

impl Default for IspConfig {
    fn default() -> Self {
        IspConfig { lines: 100_000, sampling: 1_000, seed: 0x15B0_0001, background: false }
    }
}

/// The ISP vantage point.
#[derive(Debug)]
pub struct IspVantage {
    config: IspConfig,
    population: Population,
    plan: ContactPlan,
    anonymizer: Anonymizer,
    chaos: Option<ChaosConfig>,
}

impl IspVantage {
    /// Build the vantage point: draws the subscriber population.
    pub fn new(catalog: &Catalog, config: IspConfig) -> Self {
        let population =
            Population::new(catalog, PopulationConfig::isp(config.lines, config.seed));
        let plan = ContactPlan::new(catalog);
        let anonymizer = Anonymizer::new(config.seed ^ 0xA17A, config.seed ^ 0x5EED);
        IspVantage { config, population, plan, anonymizer, chaos: None }
    }

    /// Run the export feed through record-level chaos (see
    /// [`crate::degrade`]): every captured hour is degraded
    /// deterministically before the detector sees it.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The underlying population (tests / calibration oracles).
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The compiled contact plan.
    pub fn plan(&self) -> &ContactPlan {
        &self.plan
    }

    /// The vantage point's anonymizer (the detector needs none of it;
    /// exposed so evaluation oracles can map lines to report identities).
    pub fn anonymizer(&self) -> &Anonymizer {
        &self.anonymizer
    }

    /// Configuration.
    pub fn config(&self) -> &IspConfig {
        &self.config
    }

    /// One hour of sampled, anonymized flow records, degraded by the
    /// configured chaos (if any).
    pub fn capture_hour(&self, world: &MaterializedWorld, hour: HourBin) -> HourTraffic {
        let mut t = generate_hour(
            &self.population,
            &self.plan,
            world,
            hour,
            self.config.sampling,
            self.config.seed,
            &self.anonymizer,
            self.config.background,
        );
        if let Some(chaos) = &self.chaos {
            let (records, deg) = degrade_records(t.records, chaos, u64::from(hour.0));
            t.records = records;
            t.degradation = deg;
        }
        t
    }
}

impl VantagePoint for IspVantage {
    /// Stream the hour line-by-line ([`HourStream`]), running the feed
    /// through [`DegradeStream`] when chaos is configured. Emits the
    /// same records, in the same order, with the same funnel accounting
    /// as [`IspVantage::capture_hour`] — one bounded chunk at a time.
    fn stream_hour<'a>(
        &'a self,
        world: &'a MaterializedWorld,
        hour: HourBin,
        chunk_records: usize,
    ) -> Box<dyn RecordStream + 'a> {
        let inner = HourStream::new(
            &self.population,
            &self.plan,
            world,
            hour,
            self.config.sampling,
            self.config.seed,
            &self.anonymizer,
            self.config.background,
            chunk_records,
        );
        match &self.chaos {
            Some(chaos) => Box::new(DegradeStream::new(
                inner,
                chaos.clone(),
                u64::from(hour.0),
                chunk_records,
            )),
            None => Box::new(inner),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_testbed::catalog::data::standard_catalog;
    use haystack_testbed::materialize::materialize;

    #[test]
    fn capture_produces_iot_traffic() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let isp = IspVantage::new(
            &catalog,
            IspConfig { lines: 10_000, sampling: 1_000, seed: 1, background: false },
        );
        let t = isp.capture_hour(&world, HourBin(30));
        assert!(!t.records.is_empty());
        // Hour-over-hour volumes are in the same ballpark.
        let t2 = isp.capture_hour(&world, HourBin(31));
        let ratio = t.records.len() as f64 / t2.records.len() as f64;
        assert!((0.2..5.0).contains(&ratio));
    }

    #[test]
    fn stream_hour_matches_capture_hour_with_and_without_chaos() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let config = IspConfig { lines: 8_000, sampling: 500, seed: 9, background: true };
        for chaos in [None, Some(ChaosConfig::at_severity(0.5, 77))] {
            let mut isp = IspVantage::new(&catalog, config.clone());
            if let Some(c) = chaos {
                isp = isp.with_chaos(c);
            }
            let want = isp.capture_hour(&world, HourBin(20));
            for chunk in [64usize, usize::MAX] {
                let got = crate::stream::materialize(&mut *isp.stream_hour(
                    &world,
                    HourBin(20),
                    chunk,
                ));
                assert_eq!(got.records, want.records, "chunk {chunk}");
                assert_eq!(got.sampled_packets, want.sampled_packets);
                assert_eq!(got.degradation, want.degradation);
            }
            assert_eq!(isp.materialize_hour(&world, HourBin(20)).records, want.records);
        }
    }

    #[test]
    fn line_identities_are_anonymized_consistently() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let isp = IspVantage::new(
            &catalog,
            IspConfig { lines: 5_000, sampling: 200, seed: 2, background: false },
        );
        let a = isp.capture_hour(&world, HourBin(10));
        // The anonymizer maps each raw address to exactly one id.
        let mut map = std::collections::HashMap::new();
        for r in &a.records {
            let prev = map.insert(r.src_ip, r.line);
            if let Some(prev) = prev {
                assert_eq!(prev, r.line);
            }
        }
    }
}
