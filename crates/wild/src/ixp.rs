//! The IXP vantage point (§2.1, §6.3, Figures 4/15/16).
//!
//! Differences from the ISP, all reproduced here:
//!
//! * **Sampling an order of magnitude lower** (default 1-in-10 000 IPFIX).
//! * **Many member ASes**: a few large eyeballs hold most subscriber
//!   lines; a long tail of small/transit members hosts the occasional IoT
//!   device ("some IoT devices may not only be used at home") — the skew
//!   Figure 16 plots.
//! * **Routing asymmetry / partial visibility**: not every
//!   (member, destination) pair crosses the IXP fabric; a deterministic
//!   half of them is invisible.
//! * **Spoofing**: members cannot be assumed to filter; a spoofed SYN
//!   component is injected, and consumers must apply the §6.3
//!   established-TCP filter ([`IxpVantage::established_only`]) to avoid
//!   over-counting.

use crate::degrade::{degrade_records, DegradeStream};
use crate::gen::{generate_hour, HourStream, HourTraffic};
use crate::plan::ContactPlan;
use crate::population::{Population, PopulationConfig};
use crate::record::WildRecord;
use crate::stream::{FilterStream, RecordChunk, RecordStream, VantagePoint, VecStream};
use haystack_backend::AddressPlan;
use haystack_flow::ChaosConfig;
use haystack_net::ports::Proto;
use haystack_net::{Anonymizer, AsCategory, Asn, HourBin, Prefix4};
use haystack_testbed::catalog::Catalog;
use haystack_testbed::materialize::MaterializedWorld;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One IXP member network.
#[derive(Debug, Clone)]
pub struct MemberAs {
    /// Member ASN.
    pub asn: Asn,
    /// Display name.
    pub name: String,
    /// Category (eyeball members hold the subscriber lines).
    pub category: AsCategory,
    /// Subscriber lines behind this member.
    pub lines: u32,
    /// Address block its clients appear from.
    pub block: Prefix4,
}

/// IXP configuration.
#[derive(Debug, Clone)]
pub struct IxpConfig {
    /// 1-in-N sampling; §2.1 says an order of magnitude lower than the
    /// ISP's.
    pub sampling: u64,
    /// RNG seed.
    pub seed: u64,
    /// Number of large eyeball members.
    pub big_eyeballs: u32,
    /// Lines behind each large eyeball.
    pub big_lines: u32,
    /// Number of small/tail members.
    pub tail_members: u32,
    /// Lines behind each tail member.
    pub tail_lines: u32,
    /// Fraction of (member, destination /16) pairs routed through the
    /// fabric (routing asymmetry / partial visibility).
    pub route_visibility: f64,
    /// Spoofed TCP-SYN records injected per hour.
    pub spoofed_per_hour: u32,
}

impl Default for IxpConfig {
    fn default() -> Self {
        IxpConfig {
            sampling: 10_000,
            seed: 0x1C90_0002,
            big_eyeballs: 6,
            big_lines: 12_000,
            tail_members: 34,
            tail_lines: 400,
            route_visibility: 0.5,
            spoofed_per_hour: 2_000,
        }
    }
}

/// The IXP vantage point.
#[derive(Debug)]
pub struct IxpVantage {
    config: IxpConfig,
    members: Vec<MemberAs>,
    populations: Vec<Population>,
    plan: ContactPlan,
    anonymizer: Anonymizer,
    chaos: Option<ChaosConfig>,
}

impl IxpVantage {
    /// Build the member set and their populations.
    pub fn new(catalog: &Catalog, config: IxpConfig) -> Self {
        let base = AddressPlan::remote_eyeballs();
        let mut members = Vec::new();
        let mut populations = Vec::new();
        let total = config.big_eyeballs + config.tail_members;
        for m in 0..total {
            let big = m < config.big_eyeballs;
            let block = base.subnet(16, m).expect("member block");
            let lines = if big { config.big_lines } else { config.tail_lines };
            // Tail members are mostly non-eyeball: devices show up there
            // rarely (offices, hosting with odd deployments).
            let (category, pen_scale) = if big {
                (AsCategory::Eyeball, 1.0)
            } else if m % 3 == 0 {
                (AsCategory::Eyeball, 0.4)
            } else {
                (AsCategory::Transit, 0.05)
            };
            members.push(MemberAs {
                asn: Asn(65_000 + m),
                name: format!("{}{}", if big { "eyeball" } else { "member" }, m),
                category,
                lines,
                block,
            });
            populations.push(Population::new(
                catalog,
                PopulationConfig {
                    lines,
                    seed: config.seed ^ (u64::from(m) << 17),
                    churn_within_24: 0.04,
                    churn_cross: 0.004,
                    block,
                    penetration_scale: pen_scale,
                    tech_fraction: 0.5,
                },
            ));
        }
        let plan = ContactPlan::new(catalog);
        let anonymizer = Anonymizer::new(config.seed ^ 0x1C9, config.seed ^ 0xFAB);
        IxpVantage { config, members, populations, plan, anonymizer, chaos: None }
    }

    /// Run every member's export feed through record-level chaos (see
    /// [`crate::degrade`]). Each member is its own exporter, so
    /// impairments (including a configured restart) hit members
    /// independently.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// The member table.
    pub fn members(&self) -> &[MemberAs] {
        &self.members
    }

    /// Which member an observed client address belongs to.
    pub fn member_of(&self, ip: std::net::Ipv4Addr) -> Option<&MemberAs> {
        self.members.iter().find(|m| m.block.contains(ip))
    }

    /// Routing asymmetry: whether flows from `member` toward `dst`'s /16
    /// cross the fabric at all.
    fn route_visible(&self, member_idx: usize, dst: std::net::Ipv4Addr) -> bool {
        let key = (self.config.seed ^ 0x9017)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(((member_idx as u64) << 32) | u64::from(u32::from(dst) >> 16));
        let mut z = key;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^= z >> 27;
        (z % 10_000) < (self.config.route_visibility * 10_000.0) as u64
    }

    /// One hour of sampled IPFIX records across all members, including the
    /// spoofed component. Apply [`IxpVantage::established_only`] before
    /// detection, as §6.3 does.
    pub fn capture_hour(&self, world: &MaterializedWorld, hour: HourBin) -> HourTraffic {
        let mut out = HourTraffic::default();
        for (mi, pop) in self.populations.iter().enumerate() {
            let t = generate_hour(
                pop,
                &self.plan,
                world,
                hour,
                self.config.sampling,
                self.config.seed ^ ((mi as u64) << 40),
                &self.anonymizer,
                false,
            );
            out.sampled_packets += t.sampled_packets;
            let mut visible: Vec<WildRecord> =
                t.records.into_iter().filter(|r| self.route_visible(mi, r.dst)).collect();
            if let Some(chaos) = &self.chaos {
                let salt = u64::from(hour.0) ^ ((mi as u64) << 16);
                let (survived, deg) = degrade_records(visible, chaos, salt);
                visible = survived;
                out.degradation.absorb(deg);
            }
            out.records.extend(visible);
        }
        out.records.extend(self.spoofed_records(world, hour));
        out
    }

    /// The spoofed component: SYN-only records with random source
    /// addresses (inside and outside member space) aimed at real service
    /// IPs — what backscatter and blind floods look like in sampled IPFIX.
    fn spoofed_records(&self, world: &MaterializedWorld, hour: HourBin) -> Vec<WildRecord> {
        let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0x5F00F ^ u64::from(hour.0));
        let resolver = world.resolver();
        // Aim at a handful of hot IoT service IPs.
        let mut targets = Vec::new();
        for d in self.plan.domains.iter().take(40) {
            if let Some(r) = resolver.resolve(&d.name, hour.start()) {
                targets.extend(r.ips.into_iter().take(2).map(|ip| (ip, d.port)));
            }
        }
        if targets.is_empty() {
            return Vec::new();
        }
        (0..self.config.spoofed_per_hour)
            .map(|_| {
                let member = &self.members[rng.gen_range(0..self.members.len())];
                let src_ip = member.block.nth(rng.gen_range(0..member.block.size()));
                let (dst, dport) = targets[rng.gen_range(0..targets.len())];
                WildRecord {
                    line: self.anonymizer.anonymize(src_ip),
                    line_slash24: Prefix4::slash24_of(src_ip),
                    src_ip,
                    dst,
                    dport,
                    proto: Proto::Tcp,
                    packets: 1,
                    bytes: 40,
                    established: false, // SYN-only: fails the §6.3 filter
                    hour,
                }
            })
            .collect()
    }

    /// The §6.3 anti-spoofing filter: keep UDP and established-evidence
    /// TCP records only.
    pub fn established_only(records: Vec<WildRecord>) -> Vec<WildRecord> {
        records
            .into_iter()
            .filter(|r| r.proto == Proto::Udp || r.established)
            .collect()
    }

    /// One member's export feed as a stream: line-major generation,
    /// routing-asymmetry filter, then (if configured) per-member chaos —
    /// the exact pipeline [`IxpVantage::capture_hour`] runs eagerly.
    fn member_stream<'a>(
        &'a self,
        mi: usize,
        world: &'a MaterializedWorld,
        hour: HourBin,
        chunk_records: usize,
    ) -> Box<dyn RecordStream + 'a> {
        let inner = HourStream::new(
            &self.populations[mi],
            &self.plan,
            world,
            hour,
            self.config.sampling,
            self.config.seed ^ ((mi as u64) << 40),
            &self.anonymizer,
            false,
            chunk_records,
        );
        let visible = FilterStream::new(inner, move |r: &WildRecord| self.route_visible(mi, r.dst));
        match &self.chaos {
            Some(chaos) => {
                let salt = u64::from(hour.0) ^ ((mi as u64) << 16);
                Box::new(DegradeStream::new(visible, chaos.clone(), salt, chunk_records))
            }
            None => Box::new(visible),
        }
    }
}

/// The IXP hour as a stream: every member's feed in member order, then
/// the spoofed component — matching [`IxpVantage::capture_hour`]'s
/// concatenation exactly. Member streams are opened lazily, so at most
/// one member's generator state is resident at a time.
struct IxpHourStream<'a> {
    ixp: &'a IxpVantage,
    world: &'a MaterializedWorld,
    hour: HourBin,
    chunk_records: usize,
    mi: usize,
    current: Option<Box<dyn RecordStream + 'a>>,
    spoofed: Option<VecStream>,
}

impl RecordStream for IxpHourStream<'_> {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        loop {
            if let Some(cur) = &mut self.current {
                if cur.next_chunk(out) {
                    return true;
                }
                self.current = None;
                self.mi += 1;
            }
            if self.mi < self.ixp.populations.len() {
                self.current = Some(self.ixp.member_stream(
                    self.mi,
                    self.world,
                    self.hour,
                    self.chunk_records,
                ));
                continue;
            }
            let spoofed = self.spoofed.get_or_insert_with(|| {
                VecStream::new(
                    self.ixp.spoofed_records(self.world, self.hour),
                    self.chunk_records,
                )
            });
            return spoofed.next_chunk(out);
        }
    }
}

impl VantagePoint for IxpVantage {
    fn stream_hour<'a>(
        &'a self,
        world: &'a MaterializedWorld,
        hour: HourBin,
        chunk_records: usize,
    ) -> Box<dyn RecordStream + 'a> {
        Box::new(IxpHourStream {
            ixp: self,
            world,
            hour,
            chunk_records,
            mi: 0,
            current: None,
            spoofed: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_testbed::catalog::data::standard_catalog;
    use haystack_testbed::materialize::materialize;

    fn small_config() -> IxpConfig {
        IxpConfig {
            sampling: 2_000,
            seed: 5,
            big_eyeballs: 3,
            big_lines: 4_000,
            tail_members: 9,
            tail_lines: 200,
            route_visibility: 0.5,
            spoofed_per_hour: 500,
        }
    }

    #[test]
    fn members_partition_address_space() {
        let catalog = standard_catalog();
        let ixp = IxpVantage::new(&catalog, small_config());
        assert_eq!(ixp.members().len(), 12);
        for (i, a) in ixp.members().iter().enumerate() {
            for b in ixp.members().iter().skip(i + 1) {
                assert!(!a.block.covers(&b.block));
            }
        }
    }

    #[test]
    fn spoofed_records_are_filtered_by_established_only() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let ixp = IxpVantage::new(&catalog, small_config());
        let t = ixp.capture_hour(&world, HourBin(20));
        let spoofed = t.records.iter().filter(|r| !r.established && r.proto == Proto::Tcp).count();
        assert!(spoofed >= 400, "spoofed component present: {spoofed}");
        let filtered = IxpVantage::established_only(t.records);
        assert!(filtered
            .iter()
            .all(|r| r.proto == Proto::Udp || r.established));
    }

    #[test]
    fn stream_hour_matches_capture_hour_with_and_without_chaos() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        for chaos in [None, Some(ChaosConfig::at_severity(0.5, 13))] {
            let mut ixp = IxpVantage::new(&catalog, small_config());
            if let Some(c) = chaos {
                ixp = ixp.with_chaos(c);
            }
            let want = ixp.capture_hour(&world, HourBin(20));
            for chunk in [64usize, usize::MAX] {
                let got = crate::stream::materialize(&mut *ixp.stream_hour(
                    &world,
                    HourBin(20),
                    chunk,
                ));
                assert_eq!(got.records, want.records, "chunk {chunk}");
                assert_eq!(got.sampled_packets, want.sampled_packets);
                assert_eq!(got.degradation, want.degradation);
            }
        }
    }

    #[test]
    fn eyeballs_dominate_iot_client_ips() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let ixp = IxpVantage::new(&catalog, small_config());
        let mut by_category: std::collections::HashMap<&str, usize> = Default::default();
        for h in [12u32, 13, 14, 20, 21] {
            let t = IxpVantage::established_only(ixp.capture_hour(&world, HourBin(h)).records);
            for r in t {
                if let Some(m) = ixp.member_of(r.src_ip) {
                    *by_category.entry(m.category.label()).or_default() += 1;
                }
            }
        }
        let eyeball = by_category.get("eyeball").copied().unwrap_or(0);
        let transit = by_category.get("transit").copied().unwrap_or(0);
        assert!(eyeball > transit * 3, "eyeball {eyeball} vs transit {transit}");
        assert!(transit > 0, "the long tail exists");
    }

    #[test]
    fn asymmetry_hides_a_fraction_of_routes() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let full = IxpVantage::new(
            &catalog,
            IxpConfig { route_visibility: 1.0, spoofed_per_hour: 0, ..small_config() },
        );
        let half = IxpVantage::new(
            &catalog,
            IxpConfig { route_visibility: 0.5, spoofed_per_hour: 0, ..small_config() },
        );
        let f = full.capture_hour(&world, HourBin(20)).records.len();
        let h = half.capture_hour(&world, HourBin(20)).records.len();
        let ratio = h as f64 / f as f64;
        assert!((0.3..0.7).contains(&ratio), "visibility ratio {ratio:.2}");
    }
}
