//! # haystack-wild
//!
//! The population-scale side of the paper (§6): what the methodology sees
//! when pointed at a whole ISP and a whole IXP rather than one subscriber
//! line.
//!
//! * [`population`] — subscriber lines with product ownership drawn from
//!   per-product penetration, stable addresses with daily churn
//!   (rotation mostly within the /24, as ISPs re-assign regionally — the
//!   effect Figure 13 quantifies).
//! * [`diurnal`] — the human-activity curves behind Figure 11(a)'s
//!   patterns: entertainment devices peak in the evening, most device
//!   chatter is flat.
//! * [`plan`] — per-product contact plans compiled from the catalog:
//!   domain weights for idle chatter and for active-use hours.
//! * [`gen`] — the flow-level generator. Packet sampling is applied as
//!   Poisson/Binomial thinning per (line, product, hour), then sampled
//!   packets are attributed to domains by exact Poisson splitting —
//!   statistically identical to per-packet sampling of the aggregate
//!   stream (see the `sampling_equivalence` bench) and feasible at
//!   millions of lines.
//! * [`isp`] — the ISP vantage point: all subscriber traffic, NetFlow-style
//!   sampling (default 1/1000), user IPs anonymized (§2.1).
//! * [`ixp`] — the IXP vantage point: member ASes of very different sizes,
//!   sampling an order of magnitude lower (1/10000), routing asymmetry,
//!   spoofed traffic, and the §6.3 established-TCP filter.
//! * [`degrade`] — record-level feed impairment: re-interprets
//!   `haystack-flow`'s chaos configuration at population scale so
//!   detection quality under a lossy export path can be measured
//!   (DESIGN.md, "Fault model").
//! * [`stream`] — the chunked streaming contract ([`RecordStream`],
//!   [`RecordChunk`], [`VantagePoint`]): vantage points hand traffic to
//!   consumers one bounded chunk at a time instead of materializing an
//!   hour (DESIGN.md, "Streaming architecture").
//! * [`soak`] — the stateless wild-scale soak generator: ≥10⁶ lines of
//!   ~99%-miss traffic for the `haystack soak` harness and the
//!   `BENCH_wild.json` soak bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod degrade;
pub mod diurnal;
pub mod gen;
pub mod isp;
pub mod ixp;
pub mod plan;
pub mod population;
pub mod record;
pub mod soak;
pub mod stream;

pub use degrade::{degrade_records, DegradeStream, FeedDegradation};
pub use gen::{DnsQueryEvent, HourStream, HourTraffic};
pub use isp::{IspConfig, IspVantage};
pub use ixp::{IxpConfig, IxpVantage, MemberAs};
pub use plan::ContactPlan;
pub use population::{Population, PopulationConfig};
pub use record::WildRecord;
pub use soak::{SoakConfig, SoakStream};
pub use stream::{
    materialize, skip_chunks, FilterStream, RecordChunk, RecordStream, VantagePoint, VecStream,
    Watermark, DEFAULT_CHUNK_RECORDS,
};
