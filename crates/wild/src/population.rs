//! Subscriber lines: ownership, addressing, churn.
//!
//! Each line owns products drawn independently from the catalog's
//! per-product penetration (≈20 % of lines end up with at least one IoT
//! device, ≈14 % with something Alexa-enabled — §6.2's headline numbers).
//!
//! Addressing follows §6.2's churn discussion: *"Most subscriber lines are
//! not subject to new address assignments within a day … unplugging/
//! rebooting of the home router, regional outages, or daily re-assignment
//! of IPs"*. A small fraction of lines rotates addresses each day —
//! mostly **within their /24** (regional pools), with a smaller
//! cross-region component. Figure 13's two panels (cumulative unique
//! addresses grows; /24 aggregation stabilizes) are downstream of exactly
//! this structure.

use haystack_net::Prefix4;
use haystack_testbed::catalog::Catalog;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Population parameters.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of subscriber lines.
    pub lines: u32,
    /// RNG seed for ownership and churn.
    pub seed: u64,
    /// Per-day probability that a line's address rotates within its /24.
    pub churn_within_24: f64,
    /// Per-day probability that a line's address rotates across regions.
    pub churn_cross: f64,
    /// The address block lines are numbered from.
    pub block: Prefix4,
    /// Global multiplier on every product's penetration (the IXP's
    /// remote eyeballs use < 1.0).
    pub penetration_scale: f64,
    /// Fraction of lines that are "tech households": device ownership
    /// concentrates there (ownership of different products is positively
    /// correlated in reality — an Echo household is likelier to also own
    /// a Fire TV). Product marginals are preserved; the union shrinks,
    /// which is what makes ~14 % Alexa and ~20 % any-IoT coexist (§6.2).
    pub tech_fraction: f64,
}

impl PopulationConfig {
    /// Reasonable ISP defaults at a given scale.
    pub fn isp(lines: u32, seed: u64) -> Self {
        PopulationConfig {
            lines,
            seed,
            churn_within_24: 0.04,
            churn_cross: 0.004,
            block: haystack_backend::AddressPlan::subscribers(),
            penetration_scale: 1.0,
            tech_fraction: 0.5,
        }
    }
}

/// A materialized population.
#[derive(Debug)]
pub struct Population {
    config: PopulationConfig,
    /// For each product index, the owning lines (sorted).
    owners: Vec<Vec<u32>>,
    /// Per-line owned products (inverse of `owners`).
    per_line: Vec<Vec<u16>>,
    /// slot[day][line] = address index. Built lazily per day.
    slots: parking_lot_free::DayCache,
}

/// Tiny lazily-filled per-day cache without external deps. Slot tables are
/// shared via `Rc` so per-hour consumers borrow the day's table cheaply.
mod parking_lot_free {
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, Default)]
    pub struct DayCache {
        days: RefCell<Vec<Rc<Vec<u32>>>>,
    }

    impl DayCache {
        pub fn get_or_build(
            &self,
            day: usize,
            build_next: impl Fn(&[u32], u32) -> Vec<u32>,
            init: impl Fn() -> Vec<u32>,
        ) -> Rc<Vec<u32>> {
            let mut days = self.days.borrow_mut();
            if days.is_empty() {
                days.push(Rc::new(init()));
            }
            while days.len() <= day {
                let d = days.len() as u32;
                let next = build_next(days.last().expect("non-empty"), d);
                days.push(Rc::new(next));
            }
            Rc::clone(&days[day])
        }
    }
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Population {
    /// Draw a population for `catalog` under `config`.
    pub fn new(catalog: &Catalog, config: PopulationConfig) -> Self {
        assert!(
            config.lines <= config.block.size(),
            "more lines than addresses in {}",
            config.block
        );
        let n_products = catalog.products.len();
        let mut owners: Vec<Vec<u32>> = vec![Vec::new(); n_products];
        let mut per_line: Vec<Vec<u16>> = vec![Vec::new(); config.lines as usize];
        let tech = config.tech_fraction.clamp(0.01, 1.0);
        for line in 0..config.lines {
            let mut rng = SmallRng::seed_from_u64(mix(config.seed, u64::from(line)));
            if rng.gen::<f64>() >= tech {
                continue; // not a tech household
            }
            for (pi, p) in catalog.products.iter().enumerate() {
                let prob = (p.penetration * config.penetration_scale / tech).min(1.0);
                if rng.gen::<f64>() < prob {
                    owners[pi].push(line);
                    per_line[line as usize].push(pi as u16);
                }
            }
        }
        Population { config, owners, per_line, slots: Default::default() }
    }

    /// The configuration.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Number of lines.
    pub fn lines(&self) -> u32 {
        self.config.lines
    }

    /// Lines owning product `pi`.
    pub fn owners_of(&self, pi: usize) -> &[u32] {
        &self.owners[pi]
    }

    /// Products owned by `line`.
    pub fn products_of(&self, line: u32) -> &[u16] {
        &self.per_line[line as usize]
    }

    /// Number of lines owning at least one IoT product.
    pub fn lines_with_any_device(&self) -> u32 {
        self.per_line.iter().filter(|v| !v.is_empty()).count() as u32
    }

    fn churn_step(&self, prev: &[u32], day: u32) -> Vec<u32> {
        let mut slots = prev.to_vec();
        let n = slots.len();
        // Within-/24 rotation: group lines by their /24 position (256
        // consecutive address indexes) and cyclically shift the churned
        // members' slots inside each group.
        let mut group_start = 0usize;
        while group_start < n {
            let group_end = (group_start + 256).min(n);
            let churned: Vec<usize> = (group_start..group_end)
                .filter(|&l| {
                    (mix(self.config.seed ^ 0xC0FF, (l as u64) << 8 | u64::from(day)) % 10_000)
                        < (self.config.churn_within_24 * 10_000.0) as u64
                })
                .collect();
            if churned.len() >= 2 {
                let first = slots[churned[0]];
                for w in 0..churned.len() - 1 {
                    slots[churned[w]] = slots[churned[w + 1]];
                }
                let last = churned.len() - 1;
                slots[churned[last]] = first;
            }
            group_start = group_end;
        }
        // Cross-region rotation: a much smaller global shuffle.
        let cross: Vec<usize> = (0..n)
            .filter(|&l| {
                (mix(self.config.seed ^ 0xBEEF, (l as u64) << 8 | u64::from(day)) % 100_000)
                    < (self.config.churn_cross * 100_000.0) as u64
            })
            .collect();
        if cross.len() >= 2 {
            let first = slots[cross[0]];
            for w in 0..cross.len() - 1 {
                slots[cross[w]] = slots[cross[w + 1]];
            }
            let last = cross.len() - 1;
            slots[cross[last]] = first;
        }
        slots
    }

    /// The day's full line→address-slot table (cheap `Rc` share; consumers
    /// generating a whole hour should grab this once).
    pub fn slots_for_day(&self, day: u32) -> std::rc::Rc<Vec<u32>> {
        self.slots.get_or_build(
            day as usize,
            |prev, d| self.churn_step(prev, d),
            || (0..self.config.lines).collect(),
        )
    }

    /// The address of `line` on `day`.
    pub fn ip_of(&self, line: u32, day: u32) -> Ipv4Addr {
        let slots = self.slots_for_day(day);
        self.config.block.nth(slots[line as usize])
    }

    /// Translate a slot index (from [`Population::slots_for_day`]) to an
    /// address.
    pub fn addr_of_slot(&self, slot: u32) -> Ipv4Addr {
        self.config.block.nth(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_testbed::catalog::data::standard_catalog;

    fn pop(lines: u32) -> Population {
        Population::new(&standard_catalog(), PopulationConfig::isp(lines, 7))
    }

    #[test]
    fn ownership_matches_penetrations() {
        let catalog = standard_catalog();
        let p = pop(50_000);
        for (pi, prod) in catalog.products.iter().enumerate() {
            let got = p.owners_of(pi).len() as f64 / 50_000.0;
            let want = prod.penetration;
            let tol = (want * 50_000.0).sqrt() * 4.0 / 50_000.0 + 1e-4;
            assert!(
                (got - want).abs() <= tol,
                "{}: got {got:.4}, want {want:.4}",
                prod.name
            );
        }
    }

    #[test]
    fn device_ownership_union_is_plausible() {
        // Ownership exceeds the paper's 20 % *detected* share because
        // several widely-owned devices (Google Home, Apple TV, LG TV) are
        // undetectable (§4.2.3); the 20 % figure is asserted on detector
        // output in the integration tests.
        let p = pop(50_000);
        let frac = f64::from(p.lines_with_any_device()) / 50_000.0;
        assert!((0.20..=0.45).contains(&frac), "any-device fraction {frac:.3}");
    }

    #[test]
    fn addresses_unique_per_day() {
        let p = pop(2_000);
        for day in [0u32, 1, 5, 13] {
            let mut seen = std::collections::HashSet::new();
            for line in 0..2_000 {
                assert!(seen.insert(p.ip_of(line, day)), "collision day {day}");
            }
        }
    }

    #[test]
    fn churn_changes_some_addresses_mostly_within_slash24() {
        let p = pop(20_000);
        let mut changed = 0;
        let mut cross_24 = 0;
        for line in 0..20_000 {
            let a = p.ip_of(line, 0);
            let b = p.ip_of(line, 1);
            if a != b {
                changed += 1;
                if u32::from(a) >> 8 != u32::from(b) >> 8 {
                    cross_24 += 1;
                }
            }
        }
        assert!(changed > 200, "churn too small: {changed}");
        assert!(
            (cross_24 as f64) < (changed as f64) * 0.5,
            "cross-/24 churn dominates: {cross_24}/{changed}"
        );
    }

    #[test]
    fn ownership_is_deterministic() {
        let a = pop(5_000);
        let b = pop(5_000);
        for pi in 0..standard_catalog().products.len() {
            assert_eq!(a.owners_of(pi), b.owners_of(pi));
        }
    }
}
